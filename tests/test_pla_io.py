"""Tests for PLA containers and espresso-format I/O."""

import pytest

from repro.cubes import Space, contains
from repro.espresso import Pla, espresso_pla, format_pla, parse_pla

SAMPLE = """
# a 2-input, 2-output example
.i 2
.o 2
.ilb a b
.ob f g
.type fr
.p 3
01 10
1- 01
00 -1
.e
"""


class TestParse:
    def test_basic_shape(self):
        pla = parse_pla(SAMPLE)
        assert pla.n_inputs == 2
        assert pla.n_outputs == 2
        assert pla.input_labels == ["a", "b"]
        assert pla.output_labels == ["f", "g"]
        # rows 1, 2 and the g-half of row 3 are on-set; the f-half of
        # row 3 ("-") is don't-care
        assert len(pla.onset) == 3
        assert len(pla.dcset) == 1

    def test_output_semantics(self):
        pla = parse_pla(SAMPLE)
        # input 01 -> f=1
        assert pla.eval_minterm([0, 1]) == [1, 0]
        # input 10 -> g=1 (from row "1- 01")
        assert pla.eval_minterm([1, 0]) == [0, 1]
        # input 00 -> f is dc, g asserted
        assert pla.eval_minterm([0, 0]) == [-1, 1]

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            parse_pla("01 1\n")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parse_pla(".i 2\n.o 1\n011 1\n")

    def test_bad_chars_rejected(self):
        with pytest.raises(ValueError):
            parse_pla(".i 1\n.o 1\nx 1\n")
        with pytest.raises(ValueError):
            parse_pla(".i 1\n.o 1\n0 z\n")

    def test_single_token_rows(self):
        pla = parse_pla(".i 2\n.o 1\n011\n.e\n")
        assert len(pla.onset) == 1

    def test_comments_and_unknown_directives(self):
        text = ".i 1\n.o 1\n.phase 1\n# hi\n0 1 # trailing\n.e\n"
        pla = parse_pla(text)
        assert len(pla.onset) == 1


class TestFormat:
    def test_roundtrip(self):
        pla = parse_pla(SAMPLE)
        again = parse_pla(format_pla(pla))
        assert sorted(again.onset) == sorted(pla.onset)
        assert sorted(again.dcset) == sorted(pla.dcset)

    def test_type_f_drops_dc(self):
        pla = parse_pla(SAMPLE)
        text = format_pla(pla, pla_type="f")
        again = parse_pla(text)
        assert again.dcset == []

    def test_p_count_is_correct(self):
        pla = parse_pla(SAMPLE)
        text = format_pla(pla)
        p_line = [l for l in text.splitlines() if l.startswith(".p")][0]
        n_rows = len(
            [l for l in text.splitlines()
             if l and not l.startswith(".") and not l.startswith("#")]
        )
        assert int(p_line.split()[1]) == n_rows


class TestPlaModel:
    def test_add_term(self):
        pla = Pla(2, 1)
        pla.add_term("0-", "1")
        assert pla.num_terms() == 1
        assert pla.eval_minterm([0, 1]) == [1]

    def test_literal_count(self):
        pla = Pla(3, 1)
        pla.add_term("0-1", "1")
        pla.add_term("---", "1")
        assert pla.literal_count() == 2

    def test_gate_area(self):
        pla = Pla(2, 2)
        pla.add_term("01", "11")
        assert pla.gate_area() == 1 * (2 * 2 + 2)

    def test_copy_is_deep_enough(self):
        pla = Pla(1, 1)
        pla.add_term("0", "1")
        twin = pla.copy()
        twin.add_term("1", "1")
        assert pla.num_terms() == 1

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Pla(-1, 1)
        with pytest.raises(ValueError):
            Pla(2, 0)

    def test_off_set_disjoint_from_onset(self):
        pla = parse_pla(SAMPLE)
        off = pla.off_set()
        space = pla.space
        for m in space.iter_minterms():
            in_on = any(contains(c, m) for c in pla.onset)
            in_dc = any(contains(c, m) for c in pla.dcset)
            in_off = any(contains(c, m) for c in off)
            assert in_off == (not in_on and not in_dc)


class TestEspressoPla:
    def test_minimize_multioutput(self):
        pla = Pla(2, 2)
        pla.add_term("00", "10")
        pla.add_term("01", "10")
        pla.add_term("00", "01")
        pla.add_term("01", "01")
        out = espresso_pla(pla)
        # both outputs equal x0' -> a single shared cube
        assert out.num_terms() == 1

    def test_dc_exploited(self):
        pla = Pla(2, 1)
        pla.add_term("00", "1")
        pla.dcset.append(pla.space.parse_cube("01 1"))
        out = espresso_pla(pla)
        assert out.num_terms() == 1
        assert out.space.format_cube(out.onset[0]) == "0- 1"
