"""The determinism/regression gate against the golden records.

A fresh process must reproduce the stored quick-Table-I record
exactly: the encoders, the espresso evaluator and the benchmark
generator are all seeded, so any drift means nondeterminism crept in
(or an algorithm change that should be reviewed and re-goldened with
``repro.harness.regression.write_golden``).
"""

import pathlib

import pytest

from repro.harness import run_table1
from repro.harness.regression import (
    GOLDEN_DIR,
    Drift,
    compare_to_golden,
    write_golden,
)

GOLDEN = GOLDEN_DIR / "table1_quick.json"

# keep the gate fast: a 4-FSM slice of the golden record's machines
SLICE = ["bbara", "lion9", "opus", "dk16"]


class TestGoldenRecord:
    def test_golden_file_exists(self):
        assert GOLDEN.exists(), (
            "golden record missing; regenerate with write_golden()"
        )

    def test_slice_reproduces_golden(self):
        import json

        golden = json.loads(GOLDEN.read_text())
        by_name = {row["fsm"]: row for row in golden["rows"]}
        report = run_table1(SLICE, include_enc=False)
        for row in report.rows:
            want = by_name[row.fsm]
            assert row.n_constraints == want["constraints"], row.fsm
            assert row.cubes_picola == want["cubes"]["picola"], row.fsm
            assert row.cubes_nova == want["cubes"]["nova"], row.fsm


class TestComparator:
    def test_roundtrip_zero_drift(self, tmp_path):
        report = run_table1(["opus"], include_enc=False)
        path = tmp_path / "g.json"
        write_golden(report, path)
        assert compare_to_golden(report, path) == []

    def test_drift_detected(self, tmp_path):
        report = run_table1(["opus"], include_enc=False)
        path = tmp_path / "g.json"
        write_golden(report, path)
        # tamper with the golden record
        import json

        data = json.loads(path.read_text())
        data["rows"][0]["cubes"]["picola"] += 5
        path.write_text(json.dumps(data))
        drifts = compare_to_golden(report, path)
        assert any("picola" in d.key for d in drifts)

    def test_tolerance_suppresses_small_drift(self, tmp_path):
        report = run_table1(["opus"], include_enc=False)
        path = tmp_path / "g.json"
        write_golden(report, path)
        import json

        data = json.loads(path.read_text())
        data["rows"][0]["cubes"]["nova"] += 1  # small absolute change
        path.write_text(json.dumps(data))
        strict = compare_to_golden(report, path)
        loose = compare_to_golden(report, path, tolerance=0.9)
        assert strict and not loose

    def test_missing_golden_raises(self, tmp_path):
        report = run_table1(["opus"], include_enc=False)
        with pytest.raises(FileNotFoundError):
            compare_to_golden(report, tmp_path / "nope.json")

    def test_drift_str_and_relative(self):
        d = Drift("x", 10, 12)
        assert d.relative == pytest.approx(0.2)
        assert "golden=10" in str(d)
        assert Drift("y", 0, 0).relative == 0.0
