"""Property tests for the paper's theory: soundness of the
infeasibility detection and of the Theorem I construction.

The critical property of Classify() is *soundness*: it must never
declare a constraint (pair) infeasible when a satisfying encoding
exists — killing a satisfiable constraint would be a correctness bug,
not a heuristic weakness.  We check this by brute force on small
symbol sets.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import nv_compatible, capacity_feasible, theorem1_cubes
from repro.encoding import (
    ConstraintMatrix,
    ConstraintSet,
    Encoding,
    FaceConstraint,
)


def all_encodings(n_symbols, nv):
    """Every injective assignment of nv-bit codes to the symbols."""
    symbols = [f"s{i}" for i in range(n_symbols)]
    for codes in itertools.permutations(range(1 << nv), n_symbols):
        yield Encoding(symbols, dict(zip(symbols, codes)), nv)


def jointly_satisfiable(n_symbols, nv, group_a, group_b):
    for enc in all_encodings(n_symbols, nv):
        if enc.satisfies(group_a) and enc.satisfies(group_b):
            return True
    return False


def singly_satisfiable(n_symbols, nv, group):
    return any(
        enc.satisfies(group) for enc in all_encodings(n_symbols, nv)
    )


@st.composite
def constraint_pairs(draw):
    n = draw(st.integers(min_value=4, max_value=6))
    nv = (n - 1).bit_length()
    symbols = [f"s{i}" for i in range(n)]
    a = draw(
        st.sets(st.sampled_from(symbols), min_size=2, max_size=n - 1)
    )
    b = draw(
        st.sets(st.sampled_from(symbols), min_size=2, max_size=n - 1)
    )
    return n, nv, frozenset(a), frozenset(b)


class TestClassifySoundness:
    @settings(max_examples=25, deadline=None)
    @given(constraint_pairs())
    def test_nv_compatible_never_kills_satisfiable_pairs(self, case):
        n, nv, group_a, group_b = case
        cset = ConstraintSet(
            [f"s{i}" for i in range(n)],
            [FaceConstraint(group_a), FaceConstraint(group_b)],
        )
        matrix = ConstraintMatrix(cset, nv)
        compatible = nv_compatible(
            matrix.rows[0], matrix.rows[1], nv, n
        )
        if jointly_satisfiable(n, nv, group_a, group_b):
            assert compatible, (
                f"nv_compatible killed a satisfiable pair: "
                f"{sorted(group_a)} / {sorted(group_b)} in B^{nv}"
            )

    @settings(max_examples=25, deadline=None)
    @given(constraint_pairs())
    def test_capacity_never_kills_satisfiable_constraints(self, case):
        n, nv, group_a, _ = case
        cset = ConstraintSet(
            [f"s{i}" for i in range(n)], [FaceConstraint(group_a)]
        )
        matrix = ConstraintMatrix(cset, nv)
        feasible = capacity_feasible(matrix.rows[0], nv, n)
        if singly_satisfiable(n, nv, group_a):
            assert feasible, (
                f"capacity check killed satisfiable {sorted(group_a)} "
                f"in B^{nv} with {n} symbols"
            )


@st.composite
def encodings_with_groups(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    nv = (n - 1).bit_length()
    symbols = [f"s{i}" for i in range(n)]
    codes = draw(st.permutations(list(range(1 << nv))))
    enc = Encoding(symbols, dict(zip(symbols, codes[:n])), nv)
    members = draw(
        st.sets(st.sampled_from(symbols), min_size=1, max_size=n - 1)
    )
    return enc, sorted(members)


class TestTheorem1Property:
    @settings(max_examples=150, deadline=None)
    @given(encodings_with_groups())
    def test_construction_covers_and_excludes(self, case):
        enc, members = case
        intruders = enc.intruders(frozenset(members))
        cubes = theorem1_cubes(enc, members, intruders)
        if cubes is None:
            # hypothesis failed: super(I) touches a member code
            from repro.encoding import face_of

            mask, value = face_of(
                (enc.code_of(s) for s in intruders), enc.n_bits
            )
            assert any(
                not (enc.code_of(s) ^ value) & mask for s in members
            )
            return
        for s in members:
            code = enc.code_of(s)
            assert any(not (code ^ v) & m for m, v in cubes)
        for s in intruders:
            code = enc.code_of(s)
            assert all((code ^ v) & m for m, v in cubes)
        # every other symbol outside super(L) must also be excluded
        for s in enc.symbols:
            if s in members or s in intruders:
                continue
            code = enc.code_of(s)
            assert all((code ^ v) & m for m, v in cubes)

    @settings(max_examples=100, deadline=None)
    @given(encodings_with_groups())
    def test_cube_count_matches_dimension_formula(self, case):
        enc, members = case
        intruders = enc.intruders(frozenset(members))
        cubes = theorem1_cubes(enc, members, intruders)
        if cubes is None or not intruders:
            return
        dim_l = enc.face_dimension(members + intruders)
        dim_i = enc.face_dimension(intruders)
        assert len(cubes) == dim_l - dim_i


class TestNvCompatibleDetectionPower:
    """The soundness fix must not have neutered detection: known
    impossible pairs are still rejected."""

    def cset_rows(self, n, a, b, nv):
        cset = ConstraintSet(
            [f"s{i}" for i in range(n)],
            [FaceConstraint(a), FaceConstraint(b)],
        )
        matrix = ConstraintMatrix(cset, nv)
        return matrix.rows[0], matrix.rows[1], nv, n

    def test_two_fat_triples_in_full_b3(self):
        syms = [f"s{i}" for i in range(8)]
        ra, rb, nv, n = self.cset_rows(
            8, set(syms[:3]), set(syms[3:6]), 3
        )
        assert not nv_compatible(ra, rb, nv, n)

    def test_overflowing_overlap(self):
        syms = [f"s{i}" for i in range(8)]
        ra, rb, nv, n = self.cset_rows(
            8, set(syms[:5]), set(syms[3:8]), 3
        )
        assert not nv_compatible(ra, rb, nv, n)

    def test_subset_pair_is_compatible(self):
        syms = [f"s{i}" for i in range(8)]
        ra, rb, nv, n = self.cset_rows(
            8, set(syms[:2]), set(syms[:4]), 3
        )
        assert nv_compatible(ra, rb, nv, n)

    def test_overlapping_faces_now_accepted(self):
        # the falsifying example hypothesis found for the old check:
        # {s0,s1,s2} and {s0,s3,s4} in B^3 with 5 symbols IS jointly
        # satisfiable via faces 0-- and -0- meeting in 00-
        syms = [f"s{i}" for i in range(5)]
        ra, rb, nv, n = self.cset_rows(
            5, {"s0", "s1", "s2"}, {"s0", "s3", "s4"}, 3
        )
        assert nv_compatible(ra, rb, nv, n)
