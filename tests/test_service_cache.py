"""Property tests for the content-addressed cache key.

The key must be a pure function of the request *content*:

* insensitive to constraint ordering and option-dict insertion order
  (two spellings of the same problem share a cache line);
* sensitive to the symbols (and their order — it is the constraint
  matrix row order), the solver, the options, ``nv`` and constraint
  weights (different problems never collide);
* stable across processes and ``PYTHONHASHSEED`` values (no Python
  ``hash()`` leakage), so a daemon restart re-serves its corpus.
"""

import json
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import EncodeRequest, cache_key, canonical_payload

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_SYMBOLS = [f"s{i}" for i in range(8)]


@st.composite
def constraint_dicts(draw):
    members = draw(
        st.lists(
            st.sampled_from(_SYMBOLS),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    constraint = {"symbols": members}
    if draw(st.booleans()):
        constraint["weight"] = draw(
            st.floats(
                min_value=0.25, max_value=4.0,
                allow_nan=False, allow_infinity=False,
            )
        )
    return constraint


@st.composite
def requests(draw):
    constraints = draw(
        st.lists(constraint_dicts(), max_size=4)
    )
    options = draw(
        st.dictionaries(
            st.sampled_from(["seed", "variant", "scheme", "alpha"]),
            st.one_of(
                st.integers(min_value=0, max_value=9),
                st.sampled_from(["a", "b"]),
            ),
            max_size=3,
        )
    )
    return EncodeRequest(
        symbols=tuple(_SYMBOLS),
        constraints=tuple(constraints),
        solver=draw(st.sampled_from(["picola", "exact", "nova"])),
        options=options,
        nv=draw(st.one_of(st.none(), st.integers(3, 6))),
    )


# ---------------------------------------------------------------------------
# order-insensitivity
# ---------------------------------------------------------------------------


class TestOrderInsensitivity:
    @settings(max_examples=60, deadline=None)
    @given(requests(), st.randoms(use_true_random=False))
    def test_constraint_order_never_changes_the_key(self, req, rng):
        shuffled = list(req.constraints)
        rng.shuffle(shuffled)
        clone = EncodeRequest(
            symbols=req.symbols,
            constraints=tuple(shuffled),
            solver=req.solver,
            options=dict(req.options),
            nv=req.nv,
        )
        assert cache_key(clone) == cache_key(req)

    @settings(max_examples=60, deadline=None)
    @given(requests(), st.randoms(use_true_random=False))
    def test_option_insertion_order_never_changes_the_key(
        self, req, rng
    ):
        items = list(req.options.items())
        rng.shuffle(items)
        clone = EncodeRequest(
            symbols=req.symbols,
            constraints=req.constraints,
            solver=req.solver,
            options=dict(items),
            nv=req.nv,
        )
        assert cache_key(clone) == cache_key(req)

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_qos_and_trace_never_change_the_key(self, req):
        import dataclasses

        relaxed = dataclasses.replace(
            req, timeout=30.0, max_nodes=10**6, trace=True
        )
        assert cache_key(relaxed) == cache_key(req)

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_wire_round_trip_preserves_the_key(self, req):
        clone = EncodeRequest.from_dict(
            json.loads(json.dumps(req.to_dict()))
        )
        assert cache_key(clone) == cache_key(req)


# ---------------------------------------------------------------------------
# sensitivity — different problems never share a key
# ---------------------------------------------------------------------------


class TestSensitivity:
    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_solver_is_part_of_the_key(self, req):
        import dataclasses

        other = "exact" if req.solver != "exact" else "nova"
        changed = dataclasses.replace(req, solver=other)
        assert cache_key(changed) != cache_key(req)

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_nv_is_part_of_the_key(self, req):
        import dataclasses

        changed = dataclasses.replace(
            req, nv=(req.nv or 3) + 1
        )
        assert cache_key(changed) != cache_key(req)

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_options_are_part_of_the_key(self, req):
        extra = dict(req.options)
        extra["seed"] = (
            0 if not isinstance(extra.get("seed"), int)
            else extra["seed"] + 1
        )
        changed = EncodeRequest(
            symbols=req.symbols,
            constraints=req.constraints,
            solver=req.solver,
            options=extra,
            nv=req.nv,
        )
        assert cache_key(changed) != cache_key(req)

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_symbol_order_is_part_of_the_key(self, req):
        # symbols are the constraint-matrix row order: reversing them
        # states a different problem instance
        changed = EncodeRequest(
            symbols=tuple(reversed(req.symbols)),
            constraints=req.constraints,
            solver=req.solver,
            options=dict(req.options),
            nv=req.nv,
        )
        assert cache_key(changed) != cache_key(req)

    def test_constraint_weight_is_part_of_the_key(self):
        def req_with_weight(weight):
            return EncodeRequest(
                symbols=("a", "b", "c"),
                constraints=(
                    {"symbols": ["a", "b"], "weight": weight},
                ),
            )

        assert cache_key(req_with_weight(1.0)) != cache_key(
            req_with_weight(2.0)
        )

    def test_constraint_kind_is_part_of_the_key(self):
        original = EncodeRequest(
            symbols=("a", "b", "c"),
            constraints=({"symbols": ["a", "b"]},),
        )
        guide = EncodeRequest(
            symbols=("a", "b", "c"),
            constraints=(
                {
                    "symbols": ["a", "b"],
                    "kind": "guide",
                    "parent": ["a", "b", "c"],
                },
            ),
        )
        assert cache_key(original) != cache_key(guide)


# ---------------------------------------------------------------------------
# cross-process stability — no PYTHONHASHSEED leakage
# ---------------------------------------------------------------------------

_SUBPROCESS_SNIPPET = """\
import sys
from repro.service import EncodeRequest, cache_key

request = EncodeRequest.from_dict(
    {
        "symbols": ["s0", "s1", "s2", "s3"],
        "constraints": [
            {"symbols": ["s2", "s3"]},
            {"symbols": ["s0", "s1"], "weight": 2.0},
        ],
        "solver": "picola",
        "options": {"seed": 7},
        "nv": 2,
    }
)
sys.stdout.write(cache_key(request))
"""


def _key_in_fresh_process(hash_seed):
    import os

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        check=True,
    )
    return result.stdout.strip()


class TestCrossProcessStability:
    def test_key_is_stable_across_hash_seeds(self):
        keys = {
            _key_in_fresh_process(seed) for seed in ("0", "1", "4242")
        }
        assert len(keys) == 1
        key = keys.pop()
        assert len(key) == 64  # sha256 hex

    def test_subprocess_key_matches_in_process(self):
        request = EncodeRequest.from_dict(
            {
                "symbols": ["s0", "s1", "s2", "s3"],
                "constraints": [
                    {"symbols": ["s2", "s3"]},
                    {"symbols": ["s0", "s1"], "weight": 2.0},
                ],
                "solver": "picola",
                "options": {"seed": 7},
                "nv": 2,
            }
        )
        assert _key_in_fresh_process("3") == cache_key(request)

    def test_canonical_payload_is_plain_deterministic_json(self):
        request = EncodeRequest(
            symbols=("b", "a"),
            constraints=({"symbols": ["a", "b"]},),
            options={"z": 1, "a": 2},
        )
        payload = canonical_payload(request)
        assert json.loads(payload)  # valid JSON
        assert payload == canonical_payload(request)
        # sorted keys, compact separators
        assert payload.index('"constraints"') < payload.index(
            '"options"'
        )
        assert ", " not in payload
