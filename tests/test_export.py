"""Tests for the BLIF and Verilog exporters."""

import re

import pytest

from repro.espresso import Pla
from repro.export import (
    assignment_to_blif,
    assignment_to_verilog,
    pla_to_blif,
)
from repro.fsm import parse_kiss
from repro.stateassign import assign_states

TOY = """
.i 1
.o 2
.r idle
0 idle idle 00
1 idle busy 01
0 busy idle 10
1 busy busy 01
"""


def toy_assignment():
    return assign_states(parse_kiss(TOY), "picola")


class TestPlaToBlif:
    def make_pla(self):
        pla = Pla(2, 2)
        pla.add_term("01", "10")
        pla.add_term("1-", "01")
        return pla

    def test_structure(self):
        text = pla_to_blif(self.make_pla(), model="m")
        assert text.startswith(".model m")
        assert ".inputs x0 x1" in text
        assert ".outputs z0 z1" in text
        assert text.rstrip().endswith(".end")

    def test_names_blocks_per_output(self):
        text = pla_to_blif(self.make_pla())
        assert ".names x0 x1 z0" in text
        assert ".names x0 x1 z1" in text
        assert "01 1" in text
        assert "1- 1" in text

    def test_custom_names(self):
        text = pla_to_blif(
            self.make_pla(), input_names=["a", "b"],
            output_names=["f", "g"],
        )
        assert ".names a b f" in text

    def test_name_count_checked(self):
        with pytest.raises(ValueError):
            pla_to_blif(self.make_pla(), input_names=["only"])

    def test_constant_zero_output(self):
        pla = Pla(1, 2)
        pla.add_term("1", "10")
        text = pla_to_blif(pla)
        assert ".names x0 z1" in text  # exists even though empty


class TestAssignmentToBlif:
    def test_sequential_structure(self):
        result = toy_assignment()
        text = assignment_to_blif(result)
        assert ".latch ns0 s0 re clk" in text
        assert ".inputs x0" in text
        assert ".outputs z0 z1" in text
        # reset state initial value is encoded in the latch line
        reset = result.encoding.code_of("idle")
        assert f".latch ns0 s0 re clk {reset & 1}" in text

    def test_names_reference_state_nets(self):
        text = assignment_to_blif(toy_assignment())
        assert re.search(r"\.names x0 s0 ns0", text)


class TestAssignmentToVerilog:
    def test_module_shape(self):
        result = toy_assignment()
        text = assignment_to_verilog(result, module="toy")
        assert text.startswith("// generated")
        assert "module toy (" in text
        assert "input  wire x0," in text
        assert "output wire z1" in text
        assert "endmodule" in text

    def test_reset_value(self):
        result = toy_assignment()
        text = assignment_to_verilog(result)
        reset = result.encoding.code_of("idle")
        n_bits = result.encoding.n_bits
        assert f"state <= {n_bits}'b" + format(
            reset, f"0{n_bits}b"
        ) in text

    def test_sop_expressions_reference_inputs(self):
        text = assignment_to_verilog(toy_assignment())
        assert "assign next_state[0] =" in text
        assert "x0" in text

    def test_verilog_matches_cosimulation(self):
        """Interpret the generated SOP expressions in Python and check
        them against the encoded simulator for every (state, input)."""
        result = toy_assignment()
        text = assignment_to_verilog(result)
        n_bits = result.encoding.n_bits
        fsm = result.fsm

        assigns = {}
        for m in re.finditer(
            r"assign (\S+(?:\[\d\])?) = ([^;]+);", text
        ):
            assigns[m.group(1)] = m.group(2)

        def eval_expr(expr, env):
            py = expr.replace("~", " not ").replace("&", " and ")
            py = py.replace("|", " or ")
            py = py.replace("1'b1", "True").replace("1'b0", "False")
            for name, value in env.items():
                py = re.sub(
                    re.escape(name) + r"(?![\w\[])", str(bool(value)),
                    py,
                )
            return bool(eval(py))

        from repro.fsm import EncodedSimulator

        for state in fsm.states:
            code = result.encoding.code_of(state)
            for x in range(1 << fsm.n_inputs):
                env = {"x0": (x & 1)}
                for b in range(n_bits):
                    env[f"state[{b}]"] = (code >> b) & 1
                sim = EncodedSimulator(
                    result.minimized, fsm.n_inputs, n_bits, code
                )
                got_code, got_out = sim.step(format(x, "01b"))
                for b in range(n_bits):
                    expr = assigns[f"next_state[{b}]"]
                    assert eval_expr(expr, env) == bool(
                        (got_code >> b) & 1
                    )
                for o in range(fsm.n_outputs):
                    expr = assigns[f"z{o}"]
                    assert eval_expr(expr, env) == bool(got_out[o])
