"""The fuzz oracle: every outcome classified, the harness never crashes."""

import pytest

from repro.encoding import Encoding
from repro.fuzz import (
    CRASH,
    FINDINGS,
    INFEASIBLE,
    OK,
    TIMEOUT,
    VIOLATION,
    generate_case,
    run_case,
    verify_result,
)
from repro.runtime import (
    Budget,
    InfeasibleError,
    InvariantViolation,
    SolverTimeout,
    faults,
)
from repro.solvers import Solver, _REGISTRY, register_solver


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


class _FakeSolver(Solver):
    """Registry-conformant solver whose behaviour the test scripts."""

    option_keys = ("nv", "seed", "fsm")

    def __init__(self, name, behaviour):
        self.name = name
        self.behaviour = behaviour

    def _run(self, cset, opts, budget, tracer):
        return self.behaviour(cset, opts)


@pytest.fixture
def fake_solver():
    """Register a scripted solver for one test; auto-unregister."""
    registered = []

    def make(name, behaviour):
        register_solver(_FakeSolver(name, behaviour))
        registered.append(name)
        return name

    yield make
    for name in registered:
        _REGISTRY.pop(name, None)


def _good(cset, opts):
    nv = opts.get("nv") or cset.min_code_length()
    codes = {s: i for i, s in enumerate(cset.symbols)}
    return Encoding(cset.symbols, codes, nv), {"nodes": 1}, None


class TestClassifications:
    def test_ok(self):
        case = generate_case("random", 1, 10)
        outcome = run_case(case, "picola", timeout=30)
        assert outcome.classification == OK
        assert not outcome.is_finding

    def test_infeasible(self, fake_solver):
        def bail(cset, opts):
            raise InfeasibleError("no encoding exists")

        name = fake_solver("fz-infeasible", bail)
        outcome = run_case(generate_case("random", 1, 8), name)
        assert outcome.classification == INFEASIBLE
        assert not outcome.is_finding

    def test_timeout_via_injected_budget(self):
        case = generate_case("random", 2, 8)
        with faults.inject("solver.solve", SolverTimeout):
            outcome = run_case(case, "picola", timeout=30)
        assert outcome.classification == TIMEOUT
        assert not outcome.is_finding

    def test_violation_non_injective(self, fake_solver):
        def collide(cset, opts):
            nv = opts.get("nv") or cset.min_code_length()
            codes = {s: 0 for s in cset.symbols}
            return Encoding(cset.symbols, codes, nv), {}, None

        name = fake_solver("fz-collide", collide)
        outcome = run_case(generate_case("random", 3, 8), name)
        assert outcome.classification == VIOLATION
        assert "injective" in outcome.detail
        assert outcome.is_finding

    def test_violation_wrong_width(self, fake_solver):
        def too_wide(cset, opts):
            nv = (opts.get("nv") or cset.min_code_length()) + 3
            codes = {s: i for i, s in enumerate(cset.symbols)}
            return Encoding(cset.symbols, codes, nv), {}, None

        name = fake_solver("fz-wide", too_wide)
        outcome = run_case(generate_case("random", 3, 8), name)
        assert outcome.classification == VIOLATION
        assert "code length" in outcome.detail

    def test_violation_wrong_symbols(self, fake_solver):
        def other(cset, opts):
            return Encoding(["a", "b"], {"a": 0, "b": 1}, 1), {}, None

        name = fake_solver("fz-other", other)
        outcome = run_case(generate_case("random", 4, 8), name)
        assert outcome.classification == VIOLATION
        assert "symbols" in outcome.detail

    def test_violation_from_repro_error(self, fake_solver):
        def blow(cset, opts):
            raise InvariantViolation("internal invariant broke")

        name = fake_solver("fz-invariant", blow)
        outcome = run_case(generate_case("random", 5, 8), name)
        assert outcome.classification == VIOLATION
        assert "InvariantViolation" in outcome.detail

    def test_crash_from_unclassified_exception(self, fake_solver):
        def crash(cset, opts):
            raise RuntimeError("kaboom")

        name = fake_solver("fz-crash", crash)
        outcome = run_case(generate_case("random", 6, 8), name)
        assert outcome.classification == CRASH
        assert "RuntimeError" in outcome.detail
        assert outcome.is_finding

    def test_crash_from_index_error(self, fake_solver):
        def crash(cset, opts):
            return [][0]

        name = fake_solver("fz-index", crash)
        outcome = run_case(generate_case("random", 7, 8), name)
        assert outcome.classification == CRASH
        assert "IndexError" in outcome.detail

    def test_findings_tuple(self):
        assert FINDINGS == (VIOLATION, CRASH)


class TestOracleProperties:
    @pytest.mark.parametrize("family", [
        "random", "fsm", "bounded-length", "grid", "pathological",
    ])
    def test_run_case_never_raises(self, family, fake_solver):
        def nasty(cset, opts):
            raise KeyError("surprise")

        name = fake_solver("fz-nasty", nasty)
        for seed in range(3):
            outcome = run_case(
                generate_case(family, seed, 10), name, timeout=30
            )
            assert outcome.classification == CRASH

    def test_satisfiable_optimal_contract(self, fake_solver):
        # an "optimal" result that leaves a provably-satisfiable
        # instance unsatisfied must be called out
        case = generate_case("bounded-length", 3, 12)
        assert case.satisfiable

        def lying_optimal(cset, opts):
            nv = opts.get("nv") or cset.min_code_length()
            codes = {s: i for i, s in enumerate(cset.symbols)}
            return (
                Encoding(cset.symbols, codes, nv),
                {"optimal": True},
                None,
            )

        name = fake_solver("fz-lying", lying_optimal)
        outcome = run_case(case, name)
        # either the arbitrary order happens to satisfy everything
        # (rare) or the lie is flagged; both classifications are legal
        assert outcome.classification in (OK, VIOLATION)

    def test_verify_result_flags_dishonest_claims(self):
        # grid:4 at minimum length: the counting-order encoding leaves
        # several rows with intruders, so claiming them all satisfied
        # is dishonest by construction
        case = generate_case("grid", 4, 12)

        class Raw:
            satisfied = list(case.cset.nontrivial())

        class Result:
            encoding = Encoding(
                case.cset.symbols,
                {s: i for i, s in enumerate(case.cset.symbols)},
                case.nv or case.cset.min_code_length(),
            )
            stats = {}
            raw = Raw()

        problems = verify_result(case, Result(), budget=Budget())
        # a grid's rows+columns cannot all be faces of the counting
        # order, so at least one claimed row must be dishonest
        assert any("claimed-satisfied" in p for p in problems)

    def test_cosim_runs_for_fsm_cases(self):
        case = generate_case("fsm", 1, 10)
        outcome = run_case(case, "picola", timeout=60)
        assert outcome.classification == OK

    def test_outcome_is_picklable(self):
        import pickle

        outcome = run_case(generate_case("random", 8, 8), "picola")
        again = pickle.loads(pickle.dumps(outcome))
        assert again.classification == outcome.classification
        assert again.key == outcome.key
