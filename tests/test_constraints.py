"""Tests for face constraints, dichotomies, encodings and the
marked constraint matrix."""

import pytest

from repro.encoding import (
    ConstraintMatrix,
    ConstraintSet,
    Encoding,
    FaceConstraint,
    SeedDichotomy,
    face_of,
)


class TestFaceConstraint:
    def test_basic(self):
        c = FaceConstraint({"a", "b"})
        assert len(c) == 2
        assert "a" in c and "z" not in c
        assert not c.is_guide()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FaceConstraint([])

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FaceConstraint({"a"}, kind="weird")

    def test_min_dimension(self):
        assert FaceConstraint({"a"}).min_dimension() == 0
        assert FaceConstraint({"a", "b"}).min_dimension() == 1
        assert FaceConstraint({"a", "b", "c"}).min_dimension() == 2
        assert FaceConstraint("abcd").min_dimension() == 2
        assert FaceConstraint("abcde").min_dimension() == 3

    def test_seed_dichotomies(self):
        c = FaceConstraint({"a", "b"})
        ds = c.seed_dichotomies(["a", "b", "c", "d"])
        assert len(ds) == 2
        assert {d.outsider for d in ds} == {"c", "d"}

    def test_guide_records_parent(self):
        g = FaceConstraint({"x"}, kind="guide", parent={"a", "b"})
        assert g.is_guide()
        assert g.parent == frozenset({"a", "b"})

    def test_frozen_and_hashable(self):
        c1 = FaceConstraint({"a", "b"})
        c2 = FaceConstraint({"b", "a"})
        assert c1 == c2
        assert len({c1, c2}) == 1


class TestSeedDichotomy:
    def test_outsider_cannot_be_inside(self):
        with pytest.raises(ValueError):
            SeedDichotomy({"a", "b"}, "a")

    def test_satisfied_by_column(self):
        d = SeedDichotomy({"a", "b"}, "c")
        assert d.satisfied_by_column({"a": 1, "b": 1, "c": 0})
        assert d.satisfied_by_column({"a": 0, "b": 0, "c": 1})
        assert not d.satisfied_by_column({"a": 1, "b": 0, "c": 0})
        assert not d.satisfied_by_column({"a": 1, "b": 1, "c": 1})


class TestConstraintSet:
    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError):
            ConstraintSet(["a", "a"])

    def test_unknown_symbol_rejected(self):
        cs = ConstraintSet(["a", "b"])
        with pytest.raises(ValueError):
            cs.add(FaceConstraint({"z"}))

    def test_min_code_length(self):
        assert ConstraintSet(["a"]).min_code_length() == 1
        assert ConstraintSet(list("ab")).min_code_length() == 1
        assert ConstraintSet(list("abc")).min_code_length() == 2
        assert ConstraintSet(list("abcdefghi")).min_code_length() == 4

    def test_nontrivial_filters(self):
        syms = list("abcd")
        cs = ConstraintSet(
            syms,
            [
                FaceConstraint({"a"}),  # singleton: trivial
                FaceConstraint({"a", "b"}),
                FaceConstraint(syms),  # full set: trivial
            ],
        )
        assert len(cs.nontrivial()) == 1

    def test_as_matrix(self):
        cs = ConstraintSet(
            ["a", "b", "c"], [FaceConstraint({"a", "c"})]
        )
        assert cs.as_matrix() == [[1, 0, 1]]


class TestFaceOf:
    def test_single_code(self):
        mask, value = face_of([0b101], 3)
        assert mask == 0b111 and value == 0b101

    def test_pair(self):
        mask, value = face_of([0b000, 0b010], 3)
        assert mask == 0b101 and value == 0b000

    def test_full_spread(self):
        mask, value = face_of([0, 7], 3)
        assert mask == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            face_of([], 3)


class TestEncoding:
    def test_injectivity_check(self):
        enc = Encoding(["a", "b"], {"a": 0, "b": 0}, 1)
        assert not enc.is_injective()

    def test_missing_code_rejected(self):
        with pytest.raises(ValueError):
            Encoding(["a", "b"], {"a": 0}, 1)

    def test_code_too_wide_rejected(self):
        with pytest.raises(ValueError):
            Encoding(["a"], {"a": 4}, 2)

    def test_bits_and_columns(self):
        enc = Encoding(["a", "b", "c"], {"a": 0b00, "b": 0b01, "c": 0b10}, 2)
        assert enc.bit("b", 0) == 0  # MSB
        assert enc.bit("b", 1) == 1
        assert enc.column(0) == {"a": 0, "b": 0, "c": 1}

    def test_from_columns_roundtrip(self):
        enc = Encoding(["a", "b", "c"], {"a": 0, "b": 3, "c": 2}, 2)
        again = Encoding.from_columns(enc.symbols, enc.columns())
        assert again.codes == enc.codes

    def test_unused_codes(self):
        enc = Encoding(["a", "b", "c"], {"a": 0, "b": 1, "c": 2}, 2)
        assert enc.unused_codes() == [3]

    def test_satisfies_and_intruders(self):
        enc = Encoding(
            ["a", "b", "c", "d"], {"a": 0, "b": 1, "c": 2, "d": 3}, 2
        )
        assert enc.satisfies({"a", "b"})  # face 0-
        assert enc.satisfies({"a", "c"})  # face -0
        assert not enc.satisfies({"a", "d"})  # face -- contains b, c
        assert set(enc.intruders({"a", "d"})) == {"b", "c"}

    def test_face_dimension(self):
        enc = Encoding(
            ["a", "b", "c", "d"], {"a": 0, "b": 1, "c": 2, "d": 3}, 2
        )
        assert enc.face_dimension({"a"}) == 0
        assert enc.face_dimension({"a", "b"}) == 1
        assert enc.face_dimension({"a", "d"}) == 2

    def test_as_table(self):
        enc = Encoding(["a", "b"], {"a": 0, "b": 1}, 2)
        assert enc.as_table().splitlines() == ["a  00", "b  01"]


def make_matrix():
    syms = [f"s{i}" for i in range(6)]
    cs = ConstraintSet(
        syms,
        [
            FaceConstraint({"s0", "s1"}),
            FaceConstraint({"s2", "s3", "s4"}),
        ],
    )
    return ConstraintMatrix(cs, nv=3), syms


class TestConstraintMatrix:
    def test_initial_marks(self):
        matrix, syms = make_matrix()
        assert len(matrix.rows) == 2
        row = matrix.rows[0]
        assert set(row.marks) == {"s2", "s3", "s4", "s5"}
        assert row.unsatisfied_dichotomies() == 4
        assert not row.satisfied()

    def test_record_column_marks_satisfied_dichotomies(self):
        matrix, syms = make_matrix()
        # column: s0,s1 -> 1; everything else -> 0
        column = {s: 1 if s in ("s0", "s1") else 0 for s in syms}
        matrix.record_column(column)
        row = matrix.rows[0]
        assert row.satisfied()
        assert row.agree_columns == {0}
        # second constraint: members s2,s3,s4 all got 0 -> agree;
        # outsiders s0,s1 differ, s5 matches
        row2 = matrix.rows[1]
        assert row2.agree_columns == {0}
        assert row2.marks["s0"] == 1 and row2.marks["s1"] == 1
        assert row2.marks["s5"] == 0
        assert row2.intruders() == ["s5"]

    def test_disagree_column(self):
        matrix, syms = make_matrix()
        column = {s: 0 for s in syms}
        column["s0"] = 1  # splits constraint 0
        matrix.record_column(column)
        assert matrix.rows[0].disagree_columns == {0}
        assert matrix.rows[0].marks["s5"] == 0

    def test_paper_notation(self):
        matrix, syms = make_matrix()
        column = {s: 1 if s in ("s0", "s1") else 0 for s in syms}
        matrix.record_column(column)
        paper = matrix.as_paper_matrix()
        # row 0: members 1; satisfied zeros show column index + 1 = 2
        assert paper[0] == [1, 1, 2, 2, 2, 2]

    def test_dim_bounds(self):
        matrix, syms = make_matrix()
        row = matrix.rows[1]  # |L| = 3 -> min dim 2
        assert row.dim_min(3) == 2
        assert row.dim_max(3) == 3
        column = {s: 1 if s in ("s2", "s3", "s4") else 0 for s in syms}
        matrix.record_column(column)
        assert row.dim_max(3) == 2

    def test_too_many_columns_rejected(self):
        matrix, syms = make_matrix()
        column = {s: 0 for s in syms}
        column["s0"] = 1
        for _ in range(3):
            matrix.record_column(column)
        with pytest.raises(ValueError):
            matrix.record_column(column)

    def test_clone_independent(self):
        matrix, syms = make_matrix()
        twin = matrix.clone()
        column = {s: 1 if s in ("s0", "s1") else 0 for s in syms}
        matrix.record_column(column)
        assert twin.columns_generated == 0
        assert twin.rows[0].marks["s5"] == 0
