"""Tests for weight policies and Solve() internals."""

import pytest

from repro.core import PRESETS, WeightPolicy, PrefixGroups
from repro.core.solve import candidate_columns
from repro.encoding import ConstraintMatrix, ConstraintSet, FaceConstraint


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


class TestWeightPolicy:
    def test_presets_exist(self):
        for name in ("picola", "dichotomy_count", "constraint_count"):
            assert name in PRESETS

    def test_guide_discount(self):
        cs = cset_of(6, [[0, 1, 2]])
        matrix = ConstraintMatrix(cs, 3)
        row = matrix.rows[0]
        policy = WeightPolicy(guide_factor=0.5, progress_bonus=0.0,
                              size_exponent=0.0)
        w_original = policy.row_weight(row)
        guide = FaceConstraint({"s3", "s4"}, kind="guide",
                               parent=row.members)
        guide_row = matrix.add_constraint(guide)
        assert policy.row_weight(guide_row) == pytest.approx(
            0.5 * w_original * (len(row.members) / len(row.members))
        )

    def test_progress_bonus_grows_with_marks(self):
        cs = cset_of(6, [[0, 1]])
        matrix = ConstraintMatrix(cs, 3)
        row = matrix.rows[0]
        policy = WeightPolicy(progress_bonus=1.0)
        before = policy.row_weight(row)
        column = {s: 1 if s in ("s0", "s1") else 0 for s in cs.symbols}
        matrix.record_column(column)
        assert policy.row_weight(row) > before

    def test_size_exponent_prefers_small(self):
        cs = cset_of(8, [[0, 1], [2, 3, 4, 5]])
        matrix = ConstraintMatrix(cs, 3)
        policy = WeightPolicy(size_exponent=1.0, progress_bonus=0.0)
        small = policy.row_weight(matrix.rows[0])
        large = policy.row_weight(matrix.rows[1])
        assert small > large

    def test_constraint_weight_multiplies(self):
        cs = ConstraintSet(
            ["a", "b", "c"], [FaceConstraint({"a", "b"}, weight=3.0)]
        )
        matrix = ConstraintMatrix(cs, 2)
        policy = WeightPolicy(progress_bonus=0.0, size_exponent=0.0)
        assert policy.row_weight(matrix.rows[0]) == pytest.approx(3.0)


class TestPrefixGroups:
    def test_clone_independent(self):
        groups = PrefixGroups(["a", "b", "c", "d"], 2)
        twin = groups.clone()
        groups.apply_column({"a": 0, "b": 0, "c": 1, "d": 1})
        assert twin.columns_done == 0
        assert twin.prefix["a"] == ()

    def test_group_sizes(self):
        groups = PrefixGroups(["a", "b", "c"], 2)
        groups.apply_column({"a": 0, "b": 0, "c": 1})
        assert groups.group_sizes() == {(0,): 2, (1,): 1}

    def test_final_cap_is_one(self):
        groups = PrefixGroups(["a", "b"], 1)
        assert groups.cap_after_next_column() == 1


class TestCandidateColumns:
    def test_limit_respected_and_distinct(self):
        cs = cset_of(10, [[0, 1, 2], [3, 4], [5, 6, 7]])
        matrix = ConstraintMatrix(cs, 4)
        groups = PrefixGroups(list(cs.symbols), 4)
        cands = candidate_columns(matrix, groups, limit=3)
        assert 1 <= len(cands) <= 3
        keys = set()
        for col in cands:
            key = tuple(col[s] for s in cs.symbols)
            flipped = tuple(1 - b for b in key)
            assert key not in keys and flipped not in keys
            keys.add(key)

    def test_all_candidates_valid(self):
        cs = cset_of(9, [[0, 1, 2, 3]])
        matrix = ConstraintMatrix(cs, 4)
        groups = PrefixGroups(list(cs.symbols), 4)
        for col in candidate_columns(matrix, groups, limit=4):
            assert groups.is_valid_column(col)

    def test_empty_constraint_matrix_ok(self):
        cs = cset_of(5, [])
        matrix = ConstraintMatrix(cs, 3)
        groups = PrefixGroups(list(cs.symbols), 3)
        cands = candidate_columns(matrix, groups, limit=2)
        assert cands and groups.is_valid_column(cands[0])


class TestInfeasibleRowSteering:
    """Infeasible rows keep shrinking their intruder sets (the fix
    behind the scf Table I row; see core/solve.py)."""

    def test_infeasible_row_still_scores(self):
        from repro.core.solve import _ColumnBuilder
        from repro.core.weights import WeightPolicy

        cs = cset_of(8, [[0, 1, 2, 3, 4]])  # infeasible in B^3
        matrix = ConstraintMatrix(cs, 3)
        matrix.rows[0].infeasible = True
        groups = PrefixGroups(list(cs.symbols), 3)
        builder = _ColumnBuilder(matrix, groups, WeightPolicy(), 0.5)
        assert len(builder.states) == 1  # the infeasible row is live
        assert builder.states[0].weight > 0

    def test_infeasible_guide_rows_dropped(self):
        from repro.core.solve import _ColumnBuilder
        from repro.core.weights import WeightPolicy
        from repro.encoding import FaceConstraint

        cs = cset_of(6, [[0, 1]])
        matrix = ConstraintMatrix(cs, 3)
        guide = FaceConstraint({"s2", "s3"}, kind="guide",
                               parent=frozenset({"s0", "s1"}))
        row = matrix.add_constraint(guide)
        row.infeasible = True
        groups = PrefixGroups(list(cs.symbols), 3)
        builder = _ColumnBuilder(matrix, groups, WeightPolicy(), 0.5)
        assert all(
            not st.row.constraint.is_guide() for st in builder.states
        )

    def test_marks_shrink_intruders_of_infeasible_rows(self):
        from repro.core import picola_encode

        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        result = picola_encode(cs)
        (row,) = result.matrix.original_rows()
        assert row.infeasible
        # the dichotomy pressure should have cut intruders well below
        # "all three outsiders end up on the face"
        assert len(result.encoding.intruders(row.members)) <= 3
