"""Tests for the FSM substrate: model, KISS2 I/O, library, generator."""

import pytest

from repro.cubes import contains
from repro.fsm import (
    BENCHMARKS,
    TABLE1_FSMS,
    TABLE2_FSMS,
    Fsm,
    Transition,
    benchmark_names,
    encode_fsm,
    format_kiss,
    fsm_to_symbolic_cover,
    load_benchmark,
    parse_kiss,
    synthesize_fsm,
    unused_code_cubes,
)

SIMPLE_KISS = """
.i 2
.o 1
.s 2
.p 3
.r a
00 a a 0
01 a b 0
-- b a 1
"""


class TestTransition:
    def test_rejects_bad_chars(self):
        with pytest.raises(ValueError):
            Transition("0x", "a", "b", "1")
        with pytest.raises(ValueError):
            Transition("01", "a", "b", "z")


class TestFsmModel:
    def make(self):
        fsm = Fsm("toy")
        fsm.add("00", "a", "a", "0")
        fsm.add("01", "a", "b", "0")
        fsm.add("--", "b", "a", "1")
        fsm.reset_state = "a"
        return fsm

    def test_states_order_reset_first(self):
        fsm = self.make()
        assert fsm.states == ["a", "b"]
        fsm.reset_state = "b"
        assert fsm.states == ["b", "a"]

    def test_counts(self):
        fsm = self.make()
        assert fsm.n_inputs == 2
        assert fsm.n_outputs == 1
        assert fsm.n_states == 2
        assert fsm.stats()["terms"] == 3

    def test_min_code_length(self):
        fsm = self.make()
        assert fsm.min_code_length() == 1
        for _ in range(3):
            fsm.add("11", "a", f"extra{_}", "0")
        assert fsm.n_states == 5
        assert fsm.min_code_length() == 3

    def test_width_consistency_enforced(self):
        fsm = self.make()
        with pytest.raises(ValueError):
            fsm.add("0", "a", "b", "1")
        with pytest.raises(ValueError):
            fsm.add("00", "a", "b", "11")

    def test_validate_unknown_reset(self):
        fsm = self.make()
        fsm.reset_state = "nope"
        with pytest.raises(ValueError):
            fsm.validate()

    def test_completely_specified(self):
        fsm = self.make()
        assert not fsm.completely_specified()  # state a misses 1-
        fsm.add("1-", "a", "a", "0")
        assert fsm.completely_specified()

    def test_transitions_from_and_next_states(self):
        fsm = self.make()
        assert len(fsm.transitions_from("a")) == 2
        assert fsm.next_states_of("a") == {"a", "b"}


class TestKissIO:
    def test_parse_simple(self):
        fsm = parse_kiss(SIMPLE_KISS, name="simple")
        assert fsm.name == "simple"
        assert fsm.reset_state == "a"
        assert fsm.n_states == 2
        assert len(fsm.transitions) == 3

    def test_parse_checks_counts(self):
        bad = SIMPLE_KISS.replace(".s 2", ".s 5")
        with pytest.raises(ValueError):
            parse_kiss(bad)

    def test_parse_rejects_width_mismatch(self):
        bad = SIMPLE_KISS.replace("01 a b 0", "011 a b 0")
        with pytest.raises(ValueError):
            parse_kiss(bad)

    def test_roundtrip(self):
        fsm = parse_kiss(SIMPLE_KISS)
        again = parse_kiss(format_kiss(fsm))
        assert again.transitions == fsm.transitions
        assert again.reset_state == fsm.reset_state

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_kiss(".i 2\n.o 1\n.e\n")


class TestLibrary:
    def test_registry_contains_table_machines(self):
        for name in TABLE1_FSMS + TABLE2_FSMS:
            assert name in BENCHMARKS

    def test_embedded_files_load(self):
        for name in ["lion", "train4", "shiftreg", "modulo12",
                     "dk27", "seq101", "vending"]:
            fsm = load_benchmark(name)
            spec = BENCHMARKS[name]
            assert fsm.n_inputs == spec.inputs
            assert fsm.n_outputs == spec.outputs
            assert fsm.n_states == spec.states

    def test_synthetic_match_spec(self):
        for name in ["bbara", "lion9", "opus", "keyb"]:
            fsm = load_benchmark(name)
            spec = BENCHMARKS[name]
            assert fsm.n_inputs == spec.inputs
            assert fsm.n_outputs == spec.outputs
            assert fsm.n_states == spec.states
            assert len(fsm.transitions) >= spec.states

    def test_synthetic_deterministic(self):
        a = load_benchmark("bbara")
        b = load_benchmark("bbara")
        assert a.transitions == b.transitions

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_benchmark("not-a-machine")

    def test_benchmark_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)
        assert "scf" in names


class TestSynthesizer:
    def test_connected_and_deterministic_partition(self):
        fsm = synthesize_fsm("gen", 3, 2, 6, 24, seed=7)
        assert fsm.n_states == 6
        # per-state rows partition the input space: disjoint and complete
        for state in fsm.states:
            rows = fsm.transitions_from(state)
            total = sum(1 << t.inputs.count("-") for t in rows)
            assert total == 8, f"state {state} rows don't tile the inputs"
            for i, a in enumerate(rows):
                for b in rows[i + 1 :]:
                    assert any(
                        x != "-" and y != "-" and x != y
                        for x, y in zip(a.inputs, b.inputs)
                    ), "overlapping rows"

    def test_reachability(self):
        fsm = synthesize_fsm("gen2", 2, 2, 12, 40, seed=3)
        reachable = {fsm.states[0]}
        frontier = [fsm.states[0]]
        while frontier:
            cur = frontier.pop()
            for t in fsm.transitions_from(cur):
                if t.next not in reachable:
                    reachable.add(t.next)
                    frontier.append(t.next)
        assert reachable == set(fsm.states)

    def test_seed_changes_machine(self):
        a = synthesize_fsm("gen3", 2, 2, 5, 15, seed=0)
        b = synthesize_fsm("gen3", 2, 2, 5, 15, seed=1)
        assert a.transitions != b.transitions


class TestSymbolicCover:
    def test_shape(self):
        fsm = parse_kiss(SIMPLE_KISS)
        space, cover, states = fsm_to_symbolic_cover(fsm)
        assert states == ["a", "b"]
        # 2 binary inputs + state MV part + output part (2 next + 1 out)
        assert space.part_sizes == (2, 2, 2, 3)
        assert len(cover) == 3

    def test_one_hot_next_state(self):
        fsm = parse_kiss(SIMPLE_KISS)
        space, cover, states = fsm_to_symbolic_cover(fsm)
        # row "01 a b 0": next=b -> one-hot bit 1 of output part
        row = cover[1]
        out_field = space.field(row, 3)
        assert out_field == 0b010


class TestEncodeFsm:
    def make(self):
        return parse_kiss(SIMPLE_KISS)

    def test_encoded_pla_shape(self):
        fsm = self.make()
        pla = encode_fsm(fsm, {"a": 0, "b": 1})
        assert pla.n_inputs == 3  # 2 inputs + 1 state bit
        assert pla.n_outputs == 2  # 1 next-state bit + 1 output

    def test_rejects_non_injective(self):
        fsm = self.make()
        with pytest.raises(ValueError):
            encode_fsm(fsm, {"a": 1, "b": 1})

    def test_rejects_missing_state(self):
        fsm = self.make()
        with pytest.raises(ValueError):
            encode_fsm(fsm, {"a": 0})

    def test_next_state_function_correct(self):
        fsm = self.make()
        pla = encode_fsm(fsm, {"a": 0, "b": 1})
        # present=b (bit 1), any input -> next a (0), out 1
        got = pla.eval_minterm([0, 0, 1])
        assert got == [0, 1]
        # present=a, input 01 -> next b (bit set), out 0
        got = pla.eval_minterm([0, 1, 0])
        assert got == [1, 0]

    def test_unused_codes_are_dc(self):
        fsm = self.make()
        for _ in range(1):
            fsm.add("11", "a", "c", "0")
        pla = encode_fsm(fsm, {"a": 0, "b": 1, "c": 2})
        # 3 states in 2 bits -> one unused code (11): must appear in dc
        assert any(
            pla.space.field(c, 2) == 0b10 and pla.space.field(c, 3) == 0b10
            for c in pla.dcset
        )

    def test_unused_code_cubes_helper(self):
        got = unused_code_cubes(2, [0, 1, 2])
        assert got == [(1, 1)]


class TestDeterminismCheck:
    def test_conflicting_rows_detected(self):
        fsm = Fsm("bad")
        fsm.add("0-", "a", "b", "1")
        fsm.add("-0", "a", "a", "0")  # overlaps on 00 with other row
        assert len(fsm.conflicting_rows()) == 1
        with pytest.raises(ValueError):
            fsm.check_deterministic()

    def test_consistent_overlap_allowed(self):
        fsm = Fsm("dup")
        fsm.add("0-", "a", "b", "1")
        fsm.add("-0", "a", "b", "1")  # overlap but identical behaviour
        assert fsm.conflicting_rows() == []
        fsm.check_deterministic()

    def test_dc_output_overlap_is_compatible(self):
        fsm = Fsm("dc")
        fsm.add("0-", "a", "b", "-")
        fsm.add("-0", "a", "b", "1")
        assert fsm.conflicting_rows() == []

    def test_parse_kiss_enforces_determinism(self):
        bad = ".i 1\n.o 1\n.r a\n- a a 1\n0 a a 0\n"
        with pytest.raises(ValueError):
            parse_kiss(bad)
        fsm = parse_kiss(bad, check_deterministic=False)
        assert len(fsm.transitions) == 2

    def test_embedded_machines_are_deterministic(self):
        for name in ["lion", "train4", "shiftreg", "modulo12",
                     "dk27", "seq101", "vending"]:
            load_benchmark(name).check_deterministic()
