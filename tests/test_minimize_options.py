"""Tests for espresso's loop options and statistics."""

import pytest

from repro.cubes import Space, contains
from repro.espresso import EspressoStats, espresso, espresso_pla, Pla


def semantics(space, cover):
    return {
        m
        for m in space.iter_minterms()
        if any(contains(c, m) for c in cover)
    }


class TestLoopOptions:
    def setup_method(self):
        self.space = Space.binary(4)
        self.onset = [
            self.space.parse_cube(r)
            for r in ["0000", "0001", "0011", "0111", "1111", "1110"]
        ]

    def test_no_essentials_still_equivalent(self):
        got = espresso(self.space, self.onset, use_essentials=False)
        assert semantics(self.space, got) == semantics(
            self.space, self.onset
        )

    def test_no_lastgasp_still_equivalent(self):
        got = espresso(self.space, self.onset, use_lastgasp=False)
        assert semantics(self.space, got) == semantics(
            self.space, self.onset
        )

    def test_max_iterations_one(self):
        got = espresso(self.space, self.onset, max_iterations=1)
        assert semantics(self.space, got) == semantics(
            self.space, self.onset
        )

    def test_option_combinations_agree_on_cost_ballpark(self):
        costs = set()
        for ess in (True, False):
            for lg in (True, False):
                got = espresso(
                    self.space, self.onset,
                    use_essentials=ess, use_lastgasp=lg,
                )
                costs.add(len(got))
        assert max(costs) - min(costs) <= 1

    def test_stats_track_essentials(self):
        stats = EspressoStats()
        espresso(self.space, self.onset, stats=stats)
        assert stats.initial_terms == len(self.onset)
        assert stats.final_terms <= stats.initial_terms
        assert stats.essential_terms >= 0

    def test_espresso_pla_forwards_stats(self):
        pla = Pla(2, 1)
        pla.add_term("00", "1")
        pla.add_term("01", "1")
        stats = EspressoStats()
        out = espresso_pla(pla, stats=stats)
        assert stats.final_terms == out.num_terms() == 1


class TestHarnessEncSkip:
    def test_enc_skip_row_not_attempted(self):
        from repro.harness import run_table1
        from repro.harness.table1 import ENC_SKIP

        name = sorted(ENC_SKIP)[0]
        report = run_table1([name], include_enc=True, enc_budget=10)
        row = report.rows[0]
        assert row.cubes_enc is None
        # it was "attempted" at the harness level (include_enc=True),
        # so the table renders `fails`, matching the paper's cell
        assert row.enc_attempted
        assert "fails" in report.render()


class TestStateassignExtras:
    def test_picola_extra_fields(self):
        from repro.fsm import load_benchmark
        from repro.stateassign import assign_states

        result = assign_states(load_benchmark("lion9"), "picola")
        assert "satisfied" in result.extra
        assert "espresso_iterations" in result.extra

    def test_enc_extra_fields(self):
        from repro.fsm import load_benchmark
        from repro.stateassign import assign_states

        result = assign_states(load_benchmark("seq101"), "enc")
        assert "converged" in result.extra

    def test_mustang_extra_fields(self):
        from repro.fsm import load_benchmark
        from repro.stateassign import assign_states

        result = assign_states(load_benchmark("lion"), "mustang_p")
        assert "attraction" in result.extra
