"""Edge-case tests across modules: the inputs users actually mistype."""

import pytest

from repro.cubes import Space, consensus, sharp
from repro.encoding import (
    ConstraintSet,
    Encoding,
    FaceConstraint,
    length_tradeoff,
    minimum_satisfying_length,
)
from repro.espresso import Pla, espresso
from repro.fsm import Fsm, format_kiss, parse_kiss


class TestSpaceEdges:
    def test_single_part_space(self):
        space = Space([2])
        assert space.universe == 0b11
        assert list(space.iter_minterms()) == [0b01, 0b10]

    def test_field_access_roundtrip(self):
        space = Space([2, 5, 3])
        cube = space.make_cube([0b10, 0b10101, 0b011])
        assert space.fields(cube) == [0b10, 0b10101, 0b011]

    def test_with_field_too_wide(self):
        space = Space([2, 2])
        with pytest.raises(ValueError):
            space.with_field(space.universe, 0, 0b100)

    def test_literal_out_of_range(self):
        space = Space([2])
        with pytest.raises(ValueError):
            space.literal(0, 2)

    def test_minterm_wrong_arity(self):
        space = Space([2, 2])
        with pytest.raises(ValueError):
            space.minterm([0])


class TestMVCubeEdges:
    def test_consensus_mv_conflict(self):
        space = Space([3, 2])
        a = space.make_cube([0b001, 0b11])
        b = space.make_cube([0b110, 0b01])
        got = consensus(space, a, b)
        # conflict only in part 0 -> raised there, intersect part 1
        assert space.fields(got) == [0b111, 0b01]

    def test_sharp_identity_when_disjoint(self):
        space = Space([3])
        a = space.make_cube([0b001])
        b = space.make_cube([0b110])
        assert sharp(space, a, b) == [a]

    def test_sharp_of_self_empty(self):
        space = Space([3, 2])
        a = space.make_cube([0b011, 0b01])
        assert sharp(space, a, a) == []


class TestEspressoEdges:
    def test_single_minterm(self):
        space = Space.binary(4)
        m = space.parse_cube("0101")
        assert espresso(space, [m]) == [m]

    def test_full_tautology_collapses(self):
        space = Space.binary(3)
        onset = list(space.iter_minterms())
        assert espresso(space, onset) == [space.universe]

    def test_duplicate_cubes_deduplicated(self):
        space = Space.binary(2)
        c = space.parse_cube("01")
        assert len(espresso(space, [c, c, c])) == 1

    def test_onset_covered_by_dc_vanishes(self):
        space = Space.binary(2)
        onset = [space.parse_cube("00")]
        dcset = [space.parse_cube("--")]
        # the function may legally become empty (all dc)
        got = espresso(space, onset, dcset)
        assert len(got) <= 1

    def test_pla_zero_inputs(self):
        pla = Pla(0, 2)
        assert pla.space.part_sizes == (2,)


class TestEncodingEdges:
    def test_zero_symbol_constraintset(self):
        cs = ConstraintSet([])
        assert cs.min_code_length() == 1
        assert cs.nontrivial() == []

    def test_encoding_with_spare_bits(self):
        enc = Encoding(["a", "b"], {"a": 0, "b": 5}, 3)
        assert enc.n_bits == 3
        assert len(enc.unused_codes()) == 6

    def test_length_functions_on_trivial_sets(self):
        cs = ConstraintSet(["a", "b"], [])
        assert minimum_satisfying_length(cs) == 1
        points = length_tradeoff(cs, max_extra_bits=0)
        assert points[0].cubes == 0


class TestFsmEdges:
    def test_single_state_machine(self):
        fsm = Fsm("one")
        fsm.add("-", "only", "only", "1")
        assert fsm.min_code_length() == 1
        assert fsm.completely_specified()

    def test_format_kiss_without_reset(self):
        fsm = Fsm("noreset")
        fsm.add("0", "a", "a", "1")
        fsm.add("1", "a", "a", "0")
        text = format_kiss(fsm)
        assert ".r" not in text
        again = parse_kiss(text)
        assert again.reset_state is None

    def test_star_next_state(self):
        kiss = ".i 1\n.o 1\n.r a\n0 a b 1\n1 a * 0\n0 b a 0\n1 b b 1\n"
        fsm = parse_kiss(kiss)
        assert fsm.n_states == 2  # '*' is not a state

    def test_kiss_comment_only_lines(self):
        kiss = "# header\n.i 1\n.o 1\n# mid\n0 a a 1\n1 a a 0\n"
        fsm = parse_kiss(kiss)
        assert len(fsm.transitions) == 2
