"""Live-daemon tests for ``picola serve`` (HTTP/JSON front end).

Each test binds an ephemeral port (``port=0``), drives the server
over real sockets with :mod:`urllib`, and asserts the wire contract:
envelope shape, byte-identical cache hits, batch semantics, classified
transport errors (400/404/429) and the stats endpoint.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MemorySink, Tracer
from repro.service import ServerConfig, make_server
from repro.service.server import ServiceState


@pytest.fixture
def server():
    srv = make_server(ServerConfig(port=0, jobs=1, queue_limit=8))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5.0)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post_raw(url, body: bytes):
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post(url, payload):
    status, body = _post_raw(url, json.dumps(payload).encode())
    return status, json.loads(body)


ENCODE_PAYLOAD = {
    "symbols": ["a", "b", "c", "d"],
    "constraints": [
        {"symbols": ["a", "b"]},
        {"symbols": ["c", "d"]},
    ],
    "solver": "picola",
}


class TestRoutes:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert "picola" in body["solvers"]
        import repro

        assert body["version"] == repro.__version__

    def test_unknown_path_is_classified_404(self, server):
        status, body = _get(server.url + "/nope")
        assert status == 404
        assert body["error"]["type"] == "NotFound"
        status, body = _post(server.url + "/v1/nope", {})
        assert status == 404

    def test_stats_endpoint(self, server):
        _post(server.url + "/v1/encode", ENCODE_PAYLOAD)
        status, body = _get(server.url + "/v1/stats")
        assert status == 200
        assert body["cache"]["entries"] == 1
        assert body["queue"]["limit"] == 8


class TestEncodeEndpoint:
    def test_answers_encode_requests(self, server):
        status, body = _post(
            server.url + "/v1/encode", ENCODE_PAYLOAD
        )
        assert status == 200
        assert body["cached"] is False
        result = body["result"]
        assert result["status"] == "ok"
        assert result["n_bits"] == 2
        assert set(result["codes"]) == {"a", "b", "c", "d"}

    def test_repeat_is_byte_identical_cache_hit(self, server):
        _, first = _post_raw(
            server.url + "/v1/encode",
            json.dumps(ENCODE_PAYLOAD).encode(),
        )
        _, second = _post_raw(
            server.url + "/v1/encode",
            json.dumps(ENCODE_PAYLOAD).encode(),
        )
        assert json.loads(first)["cached"] is False
        assert json.loads(second)["cached"] is True
        # the result payload is re-served byte for byte; only the
        # envelope's cached flag differs
        prefix = b'"result":'
        assert first.split(prefix, 1)[1] == second.split(prefix, 1)[1]

    def test_constraint_order_hits_the_same_cache_line(self, server):
        _post(server.url + "/v1/encode", ENCODE_PAYLOAD)
        reordered = dict(
            ENCODE_PAYLOAD,
            constraints=list(reversed(ENCODE_PAYLOAD["constraints"])),
        )
        _, body = _post(server.url + "/v1/encode", reordered)
        assert body["cached"] is True

    def test_solver_failure_is_http_200_classified(self, server):
        payload = dict(ENCODE_PAYLOAD, solver="nope")
        status, body = _post(server.url + "/v1/encode", payload)
        assert status == 200  # a classified result, not a transport error
        assert body["result"]["status"] == "failed"

    def test_per_request_deadline_maps_to_budget(self, server):
        payload = {
            "symbols": [f"s{i}" for i in range(8)],
            "constraints": [{"symbols": ["s0", "s1", "s2"]}],
            "solver": "exact",
            "max_nodes": 1,
        }
        status, body = _post(server.url + "/v1/encode", payload)
        assert status == 200
        assert body["result"]["status"] in ("budget", "timeout")

    def test_malformed_json_is_400(self, server):
        status, body = _post_raw(
            server.url + "/v1/encode", b"{not json"
        )
        error = json.loads(body)["error"]
        assert status == 400
        assert "JSON" in error["message"]

    def test_unknown_key_is_400(self, server):
        status, body = _post(
            server.url + "/v1/encode",
            dict(ENCODE_PAYLOAD, sovler="picola"),
        )
        assert status == 400
        assert body["error"]["type"] == "InvalidSpecError"

    def test_empty_body_is_400(self, server):
        status, body = _post_raw(server.url + "/v1/encode", b"")
        assert status == 400


class TestBatchEndpoint:
    def test_batch_preserves_order(self, server):
        other = {
            "symbols": ["x", "y", "z"],
            "constraints": [{"symbols": ["x", "y"]}],
            "solver": "exact",
        }
        status, body = _post(
            server.url + "/v1/batch",
            {"requests": [ENCODE_PAYLOAD, other]},
        )
        assert status == 200
        results = body["results"]
        assert [r["result"]["solver"] for r in results] == [
            "picola", "exact",
        ]

    def test_batch_duplicates_served_from_cache(self, server):
        status, body = _post(
            server.url + "/v1/batch",
            {"requests": [ENCODE_PAYLOAD, ENCODE_PAYLOAD]},
        )
        assert status == 200
        first, second = body["results"]
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]

    def test_empty_batch(self, server):
        status, body = _post(
            server.url + "/v1/batch", {"requests": []}
        )
        assert status == 200 and body == {"results": []}

    def test_batch_shape_validated(self, server):
        status, body = _post(
            server.url + "/v1/batch", {"requests": "nope"}
        )
        assert status == 400

    def test_oversized_batch_is_429(self, server):
        # queue_limit is 8: an 9-request batch cannot be admitted
        status, body = _post(
            server.url + "/v1/batch",
            {"requests": [ENCODE_PAYLOAD] * 9},
        )
        assert status == 429
        assert body["error"]["type"] == "overloaded"
        assert body["error"]["status"] == 429


class TestBackpressureOverHttp:
    def test_queue_overflow_degrades_gracefully(self):
        """Saturate admission control; overflow answers classified
        429 JSON and the server keeps serving afterwards."""
        srv = make_server(
            ServerConfig(port=0, jobs=1, queue_limit=1)
        )
        thread = threading.Thread(
            target=srv.serve_forever, daemon=True
        )
        thread.start()
        try:
            # hold the single admission slot without going through
            # HTTP, so the next HTTP request overflows deterministically
            assert srv.state.try_acquire()
            status, body = _post(
                srv.url + "/v1/encode", ENCODE_PAYLOAD
            )
            assert status == 429
            assert body["error"]["type"] == "overloaded"
            srv.state.release()
            status, body = _post(
                srv.url + "/v1/encode", ENCODE_PAYLOAD
            )
            assert status == 200  # recovered
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5.0)

    def test_retry_after_reflects_queue_depth(self):
        """The 429 Retry-After header is derived from the backlog
        (batches-to-drain x batch_wait), not hardcoded to 1."""
        srv = make_server(
            ServerConfig(
                port=0, jobs=1, queue_limit=2,
                batch_max=1, batch_wait=5.0,
            )
        )
        thread = threading.Thread(
            target=srv.serve_forever, daemon=True
        )
        thread.start()
        try:
            # two held slots = two one-request batches of up to 5 s
            # aggregation each ahead of a retrying client
            assert srv.state.try_acquire(2)
            request = urllib.request.Request(
                srv.url + "/v1/encode",
                data=json.dumps(ENCODE_PAYLOAD).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=30)
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "10"
            # the batch endpoint derives the same header
            request = urllib.request.Request(
                srv.url + "/v1/batch",
                data=json.dumps(
                    {"requests": [ENCODE_PAYLOAD]}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=30)
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "10"
        finally:
            srv.state.release(2)
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5.0)


class TestServerObservability:
    def test_requests_traced_through_daemon(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        srv = make_server(
            ServerConfig(port=0, jobs=1), tracer=tracer
        )
        thread = threading.Thread(
            target=srv.serve_forever, daemon=True
        )
        thread.start()
        try:
            _post(srv.url + "/v1/encode", ENCODE_PAYLOAD)
            _post(srv.url + "/v1/encode", ENCODE_PAYLOAD)
            counters = tracer.counters()
            assert counters["service.requests"] == 2
            assert counters["service.cache.hits"] == 1
            assert counters["service.cache.misses"] == 1
            names = [e["name"] for e in sink.spans]
            assert "service/request" in names
            # exactly one solve: the second request was a cache hit
            assert names.count("service/solve") == 1
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5.0)

    def test_micro_batching_aggregates_concurrent_clients(self):
        """Concurrent posts ride one micro-batch (single batcher
        drain), and every client still gets its own answer."""
        srv = make_server(
            ServerConfig(
                port=0, jobs=1, queue_limit=16, batch_wait=0.05
            )
        )
        thread = threading.Thread(
            target=srv.serve_forever, daemon=True
        )
        thread.start()
        try:
            payloads = [
                {
                    "symbols": [f"s{i}", f"t{i}", f"u{i}"],
                    "constraints": [{"symbols": [f"s{i}", f"t{i}"]}],
                }
                for i in range(4)
            ]
            results = [None] * len(payloads)

            def post_one(i):
                results[i] = _post(
                    srv.url + "/v1/encode", payloads[i]
                )

            threads = [
                threading.Thread(target=post_one, args=(i,))
                for i in range(len(payloads))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            for i, (status, body) in enumerate(results):
                assert status == 200
                assert body["result"]["status"] == "ok"
                assert f"s{i}" in body["result"]["codes"]
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5.0)


class TestServeState:
    def test_server_url_reports_bound_port(self, server):
        assert server.url.startswith("http://127.0.0.1:")
        port = int(server.url.rsplit(":", 1)[1])
        assert port > 0

    def test_state_is_a_service_state(self, server):
        assert isinstance(server.state, ServiceState)

    def test_retry_after_derivation(self):
        """An idle queue advises 1 s; a full one advises the time
        its batches need to drain, rounded up to whole seconds."""
        state = ServiceState(
            ServerConfig(
                queue_limit=64, batch_max=16, batch_wait=2.0
            )
        )
        assert state.retry_after() == 1  # idle: smallest useful wait
        state.try_acquire(64)
        # 64 in flight / 16 per batch = 4 batches x 2 s aggregation
        assert state.retry_after() == 8
        state.release(64)
        state.try_acquire(1)
        # a partial batch still costs one aggregation window
        assert state.retry_after() == 2
        # sub-second estimates round up, never advise 0
        fast = ServiceState(
            ServerConfig(
                queue_limit=64, batch_max=16, batch_wait=0.01
            )
        )
        fast.try_acquire(64)
        assert fast.retry_after() == 1
