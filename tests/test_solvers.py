"""Conformance tests for the unified solver registry (repro.solvers)."""

import inspect

import pytest

from repro.baselines.nova import nova_encode
from repro.encoding import derive_face_constraints
from repro.encoding.exact import exact_encode
from repro.fsm import load_benchmark
from repro.obs import MemorySink, Tracer
from repro.runtime import Budget, Deadline
from repro.solvers import (
    EncodeResult,
    Solver,
    get_solver,
    list_solvers,
    register_solver,
)

ALL_SOLVERS = ("enc", "exact", "mustang", "nova", "picola", "simple")


@pytest.fixture(scope="module")
def lion():
    fsm = load_benchmark("lion")
    return fsm, derive_face_constraints(fsm)


def _solve(name, fsm, cset, **kwargs):
    """Solve with the per-solver required options filled in."""
    options = dict(kwargs.pop("options", {}) or {})
    if name == "mustang":
        options.setdefault("fsm", fsm)
    return get_solver(name).solve(cset, options=options, **kwargs)


class TestRegistry:
    def test_all_solvers_registered(self):
        assert list_solvers() == ALL_SOLVERS

    def test_unknown_solver_lists_the_menu(self):
        with pytest.raises(KeyError, match="picola"):
            get_solver("does-not-exist")

    def test_duplicate_registration_rejected(self):
        class Dup(Solver):
            name = "picola"

        with pytest.raises(ValueError, match="already registered"):
            register_solver(Dup())

    def test_replace_and_restore(self):
        original = get_solver("simple")

        class Override(Solver):
            name = "simple"

        try:
            register_solver(Override(), replace=True)
            assert isinstance(get_solver("simple"), Override)
        finally:
            register_solver(original, replace=True)
        assert get_solver("simple") is original

    def test_unnamed_solver_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register_solver(Solver())


class TestUniformSignature:
    def test_solve_signature_is_shared(self):
        expected = [
            "self", "symbols", "constraints",
            "options", "budget", "deadline", "tracer",
        ]
        for name in ALL_SOLVERS:
            solver = get_solver(name)
            sig = inspect.signature(type(solver).solve)
            assert list(sig.parameters) == expected, name
            for kw in ("options", "budget", "deadline", "tracer"):
                assert (
                    sig.parameters[kw].kind
                    is inspect.Parameter.KEYWORD_ONLY
                ), (name, kw)

    @pytest.mark.parametrize("name", ALL_SOLVERS)
    def test_result_shape(self, name, lion):
        fsm, cset = lion
        result = _solve(name, fsm, cset)
        assert isinstance(result, EncodeResult)
        assert result.solver == name
        assert result.seconds >= 0.0
        assert isinstance(result.nodes, int)
        assert result.nodes >= 0
        assert "nodes" in result.stats
        # the encoding covers every symbol, injectively
        encoding = result.encoding
        assert set(encoding.symbols) == set(cset.symbols)
        assert encoding.is_injective()
        assert encoding.n_bits >= cset.min_code_length()

    @pytest.mark.parametrize("name", ("picola", "exact"))
    def test_constraint_solvers_do_real_work(self, name, lion):
        fsm, cset = lion
        result = _solve(name, fsm, cset)
        assert result.nodes > 0
        assert result.stats["satisfied"] > 0

    def test_symbols_plus_constraints_form(self):
        result = get_solver("simple").solve(["a", "b", "c"], ())
        assert set(result.encoding.symbols) == {"a", "b", "c"}

    def test_constraint_set_plus_constraints_rejected(self, lion):
        fsm, cset = lion
        with pytest.raises(ValueError, match="not both"):
            get_solver("picola").solve(cset, [])


class TestOptionValidation:
    def test_unknown_option_raises(self, lion):
        fsm, cset = lion
        with pytest.raises(TypeError, match="typo_key"):
            get_solver("picola").solve(
                cset, options={"typo_key": 1}
            )

    def test_error_names_the_known_keys(self, lion):
        fsm, cset = lion
        with pytest.raises(TypeError, match="anneal_moves"):
            get_solver("nova").solve(cset, options={"bogus": 1})

    def test_mustang_requires_fsm(self, lion):
        fsm, cset = lion
        with pytest.raises(TypeError, match="fsm"):
            get_solver("mustang").solve(cset)

    def test_budget_and_deadline_exclusive(self, lion):
        fsm, cset = lion
        with pytest.raises(ValueError, match="not both"):
            get_solver("picola").solve(
                cset,
                budget=Budget(seconds=10),
                deadline=Deadline(10),
            )

    def test_deadline_alone_is_accepted(self, lion):
        fsm, cset = lion
        result = get_solver("picola").solve(
            cset, deadline=Deadline(60)
        )
        assert result.encoding.is_injective()


class TestTracerPlumbing:
    def test_nodes_counted_without_a_tracer(self, lion):
        """Node counts come from a private tracer when tracing is off."""
        fsm, cset = lion
        result = get_solver("nova").solve(cset)
        assert result.nodes > 0

    def test_callers_tracer_sees_solver_counters(self, lion):
        fsm, cset = lion
        sink = MemorySink()
        tracer = Tracer(sink)
        result = get_solver("picola").solve(cset, tracer=tracer)
        assert tracer.counter("picola.beam_states") == result.nodes
        assert any(
            s["name"] == "picola/encode" for s in sink.spans
        )


class TestDeterminismAcrossApis:
    """The registry must not change results vs the legacy entry points."""

    def test_picola_matches_legacy_call(self, lion):
        from repro.core import picola_encode

        fsm, cset = lion
        via_registry = get_solver("picola").solve(cset)
        legacy = picola_encode(cset)
        assert (
            via_registry.encoding.codes == legacy.encoding.codes
        )

    def test_nova_matches_legacy_call(self, lion):
        fsm, cset = lion
        via_registry = get_solver("nova").solve(
            cset, options={"seed": 1}
        )
        legacy = nova_encode(cset, seed=1)
        assert (
            via_registry.encoding.codes == legacy.encoding.codes
        )


class TestRemovedPositionalNv:
    """Positional nv: deprecated in 1.1.0, a hard TypeError since 1.6.0."""

    def test_exact_positional_nv_raises(self, lion):
        fsm, cset = lion
        with pytest.raises(TypeError, match="positional nv"):
            exact_encode(cset, 2)

    def test_nova_positional_nv_raises(self, lion):
        fsm, cset = lion
        with pytest.raises(TypeError, match="positional nv"):
            nova_encode(cset, 2)

    def test_message_names_the_migration(self, lion):
        fsm, cset = lion
        with pytest.raises(TypeError, match=r"nv=\.\.\."):
            exact_encode(cset, 2)

    def test_keyword_nv_is_clean(self, lion):
        import warnings

        fsm, cset = lion
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            exact_encode(cset, nv=2)
            nova_encode(cset, nv=2)
