"""Tests for the heuristic and exact two-level minimizers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes import Space, contains, cover_contains_cube, tautology
from repro.espresso import (
    EspressoStats,
    all_primes,
    espresso,
    exact_minimize,
    expand,
    irredundant,
    reduce_cover,
)
from repro.espresso.exact import ExactLimitError


def semantics(space, cover):
    return {
        m
        for m in space.iter_minterms()
        if any(contains(c, m) for c in cover)
    }


def assert_equivalent_on_care_set(space, got, onset, dcset=()):
    """got must cover all of onset and stay inside onset|dcset."""
    on = semantics(space, onset)
    dc = semantics(space, dcset)
    new = semantics(space, got)
    assert on - dc <= new, "minimized cover lost on-set minterms"
    assert new <= on | dc, "minimized cover grew outside the care set"


class TestExpand:
    def test_expand_merges_adjacent_minterms(self):
        space = Space.binary(3)
        on = [space.parse_cube("000"), space.parse_cube("001")]
        off = [space.parse_cube(r) for r in ["01-", "1--"]]
        got = expand(space, on, off)
        assert got == [space.parse_cube("00-")]

    def test_expand_result_is_prime(self):
        space = Space.binary(4)
        on = [space.parse_cube("0000")]
        off = [space.parse_cube("1111")]
        (prime,) = expand(space, on, off)
        # every further raise must hit the off-set
        free = space.universe & ~prime
        while free:
            bit = free & -free
            free &= free - 1
            grown = prime | bit
            assert any(
                all((grown & c) & m for m in space.part_masks)
                for c in off
            )


class TestIrredundant:
    def test_removes_consensus_middle(self):
        space = Space.binary(2)
        cover = [
            space.parse_cube("0-"),
            space.parse_cube("-1"),
            space.parse_cube("01"),  # redundant
        ]
        got = irredundant(space, cover)
        assert sorted(got) == sorted(cover[:2])

    def test_keeps_needed_cubes(self):
        space = Space.binary(2)
        cover = [space.parse_cube("0-"), space.parse_cube("1-")]
        assert sorted(irredundant(space, cover)) == sorted(cover)

    def test_respects_dcset(self):
        space = Space.binary(2)
        cover = [space.parse_cube("00")]
        dc = [space.parse_cube("0-")]
        assert irredundant(space, cover, dc) == []


class TestReduce:
    def test_reduce_keeps_coverage(self):
        space = Space.binary(3)
        cover = [space.parse_cube("0--"), space.parse_cube("-1-")]
        reduced = reduce_cover(space, cover)
        assert semantics(space, reduced) == semantics(space, cover)

    def test_fully_covered_cube_left_for_irredundant(self):
        from repro.espresso import reduce_cube

        space = Space.binary(2)
        # 11 is inside --, so its unique work is empty: reduce_cube
        # signals that with 0 and reduce_cover leaves it untouched
        assert reduce_cube(
            space, space.parse_cube("11"), [space.universe]
        ) == 0
        cover = [space.universe, space.parse_cube("11")]
        reduced = reduce_cover(space, cover)
        assert semantics(space, reduced) == semantics(space, cover)

    def test_reduce_carves_overlap(self):
        space = Space.binary(2)
        # two overlapping cubes: one of them must shed the shared corner
        cover = [space.parse_cube("1-"), space.parse_cube("-1")]
        reduced = reduce_cover(space, cover)
        assert semantics(space, reduced) == semantics(space, cover)
        assert sorted(reduced) != sorted(cover)


KNOWN_FUNCTIONS = [
    # (n_inputs, onset rows, dc rows, optimal cube count)
    (2, ["01", "10"], [], 2),  # xor
    (2, ["00", "01", "10", "11"], [], 1),  # tautology
    (3, ["000", "001", "011", "010"], [], 1),  # x0'
    (3, ["000", "111"], [], 2),
    (3, ["000", "001", "101"], [], 2),
    (3, ["010", "011", "110", "111", "101"], [], 2),  # x1 + x0x2
    (4, ["0000", "0001", "0011", "0010", "1000", "1001"], [], 2),
    (3, ["000"], ["001", "01-"], 1),
    (2, ["00"], ["11"], 1),
]


class TestEspressoKnownFunctions:
    @pytest.mark.parametrize("n,on,dc,optimum", KNOWN_FUNCTIONS)
    def test_reaches_known_optimum(self, n, on, dc, optimum):
        space = Space.binary(n)
        onset = [space.parse_cube(r) for r in on]
        dcset = [space.parse_cube(r) for r in dc]
        got = espresso(space, onset, dcset)
        assert_equivalent_on_care_set(space, got, onset, dcset)
        assert len(got) == optimum

    @pytest.mark.parametrize("n,on,dc,optimum", KNOWN_FUNCTIONS)
    def test_exact_matches_known_optimum(self, n, on, dc, optimum):
        space = Space.binary(n)
        onset = [space.parse_cube(r) for r in on]
        dcset = [space.parse_cube(r) for r in dc]
        got = exact_minimize(space, onset, dcset)
        assert_equivalent_on_care_set(space, got, onset, dcset)
        assert len(got) == optimum


class TestEspressoProperties:
    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_random_functions_stay_equivalent(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        space = Space.binary(n)
        minterms = list(space.iter_minterms())
        onset = [
            m for m in minterms if data.draw(st.booleans(), label="on")
        ]
        rest = [m for m in minterms if m not in onset]
        dcset = [m for m in rest if data.draw(st.booleans(), label="dc")]
        got = espresso(space, onset, dcset)
        assert_equivalent_on_care_set(space, got, onset, dcset)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_heuristic_close_to_exact(self, data):
        n = data.draw(st.integers(min_value=1, max_value=3))
        space = Space.binary(n)
        minterms = list(space.iter_minterms())
        onset = [m for m in minterms if data.draw(st.booleans())]
        got = espresso(space, onset)
        best = exact_minimize(space, onset)
        assert len(got) >= len(best)
        # the heuristic has no optimality guarantee, but on functions
        # this small it should land within one cube of the optimum
        assert len(got) <= len(best) + 1

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_multioutput_equivalence(self, data):
        n_in = data.draw(st.integers(min_value=1, max_value=3))
        n_out = data.draw(st.integers(min_value=1, max_value=3))
        space = Space.binary(n_in, n_out)
        minterms = list(space.iter_minterms())
        onset = [m for m in minterms if data.draw(st.booleans())]
        got = espresso(space, onset)
        assert_equivalent_on_care_set(space, got, onset, ())


class TestAllPrimes:
    def test_primes_of_xor(self):
        space = Space.binary(2)
        onset = [space.parse_cube("01"), space.parse_cube("10")]
        primes = all_primes(space, onset)
        assert sorted(primes) == sorted(onset)

    def test_primes_of_consensus_trio(self):
        space = Space.binary(2)
        onset = [space.parse_cube("0-"), space.parse_cube("-1")]
        primes = all_primes(space, onset)
        assert sorted(primes) == sorted(onset)

    def test_every_prime_is_maximal(self):
        space = Space.binary(3)
        onset = [
            space.parse_cube(r)
            for r in ["000", "001", "011", "111"]
        ]
        primes = all_primes(space, onset)
        for p in primes:
            free = space.universe & ~p
            while free:
                bit = free & -free
                free &= free - 1
                assert not cover_contains_cube(space, onset, p | bit)

    def test_limit_error(self):
        space = Space.binary(2)
        onset = [space.parse_cube(r) for r in ["00", "01", "11"]]
        with pytest.raises(ExactLimitError):
            all_primes(space, onset, max_primes=0)


class TestEspressoStats:
    def test_stats_populated(self):
        space = Space.binary(3)
        onset = [space.parse_cube(r) for r in ["000", "001", "011"]]
        stats = EspressoStats()
        espresso(space, onset, stats=stats)
        assert stats.initial_terms == 3
        assert stats.final_terms == 2
        assert stats.iterations >= 1

    def test_empty_onset(self):
        space = Space.binary(2)
        assert espresso(space, []) == []


class TestEspressoMVSpaces:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_multivalued_equivalence(self, data):
        """espresso over true MV spaces (like the symbolic state
        variable) must preserve the covered set exactly."""
        sizes = data.draw(
            st.lists(
                st.integers(min_value=2, max_value=4),
                min_size=1, max_size=3,
            )
        )
        space = Space(sizes)
        minterms = list(space.iter_minterms())
        onset = [m for m in minterms if data.draw(st.booleans())]
        got = espresso(space, onset)
        assert semantics(space, got) == semantics(space, onset)

    def test_mv_merge_example(self):
        """Two states with identical behaviour merge into one literal
        (the mechanism behind face-constraint derivation)."""
        space = Space([2, 3])  # one binary input, one 3-value state
        onset = [
            space.make_cube([0b01, 0b001]),
            space.make_cube([0b01, 0b010]),
        ]
        got = espresso(space, onset)
        assert got == [space.make_cube([0b01, 0b011])]


class TestClassicFunctions:
    def test_xor5_is_exactly_minimal(self):
        from repro.espresso import espresso_pla, xorn

        out = espresso_pla(xorn(5))
        assert out.num_terms() == 16  # theory: 2^(n-1) for parity

    def test_rd53_matches_published(self):
        from repro.espresso import espresso_pla, rdn

        out = espresso_pla(rdn(5))
        assert out.num_terms() == 31

    def test_majority_symmetry(self):
        from repro.espresso import espresso_pla, majority

        out = espresso_pla(majority(5))
        # C(5,3) = 10 minimal cubes (one per minimal winning coalition)
        assert out.num_terms() == 10

    def test_adder_semantics(self):
        from repro.espresso import adrn

        pla = adrn(2)
        # 2+2 adder: check 3 + 2 = 5
        got = pla.eval_minterm([1, 1, 1, 0])
        word = sum(bit << i for i, bit in enumerate(got))
        assert word == 5

    def test_squarer_semantics(self):
        from repro.espresso import sqrn

        pla = sqrn(3)
        got = pla.eval_minterm([1, 0, 1])  # 5
        word = sum(bit << i for i, bit in enumerate(got))
        assert word == 25
