"""The fuzz campaign driver and the ``picola fuzz`` CLI end to end."""

import json

import pytest

from repro.fuzz import CRASH, OK, FuzzConfig, run_fuzz
from repro.harness.cli import main
from repro.runtime import InvalidSpecError, faults
from repro.solvers import _REGISTRY, register_solver
from tests.test_fuzz_oracle import _FakeSolver


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _scrub(report_dict):
    for case in report_dict["cases"]:
        case.pop("seconds")
    return report_dict


class TestRunFuzz:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(
            FuzzConfig(max_examples=10, scale=10, timeout=30)
        )
        assert len(report.outcomes) == 10
        assert report.n_findings == 0
        assert report.counts[OK] == 10
        assert report.n_hardening_failures == 0

    def test_campaign_is_deterministic(self):
        config = dict(max_examples=8, seed=5, scale=10, timeout=30)
        a = run_fuzz(FuzzConfig(**config)).as_dict()
        b = run_fuzz(FuzzConfig(**config)).as_dict()
        assert _scrub(a) == _scrub(b)

    def test_jobs_match_serial(self):
        base = dict(max_examples=8, seed=3, scale=10, timeout=30)
        serial = run_fuzz(FuzzConfig(jobs=1, **base)).as_dict()
        pooled = run_fuzz(FuzzConfig(jobs=2, **base)).as_dict()
        assert _scrub(serial) == _scrub(pooled)

    def test_round_robin_covers_all_families(self):
        report = run_fuzz(
            FuzzConfig(max_examples=10, scale=8, timeout=30,
                       harden=False)
        )
        families = {o.family for o in report.outcomes}
        assert len(families) >= 3

    def test_generator_subset_respected(self):
        report = run_fuzz(
            FuzzConfig(generators=("random", "grid"),
                       max_examples=6, scale=8, timeout=30,
                       harden=False)
        )
        assert {o.family for o in report.outcomes} == {"random", "grid"}

    def test_config_validation(self):
        with pytest.raises(InvalidSpecError, match="unknown solver"):
            run_fuzz(FuzzConfig(solver="nope"))
        with pytest.raises(InvalidSpecError, match="max-examples"):
            run_fuzz(FuzzConfig(max_examples=0))
        with pytest.raises(InvalidSpecError, match="unknown generator"):
            run_fuzz(FuzzConfig(generators=("nope",)))
        with pytest.raises(InvalidSpecError, match="FSM-backed"):
            run_fuzz(
                FuzzConfig(solver="mustang", generators=("random",))
            )

    def test_findings_distilled_to_corpus(self, tmp_path):
        def crash(cset, opts):
            raise RuntimeError("kaboom")

        register_solver(_FakeSolver("fz-pipeline-crash", crash))
        try:
            report = run_fuzz(
                FuzzConfig(
                    solver="fz-pipeline-crash",
                    generators=("random",),
                    max_examples=2, scale=8, timeout=30,
                    harden=False, corpus=str(tmp_path),
                )
            )
        finally:
            _REGISTRY.pop("fz-pipeline-crash", None)
        assert report.counts[CRASH] == 2
        assert report.corpus_files
        payload = json.loads(open(report.corpus_files[0]).read())
        assert payload["kind"] == "case"
        assert payload["expect"] is None
        assert payload["found"] == CRASH

    def test_campaign_survives_external_faults(self):
        # REPRO_FAULTS-style arming at the case seam: the classified
        # error must land in an outcome, never escape the campaign
        from repro.runtime import ReproError

        with faults.inject("fuzz.case", ReproError, times=None):
            report = run_fuzz(
                FuzzConfig(max_examples=5, scale=8, timeout=30,
                           harden=False)
            )
        assert len(report.outcomes) == 5
        assert all(
            o.classification == "VIOLATION" for o in report.outcomes
        )


class TestHardening:
    def test_hardening_annotates_outcomes(self):
        report = run_fuzz(
            FuzzConfig(max_examples=5, scale=8, timeout=30)
        )
        assert all(o.hardened is True for o in report.outcomes)

    def test_hardening_failure_is_a_finding(self):
        # a solver that swallows *everything* (even injected faults)
        # defeats the degradation contract; hardening must flag it
        from repro.encoding import Encoding

        def swallowing(cset, opts):
            nv = opts.get("nv") or cset.min_code_length()
            codes = {s: i for i, s in enumerate(cset.symbols)}
            return Encoding(cset.symbols, codes, nv), {}, None

        class Swallowing(_FakeSolver):
            def solve(self, *args, **kwargs):  # bypasses faults.trip
                try:
                    return super().solve(*args, **kwargs)
                except Exception:  # noqa -- deliberately broken
                    return super().solve(*args, **kwargs)

        register_solver(Swallowing("fz-swallow", swallowing))
        try:
            report = run_fuzz(
                FuzzConfig(
                    solver="fz-swallow", generators=("random",),
                    max_examples=1, scale=8, timeout=30,
                )
            )
        finally:
            _REGISTRY.pop("fz-swallow", None)
        # the swallowed timeout comes back OK instead of TIMEOUT, so
        # the hardening pass must fail and the case become a finding
        outcome = report.outcomes[0]
        assert outcome.hardened is False
        assert outcome.is_finding
        assert "solver.solve" in outcome.hardened_detail


class TestCli:
    def test_exit_0_on_clean_run(self, capsys):
        code = main([
            "fuzz", "--max-examples", "5", "--scale", "8",
            "--timeout", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "OK=5" in out

    def test_exit_1_on_findings(self, tmp_path, capsys):
        def crash(cset, opts):
            raise RuntimeError("kaboom")

        register_solver(_FakeSolver("fz-cli-crash", crash))
        try:
            code = main([
                "fuzz", "--solver", "fz-cli-crash",
                "--generator", "random",
                "--max-examples", "2", "--scale", "8",
                "--no-harden",
                "--corpus", str(tmp_path),
            ])
        finally:
            _REGISTRY.pop("fz-cli-crash", None)
        assert code == 1
        out = capsys.readouterr().out
        assert "CRASH" in out
        assert "finding" in out
        assert list(tmp_path.glob("*.json"))

    def test_exit_2_on_bad_config(self, capsys):
        assert main(["fuzz", "--solver", "nope"]) == 2
        assert "picola: error:" in capsys.readouterr().err
        assert main(["fuzz", "--max-examples", "0"]) == 2
        assert main([
            "fuzz", "--solver", "mustang", "--generator", "random",
        ]) == 2

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--max-examples", "4", "--scale", "8",
            "--timeout", "30", "--no-harden", "--json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "fuzz"
        assert payload["n_findings"] == 0
        assert len(payload["cases"]) == 4

    def test_cli_determinism(self, tmp_path, capsys):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        for path in (pa, pb):
            assert main([
                "fuzz", "--max-examples", "6", "--seed", "9",
                "--scale", "8", "--timeout", "30",
                "--json", str(path),
            ]) == 0
        a = _scrub(json.loads(pa.read_text()))
        b = _scrub(json.loads(pb.read_text()))
        assert a == b

    def test_replay_committed_corpus(self, capsys):
        import os

        corpus = os.path.join(
            os.path.dirname(__file__), "corpus"
        )
        code = main(["fuzz", "--replay", "--corpus", corpus])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "0 failing" in out

    def test_replay_red_corpus_exits_1(self, tmp_path, capsys):
        from repro.fuzz import parser_entry, save_entry

        # this text parses fine, so a must-raise entry replays red
        save_entry(
            str(tmp_path),
            parser_entry("kiss", ".i 1\n.o 1\n0 a b 1\n.e\n"),
        )
        code = main(["fuzz", "--replay", "--corpus", str(tmp_path)])
        assert code == 1
        assert "RED" in capsys.readouterr().out

    def test_replay_empty_corpus_is_clean(self, tmp_path, capsys):
        code = main(["fuzz", "--replay", "--corpus", str(tmp_path)])
        assert code == 0
        assert "no entries" in capsys.readouterr().out

    def test_replay_malformed_corpus_exits_2(self, tmp_path, capsys):
        (tmp_path / "case-x-0.json").write_text("{nope")
        code = main(["fuzz", "--replay", "--corpus", str(tmp_path)])
        assert code == 2
        assert "picola: error:" in capsys.readouterr().err
