"""Fuzz tests: parsers must fail cleanly, never crash or hang.

Any malformed input should raise ``ValueError`` (the documented
contract) — not ``IndexError``/``KeyError``/``AttributeError`` — and
valid-looking inputs must produce structurally sound objects.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes import Space
from repro.espresso import parse_pla
from repro.fsm import parse_kiss

# text alphabets biased toward format-relevant characters
KISS_ALPHABET = st.sampled_from(
    list("01-* .\npqrsioe") + ["st", ".i", ".o", ".e\n"]
)
PLA_ALPHABET = st.sampled_from(
    list("01-~2 .\npio") + [".i ", ".o ", ".type fr\n"]
)


class TestKissFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(KISS_ALPHABET, max_size=60).map("".join))
    def test_never_crashes(self, text):
        try:
            fsm = parse_kiss(text)
        except ValueError:
            return
        # if it parsed, the machine must be structurally valid
        assert fsm.transitions
        assert fsm.n_states >= 1
        for t in fsm.transitions:
            assert len(t.inputs) == fsm.n_inputs
            assert len(t.outputs) == fsm.n_outputs

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=80))
    def test_arbitrary_text(self, text):
        try:
            parse_kiss(text)
        except ValueError:
            pass


class TestPlaFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(PLA_ALPHABET, max_size=60).map("".join))
    def test_never_crashes(self, text):
        try:
            pla = parse_pla(text)
        except ValueError:
            return
        assert pla.n_inputs >= 0
        assert pla.n_outputs >= 1

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=80))
    def test_arbitrary_text(self, text):
        try:
            parse_pla(text)
        except ValueError:
            pass


class TestCubeStringFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet="01-~2 x", max_size=12))
    def test_parse_cube_never_crashes(self, text):
        space = Space.binary(3, 2)
        try:
            cube = space.parse_cube(text)
        except ValueError:
            return
        # a successful parse must round-trip
        assert space.parse_cube(space.format_cube(cube)) == cube
