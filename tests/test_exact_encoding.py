"""Tests for the exact minimum-length encoder and length trade-offs."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import picola_encode
from repro.encoding import (
    ConstraintSet,
    Encoding,
    ExactSearchBudget,
    FaceConstraint,
    exact_encode,
    length_tradeoff,
    minimum_satisfying_length,
)


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


def brute_force_optimum(cset, nv):
    syms = list(cset.symbols)
    best = -1.0
    for codes in itertools.permutations(range(1 << nv), len(syms)):
        enc = Encoding(syms, dict(zip(syms, codes)), nv)
        weight = sum(
            c.weight for c in cset.nontrivial()
            if enc.satisfies(c.symbols)
        )
        best = max(best, weight)
    return best


class TestExactEncode:
    def test_satisfiable_set_fully_satisfied(self):
        cs = cset_of(8, [[0, 1], [2, 3], [4, 5, 6, 7]])
        result = exact_encode(cs)
        assert result.optimal
        assert result.satisfied == 3

    def test_known_infeasible(self):
        # 5 of 6 symbols cannot share a face in B^3
        cs = cset_of(6, [[0, 1, 2, 3, 4]])
        result = exact_encode(cs)
        assert result.optimal
        assert result.satisfied == 0

    def test_budget_strict(self):
        cs = cset_of(8, [[0, 1, 2], [3, 4, 5], [1, 4, 6]])
        with pytest.raises(ExactSearchBudget):
            exact_encode(cs, max_nodes=3, strict=True)

    def test_budget_nonstrict_returns_best_so_far(self):
        cs = cset_of(6, [[0, 1], [2, 3]])
        result = exact_encode(cs, max_nodes=40)
        assert result.encoding.is_injective()

    def test_too_small_nv_rejected(self):
        cs = cset_of(5, [[0, 1]])
        with pytest.raises(ValueError):
            exact_encode(cs, nv=2)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_matches_bruteforce_optimum(self, data):
        n = data.draw(st.integers(min_value=4, max_value=6))
        nv = (n - 1).bit_length()
        syms = [f"s{i}" for i in range(n)]
        groups = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            size = data.draw(st.integers(min_value=2, max_value=n - 1))
            groups.append(
                data.draw(
                    st.sets(st.sampled_from(syms), min_size=size,
                            max_size=size)
                )
            )
        cset = ConstraintSet(
            syms, [FaceConstraint(g) for g in groups if 2 <= len(g) < n]
        )
        result = exact_encode(cset, max_nodes=400_000)
        if not result.optimal:
            return  # budget-limited draw; nothing to assert
        assert result.satisfied_weight == pytest.approx(
            brute_force_optimum(cset, nv)
        )

    def test_picola_never_beats_exact(self):
        for groups in [
            [[0, 1, 2], [3, 4], [1, 5]],
            [[0, 1], [1, 2], [2, 3], [3, 0]],
        ]:
            cs = cset_of(6, groups)
            exact = exact_encode(cs)
            heur = picola_encode(cs)
            heur_weight = sum(
                c.weight for c in cs.nontrivial()
                if heur.encoding.satisfies(c.symbols)
            )
            assert heur_weight <= exact.satisfied_weight + 1e-9


class TestLengths:
    def test_minimum_satisfying_length_easy(self):
        cs = cset_of(8, [[0, 1], [2, 3]])
        assert minimum_satisfying_length(cs) == 3

    def test_minimum_satisfying_length_needs_extra_bit(self):
        # 5 of 6 on a face: impossible in B^3, trivial in B^4
        cs = cset_of(6, [[0, 1, 2, 3, 4]])
        assert minimum_satisfying_length(cs) == 4

    def test_no_constraints(self):
        cs = cset_of(4, [])
        assert minimum_satisfying_length(cs) == 2

    def test_length_tradeoff_monotone_satisfaction(self):
        cs = cset_of(6, [[0, 1, 2, 3, 4], [0, 1]])
        points = length_tradeoff(cs, max_extra_bits=2)
        assert [p.nv for p in points] == [3, 4, 5]
        assert points[-1].satisfied >= points[0].satisfied
        # the motivation: cubes shrink with length, area proxy may not
        assert points[-1].cubes <= points[0].cubes


class TestBestLength:
    def test_returns_consistent_triple(self):
        from repro.encoding import best_length_encoding

        cs = cset_of(6, [[0, 1, 2, 3, 4], [0, 1]])
        enc, chosen, points = best_length_encoding(cs, max_extra_bits=2)
        assert enc.n_bits == chosen.nv
        assert chosen in points
        assert enc.is_injective()

    def test_high_register_cost_prefers_short_codes(self):
        from repro.encoding import best_length_encoding

        cs = cset_of(6, [[0, 1, 2, 3, 4]])
        enc, chosen, _ = best_length_encoding(
            cs, max_extra_bits=2, register_cost=1000.0
        )
        assert chosen.nv == cs.min_code_length()
