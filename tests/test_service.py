"""Tests for the encoding service layer (PR: encoding-as-a-service).

Covers the request/response boundary, the single dispatch path
(:func:`repro.service.dispatch.execute`), the content-addressed cache
contract (hit counter increments, no solver span on a hit,
byte-identical payloads), batch dispatch equivalence with serial, the
``repro.api`` facade, and the daemon's admission control.
"""

import dataclasses

import pytest

import repro
from repro.api import encode, encode_many
from repro.core import PicolaOptions
from repro.encoding import ConstraintSet, FaceConstraint
from repro.fsm import load_benchmark
from repro.obs import MemorySink, Tracer
from repro.runtime import (
    Budget,
    BudgetExceeded,
    InvalidSpecError,
    ReproError,
)
from repro.service import (
    EncodeRequest,
    EncodeResponse,
    REQUEST_SPAN,
    ResultCache,
    SOLVE_SPAN,
    ServerConfig,
    cache_key,
    execute,
)
from repro.service.server import ServiceState


def simple_request(solver="picola", **kwargs):
    return EncodeRequest.build(
        ["s0", "s1", "s2", "s3"],
        [{"symbols": ["s0", "s1"]}, {"symbols": ["s2", "s3"]}],
        solver=solver,
        **kwargs,
    )


def span_names(sink):
    return [e["name"] for e in sink.spans]


class TestEncodeRequest:
    def test_build_from_parts(self):
        request = simple_request()
        assert request.symbols == ("s0", "s1", "s2", "s3")
        assert len(request.constraints) == 2
        assert request.solver == "picola"

    def test_build_from_constraint_set(self):
        cset = ConstraintSet(
            ["a", "b", "c"], [FaceConstraint({"a", "b"})]
        )
        request = EncodeRequest.build(cset, solver="exact")
        assert request.symbols == ("a", "b", "c")
        assert request.constraint_set().symbols == ("a", "b", "c")

    def test_build_rejects_cset_plus_constraints(self):
        cset = ConstraintSet(["a", "b"], [])
        with pytest.raises(InvalidSpecError):
            EncodeRequest.build(cset, [{"symbols": ["a"]}])

    def test_empty_symbols_rejected(self):
        with pytest.raises(InvalidSpecError):
            EncodeRequest(symbols=())

    def test_nv_in_both_places_rejected(self):
        with pytest.raises(InvalidSpecError):
            EncodeRequest(
                symbols=("a", "b"), options={"nv": 2}, nv=2
            )

    def test_bad_qos_rejected(self):
        with pytest.raises(InvalidSpecError):
            EncodeRequest(symbols=("a",), timeout=-1.0)
        with pytest.raises(InvalidSpecError):
            EncodeRequest(symbols=("a",), max_nodes=-5)
        with pytest.raises(InvalidSpecError):
            EncodeRequest(symbols=("a",), nv=0)

    def test_constraints_validated_at_boundary(self):
        # constraint mentions a symbol outside the alphabet
        with pytest.raises(ReproError):
            EncodeRequest(
                symbols=("a", "b"),
                constraints=({"symbols": ["a", "zzz"]},),
            )

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(InvalidSpecError, match="unknown keys"):
            EncodeRequest.from_dict(
                {"symbols": ["a"], "sovler": "picola"}
            )

    def test_wire_round_trip(self):
        request = simple_request(
            nv=2, timeout=1.5, max_nodes=100, trace=True
        )
        clone = EncodeRequest.from_dict(request.to_dict())
        assert clone == request
        assert cache_key(clone) == cache_key(request)

    def test_live_fsm_option_round_trips(self):
        fsm = load_benchmark("lion")
        request = EncodeRequest.build(
            ["a", "b"], solver="mustang", options={"fsm": fsm}
        )
        clone = EncodeRequest.from_dict(request.to_dict())
        assert clone.options["fsm"].n_states == fsm.n_states
        assert cache_key(clone) == cache_key(request)

    def test_picola_options_round_trip(self):
        request = EncodeRequest.build(
            ["a", "b"],
            options={"picola_options": PicolaOptions(beam_width=3)},
        )
        clone = EncodeRequest.from_dict(request.to_dict())
        assert clone.options["picola_options"].beam_width == 3

    def test_custom_weight_policy_is_unserializable(self):
        class Policy:
            pass

        options = PicolaOptions(weights=Policy())
        request = EncodeRequest.build(
            ["a", "b"], options={"picola_options": options}
        )
        with pytest.raises(InvalidSpecError):
            request.to_dict()
        assert cache_key(request) is None  # uncacheable, not an error

    def test_make_budget(self):
        assert simple_request().make_budget() is None
        budget = simple_request(
            timeout=2.0, max_nodes=10
        ).make_budget()
        assert isinstance(budget, Budget)

    def test_frozen(self):
        request = simple_request()
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.solver = "nova"


class TestEncodeResponse:
    def test_bad_status_rejected(self):
        with pytest.raises(InvalidSpecError):
            EncodeResponse(status="weird", solver="x", cache_key="")

    def test_payload_bytes_exclude_cached_flag(self):
        response = execute(simple_request())
        assert (
            response.payload_bytes()
            == response.with_cached(True).payload_bytes()
        )

    def test_round_trip(self):
        response = execute(simple_request())
        clone = EncodeResponse.from_dict(response.to_dict())
        assert clone.payload_bytes() == response.payload_bytes()

    def test_encoding_reconstruction(self):
        response = execute(simple_request())
        encoding = response.encoding()
        assert encoding.n_bits == response.n_bits
        assert set(encoding.symbols) == set(response.symbols)

    def test_encoding_raises_without_codes(self):
        response = EncodeResponse(
            status="failed", solver="x", cache_key="", error="boom"
        )
        with pytest.raises(InvalidSpecError):
            response.encoding()


class TestExecute:
    def test_ok_path(self):
        response = execute(simple_request())
        assert response.ok and response.status == "ok"
        assert response.n_bits == 2
        assert response.cache_key == cache_key(simple_request())

    def test_unknown_solver_classified(self):
        response = execute(simple_request(solver="nope"))
        assert response.status == "failed"
        assert response.error_type == "KeyError"

    def test_unknown_option_classified(self):
        request = EncodeRequest.build(
            ["a", "b"], solver="picola", options={"bogus": 1}
        )
        response = execute(request)
        assert response.status == "failed"
        assert "bogus" in (response.error or "")

    def test_infeasible_classified(self):
        # 5 symbols cannot fit a 1-bit code
        request = EncodeRequest.build(
            [f"s{i}" for i in range(5)], solver="exact", nv=1
        )
        response = execute(request)
        assert response.status == "infeasible"

    def test_budget_classified(self):
        request = simple_request(solver="exact", max_nodes=1)
        response = execute(request)
        assert response.status in ("budget", "timeout")

    def test_classify_false_propagates(self):
        request = simple_request(solver="exact", max_nodes=1)
        with pytest.raises(BudgetExceeded):
            execute(request, classify=False)

    def test_external_budget_overrides_request_qos(self):
        request = simple_request(solver="exact")
        exhausted = Budget(max_nodes=1)
        response = execute(request, budget=exhausted)
        assert response.status in ("budget", "timeout")

    def test_trace_summary_attached(self):
        response = execute(simple_request(trace=True))
        assert response.trace is not None
        assert "counters" in response.trace
        assert "timings" in response.trace

    def test_no_trace_by_default(self):
        assert execute(simple_request()).trace is None


class TestObservabilityContract:
    def test_request_span_and_counters(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        execute(simple_request(), tracer=tracer)
        assert REQUEST_SPAN in span_names(sink)
        assert SOLVE_SPAN in span_names(sink)
        assert tracer.counters()["service.requests"] == 1

    def test_cache_hit_counts_and_skips_solver_span(self):
        cache = ResultCache()
        sink = MemorySink()
        tracer = Tracer(sink)
        execute(simple_request(), cache=cache, tracer=tracer)
        assert tracer.counters()["service.cache.misses"] == 1
        sink.clear()

        hit = execute(simple_request(), cache=cache, tracer=tracer)
        assert hit.cached
        counters = tracer.counters()
        assert counters["service.cache.hits"] == 1
        assert counters["service.requests"] == 2
        names = span_names(sink)
        assert REQUEST_SPAN in names
        assert SOLVE_SPAN not in names  # the solver never ran

    def test_latency_histogram_fed(self):
        tracer = Tracer(MemorySink())
        execute(simple_request(), tracer=tracer)
        timings = tracer.timings()
        assert REQUEST_SPAN in timings
        assert timings[REQUEST_SPAN].n == 1

    def test_errors_counted(self):
        tracer = Tracer(MemorySink())
        execute(simple_request(solver="nope"), tracer=tracer)
        assert tracer.counters()["service.errors"] == 1


class TestResultCache:
    def test_byte_identical_hit(self):
        cache = ResultCache()
        first = execute(simple_request(), cache=cache)
        second = execute(simple_request(), cache=cache)
        assert not first.cached and second.cached
        assert second.payload_bytes() == first.payload_bytes()

    def test_only_final_statuses_cached(self):
        cache = ResultCache()
        request = simple_request(solver="exact", max_nodes=1)
        first = execute(request, cache=cache)
        assert first.status in ("budget", "timeout")
        assert len(cache) == 0  # a tighter-QoS verdict is not final

    def test_infeasible_is_cached(self):
        cache = ResultCache()
        request = EncodeRequest.build(
            [f"s{i}" for i in range(5)], solver="exact", nv=1
        )
        execute(request, cache=cache)
        assert len(cache) == 1
        assert execute(request, cache=cache).cached

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            execute(
                EncodeRequest.build([f"a{i}", f"b{i}"]), cache=cache
            )
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        execute(simple_request(), cache=cache)
        assert len(cache) == 0
        assert not execute(simple_request(), cache=cache).cached

    def test_peek_does_not_count(self):
        cache = ResultCache()
        key = cache_key(simple_request())
        execute(simple_request(), cache=cache)
        before = cache.stats()
        assert cache.peek(key) is not None
        assert cache.peek("absent") is None
        after = cache.stats()
        assert (before["hits"], before["misses"]) == (
            after["hits"], after["misses"],
        )

    def test_qos_fields_share_a_cache_line(self):
        cache = ResultCache()
        execute(simple_request(), cache=cache)
        relaxed = execute(
            simple_request(timeout=30.0, max_nodes=10**6),
            cache=cache,
        )
        assert relaxed.cached


def _mixed_requests():
    lion = load_benchmark("lion")
    return [
        simple_request(),
        simple_request(solver="exact"),
        EncodeRequest.build(
            [f"q{i}" for i in range(6)],
            [{"symbols": ["q0", "q1", "q2"]}],
            solver="nova",
            options={"seed": 3},
        ),
        EncodeRequest.build(
            ["a", "b", "c"],
            solver="mustang",
            options={"fsm": lion, "variant": "p"},
        ),
        simple_request(),  # duplicate of [0] — exercises in-batch dedup
    ]


def _strip_seconds(response):
    payload = response.to_dict()
    payload.pop("seconds")
    return payload, response.cached


class TestEncodeMany:
    def test_matches_serial_without_cache(self):
        requests = _mixed_requests()
        serial = encode_many(requests, jobs=1)
        batched = encode_many(requests, jobs=2)
        assert [_strip_seconds(r) for r in serial] == [
            _strip_seconds(r) for r in batched
        ]

    def test_matches_serial_with_cache(self):
        requests = _mixed_requests()
        serial = encode_many(requests, jobs=1, cache=ResultCache())
        batched = encode_many(requests, jobs=2, cache=ResultCache())
        assert [_strip_seconds(r) for r in serial] == [
            _strip_seconds(r) for r in batched
        ]
        # the duplicate is a hit on both paths
        assert serial[-1].cached and batched[-1].cached

    def test_warm_cache_short_circuits(self):
        cache = ResultCache()
        requests = _mixed_requests()
        encode_many(requests, jobs=1, cache=cache)
        again = encode_many(requests, jobs=2, cache=cache)
        assert all(r.cached for r in again if r.status == "ok")

    def test_counters_match_serial(self):
        requests = _mixed_requests()
        serial_tracer = Tracer(MemorySink())
        encode_many(
            requests, jobs=1, cache=ResultCache(),
            tracer=serial_tracer,
        )
        batch_tracer = Tracer(MemorySink())
        encode_many(
            requests, jobs=2, cache=ResultCache(),
            tracer=batch_tracer,
        )
        s, b = serial_tracer.counters(), batch_tracer.counters()
        for key in (
            "service.requests",
            "service.cache.hits",
            "service.cache.misses",
        ):
            assert s.get(key) == b.get(key), key

    def test_unserializable_degrades_to_serial(self):
        from repro.core import WeightPolicy

        requests = [
            simple_request(),
            EncodeRequest.build(
                ["a", "b", "c", "d"],
                [{"symbols": ["a", "b"]}],
                options={
                    "picola_options": PicolaOptions(
                        weights=WeightPolicy(guide_factor=0.4)
                    )
                },
            ),
        ]
        assert cache_key(requests[1]) is None  # cannot cross the wire
        responses = encode_many(requests, jobs=2)
        assert [r.status for r in responses] == ["ok", "ok"]

    def test_failures_stay_classified(self):
        requests = [simple_request(), simple_request(solver="nope")]
        responses = encode_many(requests, jobs=2)
        assert responses[0].ok
        assert responses[1].status == "failed"

    def test_empty_batch(self):
        assert encode_many([], jobs=2) == []


class TestApiFacade:
    def test_top_level_exports(self):
        assert repro.encode is encode
        assert repro.encode_many is encode_many
        assert repro.EncodeRequest is EncodeRequest
        assert repro.EncodeResponse is EncodeResponse

    def test_encode_through_facade(self):
        response = encode(simple_request())
        assert response.ok

    def test_facade_matches_dispatch(self):
        direct = execute(simple_request())
        via_api = encode(simple_request())
        assert _strip_seconds(direct) == _strip_seconds(via_api)

    def test_assign_states_routes_through_service(self):
        """The harness pipeline dispatches via the service layer."""
        sink = MemorySink()
        tracer = Tracer(sink)
        result = repro.assign_states(
            load_benchmark("lion"), "picola", tracer=tracer
        )
        assert result.encoding.n_bits >= 2
        assert REQUEST_SPAN in span_names(sink)
        assert SOLVE_SPAN in span_names(sink)


class TestBackpressure:
    def test_acquire_release(self):
        state = ServiceState(ServerConfig(queue_limit=2))
        assert state.try_acquire()
        assert state.try_acquire()
        assert not state.try_acquire()
        state.release()
        assert state.try_acquire()

    def test_batch_admission_is_all_or_nothing(self):
        state = ServiceState(ServerConfig(queue_limit=3))
        assert state.try_acquire(2)
        assert not state.try_acquire(2)  # only one slot left
        assert state.try_acquire(1)

    def test_rejections_counted(self):
        tracer = Tracer(MemorySink())
        state = ServiceState(
            ServerConfig(queue_limit=1), tracer=tracer
        )
        state.try_acquire()
        state.try_acquire()
        assert state.rejected == 1
        assert tracer.counters()["service.rejected"] == 1
        assert state.stats()["queue"]["rejected"] == 1

    def test_config_validation(self):
        with pytest.raises(InvalidSpecError):
            ServerConfig(queue_limit=0)
        with pytest.raises(InvalidSpecError):
            ServerConfig(batch_max=0)
        with pytest.raises(InvalidSpecError):
            ServerConfig(batch_wait=-0.1)

    def test_default_timeout_applied(self):
        state = ServiceState(ServerConfig(default_timeout=5.0))
        tightened = state.apply_qos(simple_request())
        assert tightened.timeout == 5.0
        explicit = state.apply_qos(simple_request(timeout=1.0))
        assert explicit.timeout == 1.0


class TestDaemonThreadHammer:
    """Regression: the live daemon served handler threads against a
    shared Tracer and ServiceState whose counters raced before PR 9
    (lost `service.requests` increments, torn /v1/stats snapshots)."""

    CLIENTS = 6
    PER_CLIENT = 4

    def _start_server(self, tracer):
        import threading

        from repro.service import make_server

        server = make_server(
            ServerConfig(
                port=0,
                queue_limit=256,
                cache_size=0,  # every request does real work
                batch_wait=0.0,
            ),
            tracer=tracer,
        )
        loop = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        loop.start()
        return server, loop

    def test_concurrent_encode_and_stats(self):
        import http.client
        import json as jsonlib
        import threading

        tracer = Tracer()
        server, loop = self._start_server(tracer)
        host, port = server.server_address[:2]
        statuses = []
        status_lock = threading.Lock()
        failures = []

        def client(i):
            try:
                for k in range(self.PER_CLIENT):
                    tag = f"t{i}k{k}"
                    body = jsonlib.dumps({
                        "symbols": [f"{tag}s{j}" for j in range(4)],
                        "constraints": [
                            {"symbols": [f"{tag}s0", f"{tag}s1"]},
                        ],
                        "solver": "picola",
                    }).encode()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=60
                    )
                    conn.request(
                        "POST", "/v1/encode", body,
                        {"Content-Type": "application/json"},
                    )
                    resp = conn.getresponse()
                    payload = jsonlib.loads(resp.read())
                    conn.close()
                    with status_lock:
                        statuses.append(resp.status)
                    if resp.status == 200:
                        assert payload["result"]["status"] == "ok"
            except Exception as exc:  # surfaced after join
                failures.append(f"client {i}: {exc!r}")

        def stats_reader():
            try:
                for _ in range(3 * self.PER_CLIENT):
                    conn = http.client.HTTPConnection(
                        host, port, timeout=60
                    )
                    conn.request("GET", "/v1/stats")
                    resp = conn.getresponse()
                    doc = jsonlib.loads(resp.read())
                    conn.close()
                    assert resp.status == 200
                    queue = doc["queue"]
                    # a torn snapshot can show in_flight below 0 or
                    # past the limit; the locked one never does
                    assert 0 <= queue["in_flight"] <= queue["limit"]
                    assert queue["rejected"] >= 0
            except Exception as exc:
                failures.append(f"stats: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(self.CLIENTS)
        ]
        threads.append(threading.Thread(target=stats_reader))
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            server.shutdown()
            server.server_close()
            loop.join(timeout=10)
        assert failures == []
        expected = self.CLIENTS * self.PER_CLIENT
        assert statuses == [200] * expected
        # every accepted request was counted exactly once: lost
        # increments under concurrency were the PR-9 Tracer bug
        assert tracer.counter("service.requests") == expected
        assert tracer.counter("service.cache.misses") == expected
