"""Differential tests for the packed bulk cube kernel.

Every bulk primitive runs under both backends (pure-Python int rows vs
numpy uint64 limb matrices) on hypothesis-generated covers — including
multi-limb spaces wider than 64 bits — and must return *identical*
results.  The python backend is additionally pinned against the legacy
per-cube int implementations in :mod:`repro.cubes.cube`, so the chain
legacy == python == numpy keeps solver output byte-stable whichever
kernel is active.
"""

import itertools
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes import Space
from repro.cubes import cube as legacy
from repro.cubes.bulk import (
    available_kernels,
    get_kernel,
    use_kernel,
)
from repro.cubes.complement import complement
from repro.cubes.tautology import cover_contains_cube, tautology
from repro.espresso import espresso
from repro.espresso.sparse import make_sparse
from repro.runtime import InvalidSpecError

HAS_NUMPY = "numpy" in available_kernels()
needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy backend unavailable"
)

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def spaces(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    sizes = draw(
        st.lists(
            st.integers(min_value=2, max_value=5), min_size=n, max_size=n
        )
    )
    if draw(st.booleans()):
        sizes = sizes + [4] * 16  # > 64 bits: exercise multi-limb rows
    return Space(sizes)


def _draw_cube(draw, space, allow_void):
    cube = 0
    for size, offset in zip(space.part_sizes, space.offsets):
        low = 0 if allow_void else 1
        field = draw(st.integers(min_value=low, max_value=(1 << size) - 1))
        cube |= field << offset
    return cube


@st.composite
def problems(draw):
    """(space, cover, pivot cube, part, value) for the primitive diffs."""
    space = draw(spaces())
    n = draw(st.integers(min_value=0, max_value=8))
    allow_void = draw(st.booleans())
    cover = [_draw_cube(draw, space, allow_void) for _ in range(n)]
    pivot = _draw_cube(draw, space, allow_void=False)
    part = draw(st.integers(min_value=0, max_value=space.num_parts - 1))
    value = draw(
        st.integers(min_value=0, max_value=space.part_sizes[part] - 1)
    )
    return space, cover, pivot, part, value


def _primitive_results(kernel, space, cover, pivot, part, value):
    """One dict per backend holding every primitive's (unpacked) output."""
    packed = kernel.pack(space, cover)
    out = {
        "roundtrip": kernel.unpack(space, packed),
        "length": kernel.length(packed),
        "or_fold": kernel.or_fold(space, packed),
        "union_info": kernel.union_info(space, packed),
        "popcounts": list(kernel.popcounts(space, packed)),
        "nonfull_counts": list(kernel.nonfull_counts(space, packed)),
        "is_unate": kernel.is_unate(space, packed),
        "void_mask": list(kernel.void_mask(space, packed)),
        "contains_rows": list(kernel.contains_rows(space, packed, pivot)),
        "contained_rows": list(kernel.contained_rows(space, packed, pivot)),
        "admits_rows": list(kernel.admits_rows(space, packed, pivot)),
        "intersects_any": kernel.intersects_any(space, packed, pivot),
        "cofactor_value": kernel.unpack(
            space, kernel.cofactor_value(space, packed, part, value)
        ),
        "cofactor_cube": kernel.unpack(
            space, kernel.cofactor_cube(space, packed, pivot)
        ),
        "and_rows": kernel.unpack(
            space, kernel.and_rows(space, packed, pivot)
        ),
        "merge_part": kernel.unpack(
            space, kernel.merge_part(space, packed, part)
        ),
        "absorb": kernel.unpack(space, kernel.absorb(space, packed)),
        "dedup_keep_mask": list(kernel.dedup_keep_mask(space, packed)),
        "cross_intersect": kernel.unpack(
            space,
            kernel.cross_intersect(
                space, packed, kernel.pack(space, [pivot, space.universe])
            ),
        ),
        "minterm_count": kernel.minterm_count(space, packed),
        "blocked_raises": kernel.blocked_raises(space, packed, pivot),
        "best_raise": kernel.best_raise(
            space, packed, pivot, space.universe & ~pivot
        ),
        "concat": kernel.unpack(
            space,
            kernel.concat(space, packed, kernel.pack(space, [pivot])),
        ),
        "select": kernel.unpack(
            space,
            kernel.select(
                space, packed, [i % 2 == 0 for i in range(len(cover))]
            ),
        ),
        "gather": kernel.unpack(
            space, kernel.gather(space, packed, list(range(len(cover)))[::-1])
        ),
    }
    if cover:
        out["binate_part"] = kernel.binate_part(space, packed)
        out["row0"] = kernel.row(space, packed, 0)
        out["delete_row"] = kernel.unpack(
            space, kernel.delete_row(space, packed, 0)
        )
        out["with_row"] = kernel.unpack(
            space, kernel.with_row(space, packed, 0, pivot)
        )
    return out


@needs_numpy
class TestBackendDifferential:
    """python and numpy backends agree on every primitive, bit for bit."""

    @SETTINGS
    @given(problems())
    def test_every_primitive_matches(self, problem):
        from repro.cubes.bulk.npbackend import NumpyKernel

        space, cover, pivot, part, value = problem
        kernels = {
            "python": get_kernel("python"),
            "numpy": get_kernel("numpy"),
            # cutoffs at zero force the vectorized paths even on the
            # small covers hypothesis generates
            "numpy-forced": NumpyKernel(linear_cutoff=0, quad_cutoff=0),
        }
        results = {
            name: _primitive_results(
                kernel, space, cover, pivot, part, value
            )
            for name, kernel in kernels.items()
        }
        assert results["python"] == results["numpy"]
        assert results["python"] == results["numpy-forced"]


class TestLegacyEquivalence:
    """The python backend replicates the per-cube int implementations."""

    @SETTINGS
    @given(problems())
    def test_row_masks_match_cube_functions(self, problem):
        space, cover, pivot, _, _ = problem
        kernel = get_kernel("python")
        packed = kernel.pack(space, cover)
        assert kernel.void_mask(space, packed) == [
            legacy.is_void(space, c) for c in cover
        ]
        assert kernel.contains_rows(space, packed, pivot) == [
            legacy.contains(c, pivot) for c in cover
        ]
        assert kernel.contained_rows(space, packed, pivot) == [
            legacy.contains(pivot, c) for c in cover
        ]
        assert kernel.or_fold(space, packed) == legacy.supercube(cover)
        assert kernel.intersects_any(space, packed, pivot) == any(
            legacy.intersect(space, c, pivot) for c in cover
        )

    @SETTINGS
    @given(problems())
    def test_cofactor_and_absorb_match(self, problem):
        space, cover, pivot, _, _ = problem
        kernel = get_kernel("python")
        packed = kernel.pack(space, cover)
        lifted = space.universe & ~pivot
        assert kernel.cofactor_cube(space, packed, pivot) == [
            c | lifted for c in cover if legacy.intersect(space, c, pivot)
        ]
        assert kernel.absorb(space, kernel.pack(space, cover)) == (
            legacy.absorb(list(cover))
        )

    @SETTINGS
    @given(problems())
    def test_minterm_count_matches_enumeration(self, problem):
        space, cover, _, _, _ = problem
        total = 1
        for size in space.part_sizes:
            total *= size
        if total > 2048:
            return  # enumeration too large; the differential still ran
        kernel = get_kernel("python")
        count = sum(
            1
            for values in itertools.product(
                *(range(size) for size in space.part_sizes)
            )
            if any(
                legacy.contains(c, space.minterm(list(values)))
                for c in cover
            )
        )
        assert kernel.minterm_count(space, kernel.pack(space, cover)) == count


@needs_numpy
class TestAlgorithmDifferential:
    """Whole algorithms emit identical cube lists under both backends."""

    @SETTINGS
    @given(problems())
    def test_complement_tautology_espresso(self, problem):
        space, cover, pivot, _, _ = problem
        nonvoid = [c for c in cover if not legacy.is_void(space, c)]
        outputs = {}
        for name in ("python", "numpy"):
            with use_kernel(name):
                outputs[name] = (
                    complement(space, nonvoid),
                    tautology(space, nonvoid),
                    cover_contains_cube(space, nonvoid, pivot),
                    espresso(space, list(nonvoid)),
                    make_sparse(space, list(nonvoid)),
                )
        assert outputs["python"] == outputs["numpy"]

    def test_large_cover_crosses_vectorized_cutoff(self):
        """A cover big enough that the adaptive numpy kernel actually
        takes its vectorized paths end to end."""
        import random

        space = Space.binary(10, 5)
        rng = random.Random(11)
        cover = []
        for _ in range(150):
            cube = 0
            for size, offset in zip(space.part_sizes, space.offsets):
                field = (
                    (1 << size) - 1
                    if rng.random() < 0.4
                    else 1 << rng.randrange(size)
                )
                cube |= field << offset
            cover.append(cube)
        outputs = {}
        for name in ("python", "numpy"):
            with use_kernel(name):
                outputs[name] = (
                    complement(space, cover),
                    espresso(space, list(cover)),
                )
        assert outputs["python"] == outputs["numpy"]


class TestKernelSelection:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(InvalidSpecError):
            get_kernel("fortran")

    def test_use_kernel_restores_previous(self):
        from repro.cubes.bulk import active_kernel

        before = active_kernel().name
        with use_kernel("python"):
            assert active_kernel().name == "python"
        assert active_kernel().name == before

    @needs_numpy
    def test_npbackend_refuses_numpy_1x(self, monkeypatch):
        # numpy < 2.0 lacks np.bitwise_count; the backend must raise
        # ImportError at import so registration falls back to python
        # instead of crashing later inside a vectorized primitive
        import importlib

        import numpy as np

        import repro.cubes.bulk.npbackend as npbackend

        monkeypatch.delattr(np, "bitwise_count")
        with pytest.raises(ImportError, match="numpy >= 2.0"):
            importlib.reload(npbackend)
        # the guard fires before any definitions, so the previously
        # loaded module (and the registered kernel) stay intact
        assert npbackend.NumpyKernel is not None

    @pytest.mark.parametrize("name", ["python"] + (["numpy"] if HAS_NUMPY else []))
    def test_env_var_selects_backend(self, name):
        env = dict(os.environ, REPRO_KERNEL=name)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.cubes.bulk import active_kernel;"
                "print(active_kernel().name)",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == name
