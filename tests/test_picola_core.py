"""Tests for the PICOLA core: classify, guides/Theorem I, solve, driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PicolaOptions,
    PicolaResult,
    PrefixGroups,
    WeightPolicy,
    capacity_feasible,
    classify,
    generate_column,
    guide_constraint,
    nv_compatible,
    picola_encode,
    theorem1_cubes,
)
from repro.core.repair import polish_encoding
from repro.encoding import (
    ConstraintMatrix,
    ConstraintSet,
    Encoding,
    FaceConstraint,
    evaluate_encoding,
)


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


class TestNvCompatible:
    def make_rows(self, n, a, b, nv):
        cs = cset_of(n, [a, b])
        matrix = ConstraintMatrix(cs, nv)
        return matrix.rows[0], matrix.rows[1]

    def test_disjoint_fit(self):
        # two pairs in 8 codes with 8 symbols: dc(S)=0, each pair
        # wastes nothing (dim 1 holds exactly 2)
        ra, rb = self.make_rows(8, [0, 1], [2, 3], 3)
        assert nv_compatible(ra, rb, 3, 8)

    def test_disjoint_capacity_violation(self):
        # |A|=3 needs dim 2 (wastes 1), |B|=3 too; dc(S) = 8-6 = 2: ok
        ra, rb = self.make_rows(6, [0, 1, 2], [3, 4, 5], 3)
        assert nv_compatible(ra, rb, 3, 6)
        # with 8 symbols dc(S)=0 and each triple wastes a code: fails
        ra, rb = self.make_rows(8, [0, 1, 2], [3, 4, 5], 3)
        assert not nv_compatible(ra, rb, 3, 8)

    def test_son_dimension_formula(self):
        # A = {0..3}, B = {2..5}, son = {2,3}: dims 2+2-1 = 3 <= 3
        ra, rb = self.make_rows(8, [0, 1, 2, 3], [2, 3, 4, 5], 3)
        assert nv_compatible(ra, rb, 3, 8)

    def test_son_dimension_overflow(self):
        # A = {0..4}, B = {3..7}, son = {3,4}: dims 3+3-1 = 5 > 3
        ra, rb = self.make_rows(8, [0, 1, 2, 3, 4], [3, 4, 5, 6, 7], 3)
        assert not nv_compatible(ra, rb, 3, 8)

    def test_equal_sets_compatible(self):
        ra, rb = self.make_rows(6, [0, 1, 2], [0, 1, 2], 3)
        assert nv_compatible(ra, rb, 3, 6)


class TestCapacityFeasible:
    def test_constraint_too_big_for_dc(self):
        # |L| = 5 in B^3 with 8 symbols: face dim 3 = everything ->
        # wastes 3 codes but dc(S) = 0
        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        matrix = ConstraintMatrix(cs, 3)
        assert not capacity_feasible(matrix.rows[0], 3, 8)

    def test_five_of_six_in_b3_is_infeasible(self):
        # the only face holding 5 codes in B^3 is the whole cube,
        # which necessarily contains the sixth symbol
        cs = cset_of(6, [[0, 1, 2, 3, 4]])
        matrix = ConstraintMatrix(cs, 3)
        assert not capacity_feasible(matrix.rows[0], 3, 6)

    def test_fits_with_spare_codes(self):
        # |L| = 4 embeds on a 2-face with no waste
        cs = cset_of(6, [[0, 1, 2, 3]])
        matrix = ConstraintMatrix(cs, 3)
        assert capacity_feasible(matrix.rows[0], 3, 6)

    def test_agree_budget_exhausted(self):
        cs = cset_of(6, [[0, 1, 2]])  # min dim 2 -> 1 agree column max
        matrix = ConstraintMatrix(cs, 3)
        syms = list(cs.symbols)
        col = {s: 1 if s in ("s0", "s1", "s2", "s3") else 0 for s in syms}
        matrix.record_column(col)  # agree #1, s3 still an intruder
        assert not capacity_feasible(matrix.rows[0], 3, 6)


class TestClassify:
    def test_infeasible_capacity_detected_upfront(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        matrix = ConstraintMatrix(cs, 3)
        bad = classify(matrix)
        assert len(bad) == 1
        assert matrix.rows[0].infeasible

    def test_satisfied_vs_incompatible(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4], [5, 6, 7, 0, 1]])
        matrix = ConstraintMatrix(cs, 4)  # nv=3 would kill both
        # nv=4 is fine: no infeasibility
        assert classify(matrix) == []


class TestGuides:
    def test_guide_from_row(self):
        cs = cset_of(6, [[0, 1, 2]])
        matrix = ConstraintMatrix(cs, 3)
        syms = list(cs.symbols)
        col = {s: 1 if s in ("s0", "s1", "s2", "s3", "s4") else 0
               for s in syms}
        matrix.record_column(col)
        row = matrix.rows[0]
        assert set(row.intruders()) == {"s3", "s4"}
        guide = guide_constraint(row)
        assert guide is not None
        assert guide.is_guide()
        assert guide.symbols == frozenset({"s3", "s4"})
        assert guide.parent == frozenset({"s0", "s1", "s2"})

    def test_single_intruder_gives_no_guide(self):
        cs = cset_of(6, [[0, 1, 2]])
        matrix = ConstraintMatrix(cs, 3)
        syms = list(cs.symbols)
        col = {s: 1 if s in ("s0", "s1", "s2", "s3") else 0 for s in syms}
        matrix.record_column(col)
        assert guide_constraint(matrix.rows[0]) is None


class TestTheorem1:
    def paper_example(self):
        """Example 3/4 of the paper: 15 symbols in B^4, encoding 1c."""
        symbols = [f"s{i}" for i in range(1, 16)]
        # L4 = {s6,s7,s8,s9,s14} on face 0---; intruders {s1, s2} on
        # face 00-0 (s1=0000, s2=0010); everything else outside 0---
        codes = {
            "s1": 0b0000, "s2": 0b0010,
            "s6": 0b0001, "s7": 0b0011, "s8": 0b0101,
            "s9": 0b0111, "s14": 0b0100,
            # remaining symbols on the 1--- half
            "s3": 0b1000, "s4": 0b1001, "s5": 0b1010, "s10": 0b1011,
            "s11": 0b1100, "s12": 0b1101, "s13": 0b1110, "s15": 0b1111,
        }
        # s14=0100, s8=0101 ... face of L4 = 0---; check s1/s2 inside
        return Encoding(symbols, codes, 4)

    def test_construction_matches_paper_count(self):
        enc = self.paper_example()
        members = ["s6", "s7", "s8", "s9", "s14"]
        intruders = enc.intruders(frozenset(members))
        assert set(intruders) == {"s1", "s2"}
        cubes = theorem1_cubes(enc, members, intruders)
        assert cubes is not None
        # dim super(L) = 3, dim super(I) = 1 -> 2 cubes (Theorem I)
        assert len(cubes) == 2

    def test_cubes_cover_members_exclude_intruders(self):
        enc = self.paper_example()
        members = ["s6", "s7", "s8", "s9", "s14"]
        intruders = enc.intruders(frozenset(members))
        cubes = theorem1_cubes(enc, members, intruders)
        for s in members:
            code = enc.code_of(s)
            assert any(not (code ^ v) & m for m, v in cubes), s
        for s in intruders:
            code = enc.code_of(s)
            assert all((code ^ v) & m for m, v in cubes), s

    def test_hypothesis_failure_returns_none(self):
        # intruder supercube containing a member -> None
        enc = Encoding(
            ["a", "b", "c", "d"], {"a": 0, "b": 3, "c": 1, "d": 2}, 2
        )
        # members {a, b} span everything; intruders {c, d} supercube
        # also spans codes including members'
        got = theorem1_cubes(enc, ["a", "b"], ["c", "d"])
        assert got is None

    def test_satisfied_constraint_single_cube(self):
        enc = Encoding(
            ["a", "b", "c", "d"], {"a": 0, "b": 1, "c": 2, "d": 3}, 2
        )
        cubes = theorem1_cubes(enc, ["a", "b"], [])
        assert cubes == [(0b10, 0b00)]


class TestPrefixGroupsAndSolve:
    def test_caps(self):
        groups = PrefixGroups(list("abcdefgh"), 3)
        assert groups.cap_after_next_column() == 4

    def test_column_validity(self):
        groups = PrefixGroups(list("abcd"), 2)
        ok = {"a": 0, "b": 0, "c": 1, "d": 1}
        bad = {"a": 1, "b": 1, "c": 1, "d": 0}
        assert groups.is_valid_column(ok)
        assert not groups.is_valid_column(bad)

    def test_generate_column_is_valid_and_deterministic(self):
        cs = cset_of(10, [[0, 1, 2], [3, 4], [5, 6, 7, 8]])
        matrix = ConstraintMatrix(cs, 4)
        groups = PrefixGroups(list(cs.symbols), 4)
        c1 = generate_column(matrix, groups)
        c2 = generate_column(matrix, groups)
        assert c1 == c2
        assert groups.is_valid_column(c1)

    def test_full_run_yields_injective(self):
        cs = cset_of(9, [[0, 1], [2, 3, 4]])
        matrix = ConstraintMatrix(cs, 4)
        groups = PrefixGroups(list(cs.symbols), 4)
        for _ in range(4):
            col = generate_column(matrix, groups)
            matrix.record_column(col)
            groups.apply_column(col)
        assert all(v == 1 for v in groups.group_sizes().values())


class TestPicolaEncode:
    def test_simple_all_satisfiable(self):
        cs = cset_of(8, [[0, 1], [2, 3], [4, 5, 6, 7], [0, 1, 2, 3]])
        res = picola_encode(cs)
        assert res.encoding.is_injective()
        assert len(res.satisfied) == 4

    def test_accepts_symbols_plus_constraints(self):
        res = picola_encode(
            ["a", "b", "c", "d"], [FaceConstraint({"a", "b"})]
        )
        assert res.encoding.satisfies({"a", "b"})

    def test_rejects_double_constraints(self):
        cs = cset_of(4, [[0, 1]])
        with pytest.raises(ValueError):
            picola_encode(cs, [FaceConstraint({"s0", "s1"})])

    def test_rejects_too_small_nv(self):
        cs = cset_of(5, [[0, 1]])
        with pytest.raises(ValueError):
            picola_encode(cs, nv=2)

    def test_infeasible_constraint_guided(self):
        # 5-symbol constraint among 8 symbols in B^3 is infeasible
        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        res = picola_encode(cs)
        assert len(res.infeasible) == 1
        assert res.summary().startswith("0/1")

    def test_larger_nv_allowed(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        res = picola_encode(cs, nv=4)
        # with one spare bit the constraint is satisfiable
        assert res.encoding.n_bits == 4
        assert len(res.satisfied) == 1

    def test_single_symbol(self):
        res = picola_encode(["only"])
        assert res.encoding.n_bits == 1
        assert res.encoding.is_injective()

    def test_deterministic(self):
        cs = cset_of(10, [[0, 1, 2], [3, 4], [5, 6, 7, 8], [1, 5, 9]])
        a = picola_encode(cs).encoding.codes
        b = picola_encode(cs).encoding.codes
        assert a == b

    def test_options_presets(self):
        cs = cset_of(6, [[0, 1], [2, 3]])
        for preset in ("picola", "dichotomy_count", "constraint_count"):
            res = picola_encode(
                cs, options=PicolaOptions(weights=preset)
            )
            assert res.encoding.is_injective()

    def test_beam_width_one_works(self):
        cs = cset_of(8, [[0, 1, 2], [3, 4, 5]])
        res = picola_encode(
            cs, options=PicolaOptions(beam_width=1, beam_candidates=1)
        )
        assert res.encoding.is_injective()

    def test_bad_beam_rejected(self):
        cs = cset_of(4, [[0, 1]])
        with pytest.raises(ValueError):
            picola_encode(cs, options=PicolaOptions(beam_width=0))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_constraint_sets(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12))
        syms = [f"s{i}" for i in range(n)]
        n_constraints = data.draw(st.integers(min_value=0, max_value=4))
        constraints = []
        for _ in range(n_constraints):
            size = data.draw(st.integers(min_value=2, max_value=max(2, n - 1)))
            members = data.draw(
                st.sets(
                    st.sampled_from(syms), min_size=min(size, n),
                    max_size=min(size, n),
                )
            )
            if 2 <= len(members) < n:
                constraints.append(FaceConstraint(members))
        res = picola_encode(ConstraintSet(syms, constraints))
        assert res.encoding.is_injective()
        # marks agree with geometric satisfaction
        for row in res.matrix.original_rows():
            if row.infeasible:
                continue
            assert row.satisfied() == res.encoding.satisfies(row.members)


class TestRepair:
    def test_polish_never_hurts_satisfaction_score(self):
        cs = cset_of(8, [[0, 1], [2, 3], [4, 5]])
        enc = Encoding.from_code_list(
            cs.symbols, [0, 7, 1, 6, 2, 5, 3, 4], 3
        )  # deliberately bad
        before = sum(
            1 for c in cs.nontrivial() if enc.satisfies(c.symbols)
        )
        polished = polish_encoding(enc, cs)
        after = sum(
            1 for c in cs.nontrivial() if polished.satisfies(c.symbols)
        )
        assert after >= before
        assert polished.is_injective()

    def test_polish_without_constraints_is_identity(self):
        cs = ConstraintSet(["a", "b"])
        enc = Encoding(["a", "b"], {"a": 0, "b": 1}, 1)
        assert polish_encoding(enc, cs) is enc
