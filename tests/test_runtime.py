"""Unit tests for the resilient runtime layer (repro.runtime)."""

import json

import pytest

from repro.runtime import (
    Budget,
    BudgetExceeded,
    Checkpoint,
    CheckpointError,
    Deadline,
    InfeasibleError,
    ParseError,
    ReproError,
    SolverTimeout,
    faults,
    payload_failed,
    resumable,
    run_isolated,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        assert issubclass(InfeasibleError, ReproError)
        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(SolverTimeout, BudgetExceeded)
        assert issubclass(CheckpointError, ReproError)

    def test_builtin_compatibility(self):
        """Legacy call sites catching builtins keep working."""
        assert issubclass(ParseError, ValueError)
        assert issubclass(InfeasibleError, ValueError)
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(SolverTimeout, RuntimeError)

    def test_solver_exceptions_join_taxonomy(self):
        from repro.baselines.enc import EncBudgetExceeded
        from repro.encoding.exact import ExactSearchBudget

        assert issubclass(EncBudgetExceeded, BudgetExceeded)
        assert issubclass(ExactSearchBudget, BudgetExceeded)

    def test_parse_error_from_kiss(self):
        from repro.fsm import parse_kiss

        with pytest.raises(ParseError):
            parse_kiss(".i 1\n.o 1\nbad row\n.e\n")
        # still catchable as the historical ValueError
        with pytest.raises(ValueError):
            parse_kiss(".i 1\n.o 1\nbad row\n.e\n")


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert d.remaining() is None
        assert not d.expired()
        d.check()  # no raise

    def test_expires_with_clock(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert d.remaining() == pytest.approx(10.0)
        clock.now = 9.0
        assert not d.expired()
        clock.now = 10.5
        assert d.expired()
        with pytest.raises(SolverTimeout, match="deadline"):
            d.check("unit")

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestBudget:
    def test_node_budget(self):
        b = Budget(max_nodes=5)
        for _ in range(5):
            b.tick()
        with pytest.raises(BudgetExceeded, match="node budget"):
            b.tick(where="unit")
        assert b.remaining_nodes() == -1

    def test_deadline_checked_periodically(self):
        clock = FakeClock()
        b = Budget(
            deadline=Deadline(1.0, clock=clock), check_every=4
        )
        clock.now = 2.0
        b.tick()  # not yet at a check boundary
        b.tick()
        b.tick()
        with pytest.raises(SolverTimeout):
            b.tick()  # 4th tick consults the clock

    def test_check_is_unconditional(self):
        clock = FakeClock()
        b = Budget(deadline=Deadline(1.0, clock=clock))
        clock.now = 2.0
        with pytest.raises(SolverTimeout):
            b.check()

    def test_unlimited(self):
        b = Budget()
        assert not b.limited
        assert b.remaining_nodes() is None
        for _ in range(1000):
            b.tick()

    def test_seconds_and_deadline_exclusive(self):
        with pytest.raises(ValueError):
            Budget(seconds=1.0, deadline=Deadline(1.0))


class TestFaults:
    def test_noop_when_nothing_armed(self):
        faults.trip("anything")  # no raise

    def test_arm_and_trip(self):
        faults.arm("site.a", SolverTimeout)
        with pytest.raises(SolverTimeout, match="injected fault"):
            faults.trip("site.a")
        faults.trip("site.a")  # fired once (times=1), now exhausted

    def test_key_scoping(self):
        faults.arm("site.b", BudgetExceeded, key="lion9")
        faults.trip("site.b", key="other")  # no raise
        with pytest.raises(BudgetExceeded):
            faults.trip("site.b", key="lion9")

    def test_after_counts_matching_trips(self):
        faults.arm("site.c", SolverTimeout, after=3)
        faults.trip("site.c")
        faults.trip("site.c")
        with pytest.raises(SolverTimeout):
            faults.trip("site.c")

    def test_times_unlimited(self):
        faults.arm("site.d", SolverTimeout, times=None)
        for _ in range(3):
            with pytest.raises(SolverTimeout):
                faults.trip("site.d")

    def test_inject_context_manager_disarms(self):
        with faults.inject("site.e", SolverTimeout) as fault:
            assert fault in faults.active()
            with pytest.raises(SolverTimeout):
                faults.trip("site.e")
        assert not faults.active()
        faults.trip("site.e")  # no raise after exit

    def test_exception_instance_is_raised_verbatim(self):
        exc = SolverTimeout("custom message")
        faults.arm("site.f", exc)
        with pytest.raises(SolverTimeout, match="custom message"):
            faults.trip("site.f")

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "table1.row@lion9=timeout,enc.x=budget:2"
        )
        installed = faults.install_from_env()
        assert len(installed) == 2
        assert installed[0].key == "lion9"
        assert installed[1].after == 2
        with pytest.raises(SolverTimeout):
            faults.trip("table1.row", key="lion9")

    def test_install_from_env_rejects_bad_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "site=explode")
        with pytest.raises(ValueError, match="explode"):
            faults.install_from_env()

    def test_install_from_env_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.install_from_env() == []


class TestRunIsolated:
    def test_ok(self):
        outcome = run_isolated(lambda x: x + 1, 2, label="add")
        assert outcome.ok
        assert outcome.value == 3
        assert outcome.label == "add"

    def test_timeout(self):
        def boom():
            raise SolverTimeout("too slow")

        outcome = run_isolated(boom)
        assert outcome.status == "timeout"
        assert outcome.reason == "timeout"
        assert "too slow" in outcome.error

    def test_budget(self):
        def boom():
            raise BudgetExceeded("out of nodes")

        outcome = run_isolated(boom)
        assert outcome.status == "budget"
        assert outcome.reason == "budget"

    def test_generic_failure(self):
        def boom():
            raise ValueError("bad input")

        outcome = run_isolated(boom)
        assert outcome.status == "failed"
        assert outcome.error == "ValueError: bad input"
        assert outcome.reason == "ValueError"

    def test_operator_interrupts_propagate(self):
        def interrupted():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_isolated(interrupted)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = Checkpoint(path, experiment="table1")
        assert len(ckpt) == 0
        ckpt.mark_done("bbara", {"cubes": 20})
        ckpt.mark_done("lion9", {"cubes": 7})

        again = Checkpoint(path, experiment="table1")
        assert again.is_done("bbara")
        assert not again.is_done("scf")
        assert again.get("lion9") == {"cubes": 7}
        assert sorted(again.keys()) == ["bbara", "lion9"]

    def test_atomic_file_is_valid_json(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = Checkpoint(path, experiment="sweep")
        ckpt.mark_done("0/lion9", {"picola": 7, "nova": 8})
        data = json.loads(path.read_text())
        assert data["experiment"] == "sweep"
        assert "0/lion9" in data["completed"]

    def test_experiment_mismatch(self, tmp_path):
        path = tmp_path / "run.ckpt"
        Checkpoint(path, experiment="table1").mark_done("x", 1)
        with pytest.raises(CheckpointError, match="table1"):
            Checkpoint(path, experiment="table2")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            Checkpoint(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text('{"some": "other file"}')
        with pytest.raises(CheckpointError):
            Checkpoint(path)

    def test_clear(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = Checkpoint(path, experiment="table1")
        ckpt.mark_done("a", 1)
        assert path.exists()
        ckpt.clear()
        assert not path.exists()
        assert not ckpt.is_done("a")

    def test_untagged_write_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        ckpt = Checkpoint(path)
        with pytest.raises(CheckpointError, match="experiment tag"):
            ckpt.mark_done("a", 1)
        assert not path.exists()

    def test_untagged_file_rejected_on_resume(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text(
            '{"format": "repro-checkpoint-v1", "completed": {"a": 1}}'
        )
        with pytest.raises(CheckpointError, match="untagged"):
            Checkpoint(path, experiment="table1")

    def test_payload_failed(self):
        assert payload_failed({"status": "timeout"})
        assert payload_failed({"status": "failed", "reason": "x"})
        assert not payload_failed({"status": "ok", "cubes": 7})
        # ablation payloads carry a per-variant status *dict*
        assert not payload_failed({"status": {"exact": "budget"}})
        assert not payload_failed({"cubes": 7})
        assert not payload_failed(42)

    def test_resumable(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "run.ckpt", experiment="table1")
        ckpt.mark_done("good", {"status": "ok", "cubes": 7})
        ckpt.mark_done("bad", {"status": "timeout"})
        assert resumable(None, "good") is None
        assert resumable(ckpt, "missing") is None
        assert resumable(ckpt, "good") == {"status": "ok", "cubes": 7}
        assert resumable(ckpt, "bad") == {"status": "timeout"}
        # retry_failed releases failed payloads for a re-run, not ok ones
        assert resumable(ckpt, "bad", retry_failed=True) is None
        assert resumable(ckpt, "good", retry_failed=True) is not None


class TestSolverBudgetThreading:
    """Budgets reach the solvers' inner loops."""

    def _small_cset(self):
        from repro.encoding import ConstraintSet, FaceConstraint

        symbols = [f"s{i}" for i in range(6)]
        return ConstraintSet(
            symbols,
            [
                FaceConstraint({"s0", "s1"}),
                FaceConstraint({"s2", "s3", "s4"}),
            ],
        )

    def test_exact_encode_external_budget_strict(self):
        from repro.encoding import exact_encode

        with pytest.raises(BudgetExceeded):
            exact_encode(
                self._small_cset(), strict=True,
                budget=Budget(max_nodes=3),
            )

    def test_exact_encode_external_budget_degrades(self):
        from repro.encoding import exact_encode

        # the first complete assignment of 6 symbols costs exactly 7
        # search nodes, so an 8-node budget trips with a best-so-far
        # encoding in hand and the non-strict call degrades gracefully
        result = exact_encode(
            self._small_cset(), budget=Budget(max_nodes=8)
        )
        assert result.encoding.is_injective()
        assert not result.optimal

    def test_exact_encode_deadline(self):
        from repro.encoding import exact_encode

        clock = FakeClock()
        budget = Budget(
            deadline=Deadline(1.0, clock=clock), check_every=1
        )
        clock.now = 5.0
        with pytest.raises(SolverTimeout):
            exact_encode(self._small_cset(), strict=True, budget=budget)

    def test_picola_encode_budget(self):
        from repro.core import picola_encode

        with pytest.raises(BudgetExceeded):
            picola_encode(self._small_cset(), budget=Budget(max_nodes=1))

    def test_nova_encode_budget(self):
        from repro.baselines import nova_encode

        with pytest.raises(BudgetExceeded):
            nova_encode(self._small_cset(), budget=Budget(max_nodes=10))

    def test_enc_encode_external_budget_propagates(self):
        from repro.baselines import enc_encode

        with pytest.raises(BudgetExceeded):
            enc_encode(self._small_cset(), budget=Budget(max_nodes=2))

    def test_assign_states_timeout_via_fault(self):
        from repro.fsm import load_benchmark
        from repro.stateassign import assign_states

        fsm = load_benchmark("lion9")
        with faults.inject("nova.move", SolverTimeout):
            with pytest.raises(SolverTimeout):
                assign_states(fsm, "nova_ih")
