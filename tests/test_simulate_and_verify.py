"""Integration tests: co-simulation of encoded machines and cover
verification of every minimization in the pipeline."""

import pytest

from repro.cubes import Space
from repro.encoding import derive_face_constraints
from repro.espresso import (
    Pla,
    VerificationError,
    cover_in_range,
    covers_equal,
    espresso,
    verify_minimization,
    verify_pla_minimization,
)
from repro.fsm import (
    CosimMismatch,
    EncodedSimulator,
    SymbolicSimulator,
    cosimulate,
    load_benchmark,
    parse_kiss,
    random_input_sequence,
)
from repro.stateassign import assign_states

TOY = """
.i 1
.o 2
.r idle
0 idle idle 00
1 idle busy 01
0 busy idle 10
1 busy busy 01
"""


class TestSymbolicSimulator:
    def test_walks_table(self):
        fsm = parse_kiss(TOY)
        sim = SymbolicSimulator(fsm)
        assert sim.state == "idle"
        nxt, out = sim.step("1")
        assert (nxt, out) == ("busy", "01")
        nxt, out = sim.step("0")
        assert (nxt, out) == ("idle", "10")

    def test_unspecified_returns_none(self):
        fsm = parse_kiss(".i 1\n.o 1\n.r a\n0 a a 1\n")
        sim = SymbolicSimulator(fsm)
        assert sim.step("1") == (None, None)
        assert sim.state == "a"

    def test_input_width_checked(self):
        fsm = parse_kiss(TOY)
        with pytest.raises(ValueError):
            SymbolicSimulator(fsm).step("01")


class TestEncodedSimulator:
    def test_shape_checked(self):
        pla = Pla(2, 2)
        with pytest.raises(ValueError):
            EncodedSimulator(pla, n_inputs=2, n_state_bits=2,
                             reset_code=0)

    def test_hardware_semantics(self):
        # one state bit, one input; next = input, out = state
        pla = Pla(2, 2)
        pla.add_term("1-", "10")  # next-state bit = input
        pla.add_term("-1", "01")  # output = state bit
        sim = EncodedSimulator(pla, 1, 1, reset_code=0)
        code, out = sim.step("1")
        assert code == 1 and out == [0]
        code, out = sim.step("0")
        assert code == 0 and out == [1]


class TestCosimulation:
    @pytest.mark.parametrize(
        "name", ["lion", "train4", "shiftreg", "modulo12", "bbara",
                 "ex3", "opus", "dk14"]
    )
    def test_pipeline_preserves_behaviour(self, name):
        fsm = load_benchmark(name)
        result = assign_states(fsm, "picola")
        codes = {
            s: result.encoding.code_of(s)
            for s in result.encoding.symbols
        }
        seq = random_input_sequence(fsm.n_inputs, 200, seed=11)
        checked = cosimulate(
            fsm, result.minimized, codes, result.encoding.n_bits, seq
        )
        assert checked > 50  # enough specified steps exercised

    @pytest.mark.parametrize("method", ["nova_ih", "natural", "gray"])
    def test_other_methods_also_correct(self, method):
        fsm = load_benchmark("lion9")
        result = assign_states(fsm, method, seed=3)
        codes = {
            s: result.encoding.code_of(s)
            for s in result.encoding.symbols
        }
        seq = random_input_sequence(fsm.n_inputs, 150, seed=7)
        cosimulate(
            fsm, result.minimized, codes, result.encoding.n_bits, seq
        )

    def test_mismatch_detected(self):
        fsm = parse_kiss(TOY)
        result = assign_states(fsm, "natural")
        codes = {
            s: result.encoding.code_of(s)
            for s in result.encoding.symbols
        }
        broken = result.minimized.copy()
        broken.onset = []  # outputs stuck at 0, next state stuck at 0
        with pytest.raises(CosimMismatch):
            cosimulate(fsm, broken, codes, result.encoding.n_bits,
                       ["1", "1", "0"])


class TestVerify:
    def test_covers_equal(self):
        space = Space.binary(2)
        f = [space.parse_cube("0-"), space.parse_cube("1-")]
        g = [space.universe]
        assert covers_equal(space, f, g)
        assert not covers_equal(space, f, [space.parse_cube("0-")])

    def test_cover_in_range_accepts_dc_use(self):
        space = Space.binary(2)
        onset = [space.parse_cube("00")]
        dcset = [space.parse_cube("01")]
        ok, _ = cover_in_range(space, [space.parse_cube("0-")], onset,
                               dcset)
        assert ok

    def test_cover_in_range_rejects_offset_hit(self):
        space = Space.binary(2)
        onset = [space.parse_cube("00")]
        ok, reason = cover_in_range(space, [space.parse_cube("0-")],
                                    onset)
        assert not ok
        assert "off-set" in reason

    def test_cover_in_range_rejects_uncovered(self):
        space = Space.binary(2)
        onset = [space.parse_cube("00"), space.parse_cube("11")]
        ok, reason = cover_in_range(space, [space.parse_cube("00")],
                                    onset)
        assert not ok
        assert "not covered" in reason

    def test_verify_minimization_raises(self):
        space = Space.binary(2)
        with pytest.raises(VerificationError):
            verify_minimization(space, [], [space.parse_cube("00")])

    def test_espresso_results_always_verify(self):
        import random

        rng = random.Random(9)
        for _ in range(15):
            n = rng.randint(2, 5)
            space = Space.binary(n)
            minterms = list(space.iter_minterms())
            onset = [m for m in minterms if rng.random() < 0.4]
            dcset = [
                m for m in minterms
                if m not in onset and rng.random() < 0.2
            ]
            got = espresso(space, onset, dcset)
            verify_minimization(space, got, onset, dcset)

    def test_verify_pla_minimization(self):
        from repro.espresso import espresso_pla

        pla = Pla(3, 2)
        pla.add_term("000", "11")
        pla.add_term("001", "11")
        out = espresso_pla(pla)
        verify_pla_minimization(pla, out)

    def test_verify_pla_shape_mismatch(self):
        a, b = Pla(2, 1), Pla(3, 1)
        with pytest.raises(VerificationError):
            verify_pla_minimization(a, b)


class TestSeededRandomness:
    """Explicit seed/rng threading through the cosimulation oracle."""

    def test_sequence_seed_determinism(self):
        a = random_input_sequence(3, 50, seed=4)
        b = random_input_sequence(3, 50, seed=4)
        assert a == b
        assert a != random_input_sequence(3, 50, seed=5)

    def test_sequence_accepts_rng_instance(self):
        import random as _random

        a = random_input_sequence(3, 50, rng=_random.Random(4))
        b = random_input_sequence(3, 50, seed=4)
        assert a == b

    def test_seed_and_rng_together_rejected(self):
        import random as _random

        from repro.runtime import InvalidSpecError

        with pytest.raises(InvalidSpecError, match="not both"):
            random_input_sequence(
                3, 10, seed=1, rng=_random.Random(1)
            )

    def test_implicit_default_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            seq = random_input_sequence(2, 10)
        # the fallback is seed 0, so old call sites stay reproducible
        assert seq == random_input_sequence(2, 10, seed=0)

    def test_cosimulate_generates_seeded_sequence(self):
        from repro.fsm import load_benchmark
        from repro.stateassign import assign_states

        fsm = load_benchmark("lion9")
        result = assign_states(fsm, "picola")
        codes = {
            s: result.encoding.code_of(s) for s in result.encoding.symbols
        }
        kwargs = dict(steps=40, seed=3)
        checked = cosimulate(
            fsm, result.minimized, codes, result.encoding.n_bits,
            **kwargs,
        )
        again = cosimulate(
            fsm, result.minimized, codes, result.encoding.n_bits,
            **kwargs,
        )
        assert checked == again

    def test_cosimulate_rejects_sequence_plus_seed(self):
        from repro.fsm import load_benchmark
        from repro.runtime import InvalidSpecError
        from repro.stateassign import assign_states

        fsm = load_benchmark("lion9")
        result = assign_states(fsm, "picola")
        codes = {
            s: result.encoding.code_of(s) for s in result.encoding.symbols
        }
        seq = random_input_sequence(fsm.n_inputs, 5, seed=0)
        with pytest.raises(InvalidSpecError, match="not both"):
            cosimulate(
                fsm, result.minimized, codes, result.encoding.n_bits,
                sequence=seq, seed=1,
            )
