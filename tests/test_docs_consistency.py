"""Documentation consistency: the docs must not drift from the code."""

import pathlib
import re

import repro

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestReadme:
    def test_readme_exists_and_cites_paper(self):
        text = (ROOT / "README.md").read_text()
        assert "PICOLA" in text
        assert "DATE" in text
        assert "Minimum" in text or "minimum" in text

    def test_readme_quickstart_imports_work(self):
        # the README quickstart names these; they must be importable
        from repro import FaceConstraint, picola_encode  # noqa: F401
        from repro import assign_states, load_benchmark  # noqa: F401

    def test_architecture_dirs_exist(self):
        for sub in ["cubes", "espresso", "fsm", "encoding", "core",
                    "baselines", "stateassign", "export", "harness"]:
            assert (ROOT / "src" / "repro" / sub).is_dir(), sub


class TestDesignDoc:
    def test_design_lists_experiments(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Table I" in text
        assert "Table II" in text
        assert "guide" in text.lower()
        assert "substitution" in text.lower()

    def test_design_confirms_paper_match(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "matches the claimed paper" in text


class TestExperimentsDoc:
    def test_records_paper_vs_measured(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "paper" in text and "measured" in text
        assert "Table I" in text and "Table II" in text
        assert "Seed stability" in text

    def test_cli_commands_documented_exist(self):
        """Every `picola <cmd>` the docs mention must be a real command."""
        from repro.harness.cli import _build_parser

        parser = _build_parser()
        sub = next(
            a for a in parser._actions
            if hasattr(a, "choices") and a.choices
        )
        known = set(sub.choices)
        for doc in ["README.md", "EXPERIMENTS.md", "docs/benchmarking.md"]:
            text = (ROOT / doc).read_text()
            for match in re.finditer(r"picola ([a-z0-9-]+)", text):
                cmd = match.group(1)
                if cmd in ("bench",):  # prose, not a command
                    continue
                assert cmd in known, f"{doc} mentions unknown {cmd!r}"


class TestVersion:
    def test_version_consistent(self):
        text = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in text
