"""Tests for the run-analysis diagnostics."""

import pytest

from repro.core import analyze_result, picola_encode
from repro.encoding import ConstraintSet, FaceConstraint


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


class TestAnalyzeResult:
    def test_satisfied_diagnosis(self):
        cs = cset_of(4, [[0, 1]])
        analysis = analyze_result(picola_encode(cs))
        (diag,) = analysis.diagnoses
        assert diag.status == "satisfied"
        assert diag.intruders == ()
        assert diag.theorem1_cubes == 1
        assert "face" in diag.reason

    def test_infeasible_diagnosis_capacity(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4]])  # impossible in B^3
        analysis = analyze_result(picola_encode(cs))
        (diag,) = analysis.diagnoses
        assert diag.status == "infeasible"
        assert "capacity" in diag.reason
        assert diag.intruders  # someone must sit on the face

    def test_estimated_total(self):
        cs = cset_of(8, [[0, 1], [2, 3], [0, 1, 2, 3, 4]])
        analysis = analyze_result(picola_encode(cs))
        assert analysis.estimated_total_cubes >= 3

    def test_render_mentions_every_constraint(self):
        cs = cset_of(6, [[0, 1], [2, 3, 4]])
        text = analyze_result(picola_encode(cs)).render()
        assert "s0" in text and "s2" in text
        assert "estimated implementation" in text

    def test_guide_reported(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        result = picola_encode(cs)
        analysis = analyze_result(result)
        (diag,) = analysis.diagnoses
        if result.guides_added:
            assert diag.guide is not None

    def test_theorem1_estimate_consistent_with_evaluator(self):
        """The Theorem I estimate never undershoots espresso's count
        when its hypothesis holds (it is a constructive bound)."""
        from repro.encoding import cubes_for_constraint

        cs = cset_of(8, [[0, 1, 2, 3, 4], [0, 5]])
        result = picola_encode(cs)
        analysis = analyze_result(result)
        for diag in analysis.diagnoses:
            if diag.theorem1_cubes is None:
                continue
            exact = cubes_for_constraint(
                result.encoding, diag.constraint
            )
            assert exact <= diag.theorem1_cubes


# ---------------------------------------------------------------------------
# repro.analysis — the static-analysis framework (PR 4)
# ---------------------------------------------------------------------------

import json
import warnings
from pathlib import Path

import repro
from repro.analysis import (
    Baseline,
    DEFAULT_RULES,
    Finding,
    analyze,
    rules_by_id,
    split_by_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.report import JSON_SCHEMA_VERSION


def _tree(tmp_path, files):
    """Write ``{relpath: source}`` under a fake ``repro`` package."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def _lint(tmp_path, files):
    report = analyze(_tree(tmp_path, files), DEFAULT_RULES())
    return report


GOOD_BUDGET = """\
def solve(cover, *, budget=None):
    out = []
    for c in cover:
        if budget is not None:
            budget.tick(where="solve")
        out.append(espresso(c))
    return out

def forwards(cover, *, budget=None):
    return [espresso(c, budget=budget) for c in cover]
"""

BAD_BUDGET = """\
def solve(cover, *, budget=None):
    out = []
    for c in cover:
        out.append(espresso(c))
    return out
"""


class TestRuleFixtures:
    """One good/bad fixture pair per rule family."""

    def test_budget_threading_true_positive(self, tmp_path):
        report = _lint(tmp_path, {"core/k.py": BAD_BUDGET})
        (finding,) = report.findings_for("RPA001")
        assert finding.path == "repro/core/k.py"
        assert "budget" in finding.message

    def test_budget_threading_clean(self, tmp_path):
        report = _lint(tmp_path, {"core/k.py": GOOD_BUDGET})
        assert report.findings_for("RPA001") == []

    def test_budget_rule_ignores_out_of_scope(self, tmp_path):
        report = _lint(tmp_path, {"harness/k.py": BAD_BUDGET})
        assert report.findings_for("RPA001") == []

    def test_span_hygiene_true_positive(self, tmp_path):
        bad = "span = tracer.span('picola/encode')\nspan.__enter__()\n"
        report = _lint(tmp_path, {"core/s.py": bad})
        assert report.findings_for("RPA002")

    def test_span_hygiene_clean(self, tmp_path):
        good = "with tracer.span('picola/encode'):\n    pass\n"
        report = _lint(tmp_path, {"core/s.py": good})
        assert report.findings_for("RPA002") == []

    def test_span_hygiene_exempts_obs(self, tmp_path):
        bad = "span = tracer.span('x')\n"
        report = _lint(tmp_path, {"obs/tracer.py": bad})
        assert report.findings_for("RPA002") == []

    def test_except_hygiene_true_positive(self, tmp_path):
        bad = (
            "try:\n    work()\nexcept Exception:\n    pass\n"
        )
        report = _lint(tmp_path, {"harness/h.py": bad})
        (finding,) = report.findings_for("RPA003")
        assert "swallows" in finding.message

    def test_except_hygiene_reraise_is_clean(self, tmp_path):
        good = (
            "try:\n    work()\n"
            "except Exception as exc:\n"
            "    raise WrapperError(str(exc)) from exc\n"
        )
        report = _lint(tmp_path, {"harness/h.py": good})
        assert report.findings_for("RPA003") == []

    def test_raise_taxonomy_true_positive(self, tmp_path):
        bad = "def f(x):\n    raise ValueError('bad x')\n"
        report = _lint(tmp_path, {"fsm/m.py": bad})
        (finding,) = report.findings_for("RPA004")
        assert "ValueError" in finding.message

    def test_raise_taxonomy_clean_on_taxonomy_class(self, tmp_path):
        good = "def f(x):\n    raise InvalidSpecError('bad x')\n"
        report = _lint(tmp_path, {"fsm/m.py": good})
        assert report.findings_for("RPA004") == []

    def test_raise_taxonomy_ignores_non_solver_code(self, tmp_path):
        bad = "def f(x):\n    raise ValueError('bad x')\n"
        report = _lint(tmp_path, {"harness/cli2.py": bad})
        assert report.findings_for("RPA004") == []

    def test_determinism_true_positive_random(self, tmp_path):
        bad = "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
        report = _lint(tmp_path, {"baselines/b.py": bad})
        (finding,) = report.findings_for("RPA005")
        assert "unseeded" in finding.message

    def test_determinism_true_positive_set_iteration(self, tmp_path):
        bad = "def f(xs):\n    for x in set(xs):\n        use(x)\n"
        report = _lint(tmp_path, {"core/d.py": bad})
        (finding,) = report.findings_for("RPA005")
        assert "PYTHONHASHSEED" in finding.message

    def test_determinism_clean(self, tmp_path):
        good = (
            "import random\n\n"
            "def pick(xs, seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.choice(sorted(set(xs)))\n"
        )
        report = _lint(tmp_path, {"baselines/b.py": good})
        assert report.findings_for("RPA005") == []

    def test_registry_conformance_true_positive(self, tmp_path):
        bad = "def rogue_encode(cset, nv):\n    return None\n"
        report = _lint(tmp_path, {"baselines/rogue.py": bad})
        findings = report.findings_for("RPA006")
        assert findings and "budget" in findings[0].message

    def test_registry_conformance_unregistered(self, tmp_path):
        files = {
            "baselines/rogue.py": (
                "def rogue_encode(cset, *, budget=None, tracer=None):\n"
                "    return None\n"
            ),
            "solvers.py": "REGISTRY = {}\n",
        }
        report = _lint(tmp_path, files)
        (finding,) = report.findings_for("RPA006")
        assert "not referenced" in finding.message

    def test_registry_conformance_clean(self, tmp_path):
        files = {
            "baselines/rogue.py": (
                "def rogue_encode(cset, *, budget=None, tracer=None):\n"
                "    return None\n"
            ),
            "solvers.py": (
                "from .baselines.rogue import rogue_encode\n"
                "REGISTRY = {'rogue': rogue_encode}\n"
            ),
        }
        report = _lint(tmp_path, files)
        assert report.findings_for("RPA006") == []

    def test_deprecated_positional_nv_true_positive(self, tmp_path):
        bad = "def f(cset):\n    return exact_encode(cset, 3)\n"
        report = _lint(tmp_path, {"harness/x.py": bad})
        (finding,) = report.findings_for("RPA007")
        assert "positional nv" in finding.message

    def test_deprecated_positional_nv_keyword_clean(self, tmp_path):
        good = "def f(cset):\n    return exact_encode(cset, nv=3)\n"
        report = _lint(tmp_path, {"harness/x.py": good})
        assert report.findings_for("RPA007") == []

    def test_service_payload_direct_encode_call(self, tmp_path):
        bad = (
            "def execute(request):\n"
            "    return picola_encode(request.constraint_set())\n"
        )
        report = _lint(tmp_path, {"service/d.py": bad})
        (finding,) = report.findings_for("RPA009")
        assert "picola_encode" in finding.message
        assert "get_solver" in finding.message

    def test_service_payload_adhoc_dict_return(self, tmp_path):
        bad = (
            "def handle_encode(payload):\n"
            "    return {'status': 'ok', 'codes': {}}\n"
        )
        report = _lint(tmp_path, {"service/server2.py": bad})
        (finding,) = report.findings_for("RPA009")
        assert "ad-hoc dict payload" in finding.message

    def test_service_payload_api_module_in_scope(self, tmp_path):
        bad = (
            "def encode(request):\n"
            "    return {'status': 'ok'}\n"
        )
        report = _lint(tmp_path, {"api.py": bad})
        assert report.findings_for("RPA009")

    def test_service_payload_clean(self, tmp_path):
        good = (
            "def execute(request):\n"
            "    solver = get_solver(request.solver)\n"
            "    result = solver.solve(request.constraint_set())\n"
            "    return EncodeResponse(status='ok', solver='x',\n"
            "                          cache_key='')\n"
            "def encode_worker(payload):\n"
            "    return execute(\n"
            "        EncodeRequest.from_dict(payload)).to_dict()\n"
        )
        report = _lint(tmp_path, {"service/d.py": good})
        assert report.findings_for("RPA009") == []

    def test_service_payload_ignores_out_of_scope(self, tmp_path):
        bad = (
            "def encode(request):\n"
            "    return {'status': picola_encode(request)}\n"
        )
        report = _lint(tmp_path, {"harness/other.py": bad})
        assert report.findings_for("RPA009") == []

    def test_service_payload_private_helpers_clean(self, tmp_path):
        good = (
            "def handle(payload):\n"
            "    return self._handle_encode(payload)\n"
        )
        report = _lint(tmp_path, {"service/srv.py": good})
        assert report.findings_for("RPA009") == []

    def test_bulk_kernel_loop_true_positive(self, tmp_path):
        bad = (
            "__bulk_kernel__ = True\n"
            "def f(space, cover):\n"
            "    return [c for c in cover if c]\n"
        )
        report = _lint(tmp_path, {"cubes/fast.py": bad})
        (finding,) = report.findings_for("RPA008")
        assert "per-cube" in finding.message

    def test_bulk_kernel_sees_through_sorted(self, tmp_path):
        bad = (
            "__bulk_kernel__ = True\n"
            "def f(onset):\n"
            "    for c in sorted(onset):\n"
            "        pass\n"
        )
        report = _lint(tmp_path, {"cubes/fast.py": bad})
        assert report.findings_for("RPA008")

    def test_bulk_kernel_wrapper_true_positive(self, tmp_path):
        bad = (
            "__bulk_kernel__ = True\n"
            "def f(space, cover):\n"
            "    return Cover(space, cover)\n"
        )
        report = _lint(tmp_path, {"cubes/fast.py": bad})
        (finding,) = report.findings_for("RPA008")
        assert "Cover()" in finding.message

    def test_bulk_kernel_index_loops_clean(self, tmp_path):
        good = (
            "__bulk_kernel__ = True\n"
            "def f(space, kernel, packed, order):\n"
            "    for idx in order:\n"
            "        kernel.row(space, packed, idx)\n"
            "    for value in range(4):\n"
            "        pass\n"
        )
        report = _lint(tmp_path, {"cubes/fast.py": good})
        assert report.findings_for("RPA008") == []

    def test_bulk_kernel_unmarked_module_exempt(self, tmp_path):
        loopy = "def f(cover):\n    return [c for c in cover]\n"
        report = _lint(tmp_path, {"cubes/slow.py": loopy})
        assert report.findings_for("RPA008") == []

    def test_syntax_error_becomes_rpa000(self, tmp_path):
        report = _lint(tmp_path, {"core/broken.py": "def f(:\n"})
        (finding,) = report.findings_for("RPA000")
        assert "syntax error" in finding.message


class TestSuppressions:
    def test_line_suppression_moves_finding_aside(self, tmp_path):
        bad = (
            "def f(x):\n"
            "    raise ValueError('x')  "
            "# repro: noqa[RPA004] -- legacy public contract\n"
        )
        report = _lint(tmp_path, {"fsm/m.py": bad})
        assert report.findings == []
        ((finding, sup),) = report.suppressed
        assert finding.rule == "RPA004"
        assert sup.justification == "legacy public contract"
        assert report.unused_suppressions == []

    def test_bare_noqa_suppresses_every_rule(self, tmp_path):
        bad = "def f(x):\n    raise ValueError('x')  # repro: noqa\n"
        report = _lint(tmp_path, {"fsm/m.py": bad})
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_file_level_suppression(self, tmp_path):
        bad = (
            "# repro: noqa-file[RPA004] -- generated shim\n"
            "def f(x):\n    raise ValueError('x')\n"
            "def g(x):\n    raise RuntimeError('x')\n"
        )
        report = _lint(tmp_path, {"fsm/m.py": bad})
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        bad = (
            "def f(x):\n"
            "    raise ValueError('x')  # repro: noqa[RPA001]\n"
        )
        report = _lint(tmp_path, {"fsm/m.py": bad})
        assert report.findings_for("RPA004")
        assert len(report.unused_suppressions) == 1

    def test_unused_suppression_is_reported(self, tmp_path):
        good = "X = 1  # repro: noqa[RPA004] -- nothing here\n"
        report = _lint(tmp_path, {"fsm/m.py": good})
        assert report.findings == []
        (sup,) = report.unused_suppressions
        assert sup.rules == ("RPA004",)


class TestBaseline:
    def _bad_report(self, tmp_path):
        return _lint(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})

    def test_round_trip(self, tmp_path):
        report = self._bad_report(tmp_path)
        baseline = Baseline.from_findings(report.findings)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        new, matched, stale = split_by_baseline(
            report.findings, loaded
        )
        assert new == [] and stale == []
        assert len(matched) == len(report.findings) == 1

    def test_fingerprint_survives_line_drift(self, tmp_path):
        report = self._bad_report(tmp_path)
        baseline = Baseline.from_findings(report.findings)
        drifted = _lint(
            tmp_path,
            {"fsm/m.py": "# a new leading comment\n\nraise ValueError('x')\n"},
        )
        new, matched, stale = split_by_baseline(
            drifted.findings, baseline
        )
        assert new == [] and stale == []
        assert len(matched) == 1

    def test_fixed_finding_goes_stale(self, tmp_path):
        report = self._bad_report(tmp_path)
        baseline = Baseline.from_findings(report.findings)
        fixed = _lint(
            tmp_path, {"fsm/m.py": "raise InvalidSpecError('x')\n"}
        )
        new, matched, stale = split_by_baseline(
            fixed.findings, baseline
        )
        assert new == [] and matched == []
        assert len(stale) == 1

    def test_load_rejects_unknown_version(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(target)


class TestLintCli:
    def test_bad_tree_exits_1_with_rule_ids(self, tmp_path, capsys):
        root = _tree(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})
        code = lint_main([str(root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPA004" in out
        assert "repro/fsm/m.py:1:1" in out

    def test_missing_path_exits_2(self, tmp_path, capsys):
        code = lint_main([str(tmp_path / "nope")])
        assert code == 2

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        root = _tree(tmp_path, {"fsm/m.py": "X = 1\n"})
        bad = tmp_path / "b.json"
        bad.write_text("{not json")
        code = lint_main([str(root), "--baseline", str(bad)])
        assert code == 2

    def test_json_report_schema(self, tmp_path, capsys):
        root = _tree(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})
        code = lint_main([str(root), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["schema_version"] == JSON_SCHEMA_VERSION
        assert set(doc) == {
            "schema_version",
            "strict",
            "files_checked",
            "baseline",
            "findings",
            "baselined",
            "suppressed",
            "stale_baseline_entries",
            "unused_suppressions",
            "exit_code",
        }
        (finding,) = doc["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "fingerprint",
        }
        assert finding["rule"] == "RPA004"
        assert doc["exit_code"] == 1

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = _tree(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})
        baseline = tmp_path / "b.json"
        assert lint_main(
            [str(root), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        capsys.readouterr()
        assert lint_main(
            [str(root), "--baseline", str(baseline), "--strict"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_strict_fails_on_stale_baseline(self, tmp_path, capsys):
        root = _tree(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})
        baseline = tmp_path / "b.json"
        lint_main(
            [str(root), "--baseline", str(baseline), "--update-baseline"]
        )
        (root / "fsm" / "m.py").write_text("X = 1\n")
        assert lint_main(
            [str(root), "--baseline", str(baseline)]
        ) == 0  # stale debt tolerated by default
        assert lint_main(
            [str(root), "--baseline", str(baseline), "--strict"]
        ) == 1

    def test_strict_fails_on_unused_suppression(self, tmp_path, capsys):
        root = _tree(
            tmp_path, {"fsm/m.py": "X = 1  # repro: noqa[RPA004]\n"}
        )
        assert lint_main([str(root)]) == 0
        assert lint_main([str(root), "--strict"]) == 1

    def test_list_rules_covers_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rules_by_id():
            assert rule_id in out

    def test_picola_lint_subcommand(self, capsys):
        from repro.harness.cli import main as picola_main

        assert picola_main(["lint", "--list-rules"]) == 0
        assert "RPA001" in capsys.readouterr().out


class TestSelfCheck:
    """The shipped tree must hold its own invariants."""

    def test_package_is_strict_clean(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # ignore any cwd baseline
        assert lint_main(["--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_every_rule_has_id_and_rationale(self):
        for rule_id, cls in rules_by_id().items():
            assert rule_id.startswith("RPA")
            entry = cls.catalog_entry()
            assert entry["title"] and entry["rationale"]

    def test_finding_fingerprint_is_stable(self):
        a = Finding("RPA004", "repro/x.py", 3, 1, "m", "raise ValueError")
        b = Finding("RPA004", "repro/x.py", 9, 1, "m", "raise ValueError")
        c = Finding("RPA004", "repro/x.py", 3, 1, "m", "raise KeyError")
        assert a.fingerprint == b.fingerprint != c.fingerprint


class TestPositionalNvRemoved:
    """Positional nv is gone (1.6.0): the old DeprecationWarning became
    a TypeError whose message names the migration path."""

    def _cset(self):
        syms = [f"s{i}" for i in range(4)]
        return ConstraintSet(
            syms, [FaceConstraint({"s0", "s1"})]
        )

    def test_exact_encode_raises_with_migration(self):
        from repro.encoding.exact import exact_encode

        with pytest.raises(TypeError) as exc_info:
            exact_encode(self._cset(), 2)
        message = str(exc_info.value)
        assert "removed in 1.6.0" in message
        assert "nv=..." in message

    def test_nova_encode_raises_with_migration(self):
        from repro.baselines.nova import nova_encode

        with pytest.raises(TypeError) as exc_info:
            nova_encode(self._cset(), 2)
        message = str(exc_info.value)
        assert "removed in 1.6.0" in message
        assert "get_solver('nova')" in message

    def test_no_deprecation_warning_machinery_left(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.baselines.nova import nova_encode
            from repro.encoding.exact import exact_encode

            exact_encode(self._cset(), nv=2)
            nova_encode(self._cset(), nv=2)
