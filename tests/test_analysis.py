"""Tests for the run-analysis diagnostics."""

import pytest

from repro.core import analyze_result, picola_encode
from repro.encoding import ConstraintSet, FaceConstraint


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


class TestAnalyzeResult:
    def test_satisfied_diagnosis(self):
        cs = cset_of(4, [[0, 1]])
        analysis = analyze_result(picola_encode(cs))
        (diag,) = analysis.diagnoses
        assert diag.status == "satisfied"
        assert diag.intruders == ()
        assert diag.theorem1_cubes == 1
        assert "face" in diag.reason

    def test_infeasible_diagnosis_capacity(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4]])  # impossible in B^3
        analysis = analyze_result(picola_encode(cs))
        (diag,) = analysis.diagnoses
        assert diag.status == "infeasible"
        assert "capacity" in diag.reason
        assert diag.intruders  # someone must sit on the face

    def test_estimated_total(self):
        cs = cset_of(8, [[0, 1], [2, 3], [0, 1, 2, 3, 4]])
        analysis = analyze_result(picola_encode(cs))
        assert analysis.estimated_total_cubes >= 3

    def test_render_mentions_every_constraint(self):
        cs = cset_of(6, [[0, 1], [2, 3, 4]])
        text = analyze_result(picola_encode(cs)).render()
        assert "s0" in text and "s2" in text
        assert "estimated implementation" in text

    def test_guide_reported(self):
        cs = cset_of(8, [[0, 1, 2, 3, 4]])
        result = picola_encode(cs)
        analysis = analyze_result(result)
        (diag,) = analysis.diagnoses
        if result.guides_added:
            assert diag.guide is not None

    def test_theorem1_estimate_consistent_with_evaluator(self):
        """The Theorem I estimate never undershoots espresso's count
        when its hypothesis holds (it is a constructive bound)."""
        from repro.encoding import cubes_for_constraint

        cs = cset_of(8, [[0, 1, 2, 3, 4], [0, 5]])
        result = picola_encode(cs)
        analysis = analyze_result(result)
        for diag in analysis.diagnoses:
            if diag.theorem1_cubes is None:
                continue
            exact = cubes_for_constraint(
                result.encoding, diag.constraint
            )
            assert exact <= diag.theorem1_cubes
