"""Tests for the MAKE_SPARSE literal-reduction pass."""

import random

import pytest

from repro.cubes import Space, contains
from repro.espresso import (
    espresso,
    lower_outputs,
    make_sparse,
    raise_inputs,
    verify_minimization,
)


def semantics(space, cover):
    return {
        m
        for m in space.iter_minterms()
        if any(contains(c, m) for c in cover)
    }


class TestLowerOutputs:
    def test_drops_redundant_output_contact(self):
        space = Space.binary(2, 2)
        # cube A implements both outputs on 0-; cube B re-implements
        # output 1 on the whole input space
        a = space.parse_cube("0- 11")
        b = space.parse_cube("-- 01")
        lowered = lower_outputs(space, [a, b])
        assert semantics(space, lowered) == semantics(space, [a, b])
        # cube A should have dropped output 1
        assert space.parse_cube("0- 10") in lowered

    def test_keeps_last_value(self):
        space = Space.binary(1, 2)
        a = space.parse_cube("0 10")
        assert lower_outputs(space, [a]) == [a]

    def test_respects_dcset(self):
        space = Space.binary(1, 2)
        a = space.parse_cube("0 11")
        dc = [space.parse_cube("0 01")]
        lowered = lower_outputs(space, [a], dc)
        assert lowered == [space.parse_cube("0 10")]


class TestRaiseInputs:
    def test_removes_redundant_literal(self):
        space = Space.binary(2, 1)
        cover = [space.parse_cube("00 1"), space.parse_cube("01 1")]
        raised = raise_inputs(space, cover)
        # both cubes can grow to 0-
        assert all(
            space.field(c, 1) == 0b11 for c in raised
        )

    def test_blocked_by_offset(self):
        space = Space.binary(2, 1)
        cover = [space.parse_cube("00 1")]
        raised = raise_inputs(space, cover)
        assert raised == cover  # anything bigger hits the off-set


class TestMakeSparse:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_preserves_semantics_on_random_functions(self, seed):
        rng = random.Random(seed)
        space = Space.binary(3, 2)
        minterms = list(space.iter_minterms())
        onset = [m for m in minterms if rng.random() < 0.35]
        if not onset:
            return
        minimized = espresso(space, onset)
        sparse = make_sparse(space, minimized)
        assert semantics(space, sparse) == semantics(space, onset)
        verify_minimization(space, sparse, onset)

    def test_never_increases_connections(self):
        rng = random.Random(7)
        space = Space.binary(4, 3)
        minterms = list(space.iter_minterms())
        onset = [m for m in minterms if rng.random() < 0.3]
        minimized = espresso(space, onset)
        sparse = make_sparse(space, minimized)

        def connections(cover):
            total = 0
            for cube in cover:
                for part in range(space.num_parts - 1):
                    if space.field(cube, part) != 0b11:
                        total += 1
                total += bin(
                    space.field(cube, space.num_parts - 1)
                ).count("1")
            return total

        assert connections(sparse) <= connections(minimized)
        assert len(sparse) <= len(minimized)
