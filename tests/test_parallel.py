"""The parallel experiment engine (repro.harness.parallel).

The central guarantee under test: ``--jobs N`` produces byte-identical
rendered tables — and identical JSON modulo wall-clock ``seconds``
fields, which differ even between two serial runs — while preserving
every robustness behavior of the serial path (fault isolation,
checkpoint/resume, fault injection, tracing).
"""

import json
import time

import pytest

from repro.harness import Unit, resolve_jobs, run_units
from repro.harness.ablation import run_ablation
from repro.harness.parallel import UNIT_SPAN
from repro.harness.serialize import to_dict
from repro.harness.sweep import run_seed_sweep
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2
from repro.obs import (
    MemorySink,
    Tracer,
    profile_report,
    set_tracer,
)
from repro.runtime import (
    Checkpoint,
    InvalidSpecError,
    SolverTimeout,
    faults,
)

FSMS = ["lion9", "ex3", "opus"]


@pytest.fixture(autouse=True)
def _clean_state():
    faults.reset()
    set_tracer(None)
    yield
    faults.reset()
    set_tracer(None)


def scrub_seconds(obj):
    """Drop wall-clock fields; they are nondeterministic run to run."""
    if isinstance(obj, dict):
        return {
            k: scrub_seconds(v)
            for k, v in obj.items()
            if not k.startswith("seconds") and k != "time_ratios"
        }
    if isinstance(obj, list):
        return [scrub_seconds(v) for v in obj]
    return obj


# module-level so the pool can pickle them by reference
def _identity(x):
    return x


def _slow_identity(x, delay):
    time.sleep(delay)
    return x


def _boom(kind):
    if kind == "timeout":
        raise SolverTimeout("injected")
    raise ValueError("injected crash")


class TestResolveJobs:
    def test_default_and_explicit(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(InvalidSpecError):
            resolve_jobs(-1)


class TestEngine:
    def test_results_in_submission_order(self):
        # later units finish first; yielded order must not care
        units = [
            Unit(key="slow", fn=_slow_identity, args=("slow", 0.3)),
            Unit(key="fast", fn=_identity, args=("fast",)),
            Unit(key="mid", fn=_slow_identity, args=("mid", 0.1)),
        ]
        outcomes = list(run_units(units, jobs=3))
        assert [o.value for o in outcomes] == ["slow", "fast", "mid"]
        assert [o.label for o in outcomes] == ["slow", "fast", "mid"]
        assert all(o.ok for o in outcomes)

    def test_worker_failures_come_back_classified(self):
        units = [
            Unit(key="t", fn=_boom, args=("timeout",)),
            Unit(key="ok", fn=_identity, args=(7,)),
            Unit(key="f", fn=_boom, args=("crash",)),
        ]
        t, ok, f = list(run_units(units, jobs=2))
        assert t.status == "timeout"
        assert ok.ok and ok.value == 7
        assert f.status == "failed"
        assert "ValueError" in f.error

    def test_single_unit_stays_serial(self):
        # len(units) <= 1 never pays the pool start-up cost
        outcomes = list(
            run_units([Unit(key="x", fn=_identity, args=(1,))], jobs=8)
        )
        assert outcomes[0].value == 1

    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        import repro.harness.parallel as parallel

        monkeypatch.setattr(parallel, "_start_pool", lambda n: None)
        units = [
            Unit(key=str(i), fn=_identity, args=(i,)) for i in range(3)
        ]
        outcomes = list(run_units(units, jobs=2))
        assert [o.value for o in outcomes] == [0, 1, 2]


class TestDeterminism:
    def test_table1_parallel_matches_serial(self):
        serial = run_table1(FSMS, include_enc=False)
        par = run_table1(FSMS, include_enc=False, jobs=2)
        assert par.render() == serial.render()
        assert scrub_seconds(to_dict(par)) == scrub_seconds(
            to_dict(serial)
        )

    def test_table2_parallel_matches_serial(self):
        # Table II's rendered "time" columns are wall-clock ratios
        # (nondeterministic even serially), so compare the serialized
        # form with seconds/ratios scrubbed instead of render() bytes.
        serial = run_table2(["lion9", "ex3"])
        par = run_table2(["lion9", "ex3"], jobs=2)
        assert scrub_seconds(to_dict(par)) == scrub_seconds(
            to_dict(serial)
        )
        assert [r.sizes for r in par.rows] == [
            r.sizes for r in serial.rows
        ]

    def test_sweep_parallel_matches_serial(self):
        serial = run_seed_sweep(["lion9", "ex3"], seeds=(0, 1))
        par = run_seed_sweep(["lion9", "ex3"], seeds=(0, 1), jobs=2)
        assert par.render() == serial.render()
        assert to_dict(par) == to_dict(serial)

    def test_ablation_parallel_matches_serial(self):
        variants = ["full", "no_guides"]
        serial = run_ablation(["lion9", "ex3"], variants)
        par = run_ablation(["lion9", "ex3"], variants, jobs=2)
        assert par.render() == serial.render()
        assert scrub_seconds(to_dict(par)) == scrub_seconds(
            to_dict(serial)
        )


class TestFaultsReachWorkers:
    def test_armed_fault_fires_inside_worker(self):
        with faults.inject("table1.row", SolverTimeout, key="ex3"):
            report = run_table1(FSMS, include_enc=False, jobs=2)
        assert report.n_failed == 1
        assert report.rows[1].status == "timeout"
        assert report.rows[0].ok and report.rows[2].ok
        assert "FAILED (timeout)" in report.render()


class TestParallelCheckpointing:
    def test_kill_and_resume_skips_checkpointed_rows(self, tmp_path):
        ckpt_path = tmp_path / "t1.ckpt"
        with faults.inject("table1.row", SolverTimeout, key="ex3"):
            first = run_table1(
                FSMS, include_enc=False, jobs=2, checkpoint=ckpt_path
            )
        assert first.n_failed == 1
        ckpt = Checkpoint(ckpt_path)
        # every row is checkpointed, the failed one with its status
        assert sorted(ckpt.keys()) == sorted(FSMS)
        assert ckpt.get("ex3")["status"] == "timeout"

        # resume re-runs nothing — failed rows included.  The armed
        # fault would trip on any re-run (parent or forked worker).
        with faults.inject("table1.row", SolverTimeout) as fault:
            resumed = run_table1(
                FSMS, include_enc=False, jobs=2, checkpoint=ckpt_path
            )
            assert fault.fired == 0
        assert resumed.render() == first.render()
        assert resumed.n_failed == 1

        # --retry-failed releases only the failed row
        retried = run_table1(
            FSMS, include_enc=False, jobs=2,
            checkpoint=ckpt_path, retry_failed=True,
        )
        assert retried.n_failed == 0
        assert Checkpoint(ckpt_path).get("ex3")["status"] == "ok"


class TestTraceAdoption:
    def test_worker_spans_reparented_into_parent_tracer(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        set_tracer(tracer)
        try:
            run_table1(["lion9", "ex3"], include_enc=False, jobs=2)
        finally:
            set_tracer(None)
        spans = [e for e in sink.events if e.get("type") == "span"]
        roots = [s for s in spans if s["name"] == UNIT_SPAN]
        assert len(roots) == 2
        assert sorted(r["attrs"]["label"] for r in roots) == [
            "ex3", "lion9",
        ]
        assert all(r["attrs"]["status"] == "ok" for r in roots)
        # worker spans came along and hang under the synthetic root
        child_names = {s["name"] for s in spans if s["name"] != UNIT_SPAN}
        assert child_names  # solver spans made it across the pool
        assert any(s.get("parent") == UNIT_SPAN for s in spans)
        # counters/gauges merged, so --profile renders a real report
        report = profile_report(tracer)
        text = report.render()
        assert UNIT_SPAN in text

    def test_no_tracer_no_overhead(self):
        # without an enabled tracer the engine ships no obs payloads
        report = run_table1(["lion9", "ex3"], include_enc=False, jobs=2)
        assert report.n_failed == 0


class TestCliJobsFlag:
    def test_jobs_flag_renders_identical_table(self, tmp_path, capsys):
        from repro.harness.cli import main

        out_serial = tmp_path / "serial.json"
        out_par = tmp_path / "par.json"
        main([
            "table1", "--fsm", "lion9", "ex3", "--no-enc",
            "--json", str(out_serial),
        ])
        serial_table = capsys.readouterr().out
        main([
            "table1", "--fsm", "lion9", "ex3", "--no-enc",
            "--jobs", "2", "--json", str(out_par),
        ])
        par_table = capsys.readouterr().out

        def table_lines(text):
            # drop the "wrote <path>" status line; the paths differ
            return [ln for ln in text.splitlines() if ".json" not in ln]

        assert table_lines(par_table) == table_lines(serial_table)
        assert scrub_seconds(
            json.loads(out_par.read_text())
        ) == scrub_seconds(json.loads(out_serial.read_text()))

    def test_negative_jobs_is_a_cli_error(self, capsys):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["table1", "--quick", "--jobs", "-2"])
