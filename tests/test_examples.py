"""Smoke tests: every example script must run cleanly end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _example_env():
    """Subprocess env with the repo's ``src/`` importable.

    The example subprocesses don't inherit pytest's import path, so
    prepend ``src/`` to ``PYTHONPATH`` explicitly — the examples must
    run from a clean environment.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src + os.pathsep + existing if existing else src
    )
    return env


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.stem == "export_netlists":
        args.append(str(tmp_path))
    elif script.stem == "state_assignment":
        args.append("lion9")  # small machine keeps it fast
    result = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"


def test_example_list_is_complete():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "state_assignment",
        "microcode_encoding",
        "paper_walkthrough",
        "export_netlists",
        "tutorial",
    } <= names
