"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.stem == "export_netlists":
        args.append(str(tmp_path))
    elif script.stem == "state_assignment":
        args.append("lion9")  # small machine keeps it fast
    result = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(tmp_path),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"


def test_example_list_is_complete():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "state_assignment",
        "microcode_encoding",
        "paper_walkthrough",
        "export_netlists",
        "tutorial",
    } <= names
