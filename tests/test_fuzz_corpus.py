"""The fuzz corpus: save/load/replay round-trips and the committed set."""

import json
import os

import pytest

from repro.fuzz import (
    FuzzCase,
    entry_for_finding,
    generate_case,
    load_corpus,
    minimize_case,
    parser_entry,
    replay_entry,
    run_case,
    save_entry,
)
from repro.runtime import InvalidSpecError, ParseError

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestCommittedCorpus:
    """Every committed corpus entry must replay green, forever."""

    def test_corpus_is_not_empty(self):
        assert load_corpus(CORPUS_DIR), (
            "tests/corpus should carry the parser regressions and at "
            "least one case entry"
        )

    @pytest.mark.parametrize(
        "entry",
        load_corpus(CORPUS_DIR),
        ids=lambda e: e.name,
    )
    def test_replays_green(self, entry):
        ok, detail = replay_entry(entry)
        assert ok, f"{entry.name}: {detail}"

    def test_covers_both_parsers_and_cases(self):
        kinds = {e.kind for e in load_corpus(CORPUS_DIR)}
        assert {"kiss", "pla", "case"} <= kinds


class TestSaveLoadRoundTrip:
    def test_case_entry_round_trip(self, tmp_path):
        case = generate_case("random", 3, 8)
        outcome = run_case(case, "picola", timeout=30)
        entry = entry_for_finding(outcome, case)
        entry.data["expect"] = outcome.classification
        path = save_entry(str(tmp_path), entry)
        assert os.path.exists(path)

        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        ok, detail = replay_entry(loaded[0])
        assert ok, detail
        assert outcome.classification in detail

    def test_save_is_content_addressed_and_idempotent(self, tmp_path):
        entry = parser_entry("kiss", ".i 1\n", note="x")
        p1 = save_entry(str(tmp_path), entry)
        p2 = save_entry(
            str(tmp_path), parser_entry("kiss", ".i 1\n", note="x")
        )
        assert p1 == p2
        assert len(os.listdir(tmp_path)) == 1

    def test_parser_entry_replay_semantics(self, tmp_path):
        red = parser_entry("kiss", ".i 1\n.o 1\n0 a b 1\n.e\n")
        ok, detail = replay_entry(red)
        assert not ok  # parses fine, so the "must raise" entry is red
        green = parser_entry("kiss", "not kiss at all ever\n")
        ok, detail = replay_entry(green)
        assert ok, detail

    def test_parser_entry_kind_validated(self):
        with pytest.raises(InvalidSpecError):
            parser_entry("blif", "junk")

    def test_expect_null_fails_while_still_a_finding(self, tmp_path):
        # a fresh finding (expect null) replays red until the tree is
        # fixed; simulate with a case entry pointing at a crash solver
        case = generate_case("random", 4, 8)
        outcome = run_case(case, "picola", timeout=30)
        entry = entry_for_finding(outcome, case)
        assert entry.data["expect"] is None
        save_entry(str(tmp_path), entry)
        loaded = load_corpus(str(tmp_path))[0]
        ok, detail = replay_entry(loaded)
        # picola is healthy, so the null-expect entry replays green
        assert ok, detail

    def test_malformed_json_is_classified(self, tmp_path):
        (tmp_path / "case-bad-000000.json").write_text("{nope")
        with pytest.raises(ParseError, match="not valid JSON"):
            load_corpus(str(tmp_path))

    def test_unknown_schema_is_classified(self, tmp_path):
        (tmp_path / "case-bad-000000.json").write_text(
            json.dumps({"schema": 99, "kind": "case"})
        )
        with pytest.raises(ParseError, match="unknown schema"):
            load_corpus(str(tmp_path))

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestMinimize:
    def test_drops_unneeded_constraints(self):
        case = generate_case("grid", 4, 12)

        def target(candidate):
            # "failure" depends only on one specific row being present
            return any(
                candidate.cset.symbols
                and sorted(c.symbols)[:1] == ["g0_0"]
                for c in candidate.cset.constraints
            )

        assert target(case)
        small = minimize_case(case, target)
        assert target(small)
        assert len(small.cset.constraints) <= len(case.cset.constraints)
        assert len(small.cset.constraints) == 1

    def test_drops_fsm_when_not_needed(self):
        case = generate_case("fsm", 2, 10)

        def target(candidate):
            return candidate.cset.n_symbols >= 2

        small = minimize_case(case, target)
        assert small.fsm is None
        assert small.nv is not None  # width stays pinned

    def test_keeps_fsm_when_needed(self):
        case = generate_case("fsm", 2, 10)

        def target(candidate):
            return candidate.fsm is not None

        small = minimize_case(case, target)
        assert small.fsm is not None

    def test_drops_unused_symbols(self):
        case = generate_case("grid", 4, 12)
        keep = sorted(case.cset.constraints[0].symbols)

        def target(candidate):
            return any(
                sorted(c.symbols) == keep
                for c in candidate.cset.constraints
            )

        small = minimize_case(case, target)
        assert target(small)
        assert small.cset.n_symbols < case.cset.n_symbols

    def test_crashing_reproducer_rejects_candidate(self):
        case = generate_case("random", 5, 8)
        calls = {"n": 0}

        def flaky(candidate):
            calls["n"] += 1
            raise RuntimeError("reproducer blew up")

        small = minimize_case(case, flaky)
        assert small.to_dict() == case.to_dict()  # nothing accepted
        assert calls["n"] > 0

    def test_attempt_budget_is_bounded(self):
        case = generate_case("grid", 8, 24)
        calls = {"n": 0}

        def count(candidate):
            calls["n"] += 1
            return True

        minimize_case(case, count, max_attempts=7)
        assert calls["n"] <= 7

    def test_minimized_case_round_trips(self):
        case = generate_case("grid", 4, 12)
        small = minimize_case(
            case, lambda cand: len(cand.cset.constraints) >= 1
        )
        again = FuzzCase.from_dict(small.to_dict())
        assert again.to_dict() == small.to_dict()
