"""CLI error handling and option coverage.

The ``main()`` boundary converts structured failures (``ReproError``,
``OSError``) into a one-line stderr diagnostic and exit code 2 —
users never see a raw traceback for a missing or malformed input
file.
"""

import pytest

from repro.harness.cli import main


class TestCliErrors:
    def test_no_command_exits(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_encode_missing_file(self, capsys):
        assert main(["encode", "/nonexistent/machine.kiss2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("picola: error:")
        assert "machine.kiss2" in err

    def test_analyze_missing_target(self, capsys):
        assert main(["analyze", "/nonexistent/machine.kiss2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("picola: error:")

    def test_encode_malformed_kiss(self, tmp_path, capsys):
        bad = tmp_path / "bad.kiss2"
        bad.write_text(".i 2\n.o 1\nnot a kiss row\n.e\n")
        assert main(["encode", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("picola: error:")
        assert "\n" not in err.strip()  # one-line diagnostic

    def test_encode_empty_kiss(self, tmp_path, capsys):
        empty = tmp_path / "empty.kiss2"
        empty.write_text(".i 1\n.o 1\n.e\n")
        assert main(["encode", str(empty)]) == 2
        assert "no transitions" in capsys.readouterr().err

    def test_encode_with_method(self, tmp_path, capsys):
        kiss = tmp_path / "m.kiss2"
        kiss.write_text(
            ".i 1\n.o 1\n.r a\n0 a a 0\n1 a b 1\n0 b b 1\n1 b a 0\n.e\n"
        )
        assert main(["encode", str(kiss), "--method", "gray"]) == 0
        out = capsys.readouterr().out
        assert "gray" in out

    def test_export_verilog_only(self, tmp_path, capsys):
        assert main([
            "export", "seq101", "--format", "verilog",
            "--out", str(tmp_path),
        ]) == 0
        assert (tmp_path / "seq101.v").exists()
        assert not (tmp_path / "seq101.blif").exists()

    def test_analyze_accepts_kiss_path(self, tmp_path, capsys):
        kiss = tmp_path / "m.kiss2"
        kiss.write_text(
            ".i 1\n.o 1\n.r a\n0 a b 1\n1 a a 0\n0 b a 1\n1 b b 0\n.e\n"
        )
        assert main(["analyze", str(kiss)]) == 0
        out = capsys.readouterr().out
        assert "face constraints" in out
