"""CLI error handling and option coverage."""

import pytest

from repro.harness.cli import main


class TestCliErrors:
    def test_no_command_exits(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_encode_missing_file(self):
        with pytest.raises(FileNotFoundError):
            main(["encode", "/nonexistent/machine.kiss2"])

    def test_analyze_missing_target(self):
        with pytest.raises(FileNotFoundError):
            main(["analyze", "/nonexistent/machine.kiss2"])

    def test_encode_with_method(self, tmp_path, capsys):
        kiss = tmp_path / "m.kiss2"
        kiss.write_text(
            ".i 1\n.o 1\n.r a\n0 a a 0\n1 a b 1\n0 b b 1\n1 b a 0\n.e\n"
        )
        assert main(["encode", str(kiss), "--method", "gray"]) == 0
        out = capsys.readouterr().out
        assert "gray" in out

    def test_export_verilog_only(self, tmp_path, capsys):
        assert main([
            "export", "seq101", "--format", "verilog",
            "--out", str(tmp_path),
        ]) == 0
        assert (tmp_path / "seq101.v").exists()
        assert not (tmp_path / "seq101.blif").exists()

    def test_analyze_accepts_kiss_path(self, tmp_path, capsys):
        kiss = tmp_path / "m.kiss2"
        kiss.write_text(
            ".i 1\n.o 1\n.r a\n0 a b 1\n1 a a 0\n0 b a 1\n1 b b 0\n.e\n"
        )
        assert main(["analyze", str(kiss)]) == 0
        out = capsys.readouterr().out
        assert "face constraints" in out
