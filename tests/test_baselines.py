"""Tests for the NOVA-, ENC-style and trivial baseline encoders."""

import pytest

from repro.baselines import (
    EncBudgetExceeded,
    best_random_encoding,
    enc_encode,
    gray_encoding,
    natural_encoding,
    nova_encode,
    random_encoding,
    state_affinity,
)
from repro.encoding import ConstraintSet, FaceConstraint
from repro.fsm import parse_kiss


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


class TestSimpleEncoders:
    def test_natural(self):
        enc = natural_encoding(["a", "b", "c"])
        assert enc.codes == {"a": 0, "b": 1, "c": 2}
        assert enc.n_bits == 2

    def test_gray_adjacent_codes(self):
        enc = gray_encoding([f"s{i}" for i in range(8)])
        codes = [enc.codes[f"s{i}"] for i in range(8)]
        for a, b in zip(codes, codes[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_random_is_injective_and_seeded(self):
        syms = [f"s{i}" for i in range(9)]
        a = random_encoding(syms, seed=3)
        b = random_encoding(syms, seed=3)
        c = random_encoding(syms, seed=4)
        assert a.codes == b.codes
        assert a.is_injective()
        assert a.codes != c.codes

    def test_too_small_nv_rejected(self):
        with pytest.raises(ValueError):
            natural_encoding(["a", "b", "c"], nv=1)

    def test_best_random_scores_by_satisfaction(self):
        cs = cset_of(4, [[0, 1]])
        enc = best_random_encoding(cs, trials=16)
        assert enc.satisfies({"s0", "s1"})


class TestNova:
    def test_satisfies_easy_constraints(self):
        cs = cset_of(8, [[0, 1], [2, 3], [4, 5, 6, 7]])
        result = nova_encode(cs, seed=1)
        assert result.satisfied == 3
        assert result.encoding.is_injective()

    def test_variants(self):
        cs = cset_of(6, [[0, 1], [2, 3]])
        for variant in ("i_greedy", "i_hybrid"):
            result = nova_encode(cs, variant=variant, seed=2)
            assert result.encoding.is_injective()
            assert result.variant == variant

    def test_io_hybrid_uses_affinity(self):
        cs = cset_of(4, [])
        affinity = {("s0", "s1"): 5.0}
        result = nova_encode(
            cs, variant="io_hybrid", affinity=affinity, seed=0
        )
        # the affinity bonus should pull s0 and s1 close together
        dist = bin(
            result.encoding.code_of("s0") ^ result.encoding.code_of("s1")
        ).count("1")
        assert dist == 1

    def test_unknown_variant_rejected(self):
        cs = cset_of(4, [])
        with pytest.raises(ValueError):
            nova_encode(cs, variant="nope")

    def test_deterministic_per_seed(self):
        cs = cset_of(9, [[0, 1, 2], [3, 4]])
        a = nova_encode(cs, seed=7).encoding.codes
        b = nova_encode(cs, seed=7).encoding.codes
        assert a == b


class TestEnc:
    def test_improves_over_natural(self):
        cs = cset_of(8, [[0, 7], [1, 6]])  # natural numbering violates
        result = enc_encode(cs, max_minimizations=3000)
        assert result.converged
        assert result.encoding.is_injective()
        # two pair constraints are always satisfiable in B^3
        assert result.total_cubes == 2

    def test_budget_failure_nonstrict(self):
        cs = cset_of(10, [[0, 1, 2], [3, 4, 5], [6, 7, 8]])
        result = enc_encode(cs, max_minimizations=5)
        assert not result.converged
        assert result.encoding.is_injective()

    def test_budget_failure_strict_raises(self):
        cs = cset_of(10, [[0, 1, 2], [3, 4, 5], [6, 7, 8]])
        with pytest.raises(EncBudgetExceeded):
            enc_encode(cs, max_minimizations=5, strict=True)

    def test_counts_minimizations(self):
        cs = cset_of(4, [[0, 1]])
        result = enc_encode(cs)
        assert result.minimizations > 0


class TestStateAffinity:
    def test_common_fanout_earns_weight(self):
        fsm = parse_kiss(
            """
.i 1
.o 1
.r a
0 a c 0
1 a a 0
0 b c 0
1 b b 0
0 c c 1
1 c a 1
"""
        )
        affinity = state_affinity(fsm)
        assert affinity.get(("a", "b"), 0) > 0  # both go to c on 0


class TestMustang:
    def test_variants_run(self):
        fsm = parse_kiss(
            """
.i 1
.o 1
.r a
0 a c 0
1 a a 0
0 b c 0
1 b b 0
0 c c 1
1 c a 1
"""
        )
        from repro.baselines import mustang_encode

        for variant in ("p", "n"):
            result = mustang_encode(fsm, variant=variant, seed=2)
            assert result.encoding.is_injective()
            assert result.variant == variant

    def test_attracted_states_get_close_codes(self):
        from repro.baselines import attraction_graph, mustang_encode

        fsm = parse_kiss(
            """
.i 1
.o 1
.r a
0 a c 1
1 a a 0
0 b c 1
1 b b 0
0 c c 0
1 c d 0
0 d d 0
1 d a 0
"""
        )
        graph = attraction_graph(fsm, "p")
        assert graph.get(("a", "b"), 0) > 0
        result = mustang_encode(fsm, variant="p", seed=1)
        dist = bin(
            result.encoding.code_of("a") ^ result.encoding.code_of("b")
        ).count("1")
        assert dist == 1

    def test_unknown_variant_rejected(self):
        from repro.baselines import attraction_graph

        fsm = parse_kiss(".i 1\n.o 1\n.r a\n0 a a 1\n1 a a 0\n")
        with pytest.raises(ValueError):
            attraction_graph(fsm, "x")

    def test_deterministic(self):
        from repro.baselines import mustang_encode
        from repro.fsm import load_benchmark

        fsm = load_benchmark("lion9")
        a = mustang_encode(fsm, seed=5).encoding.codes
        b = mustang_encode(fsm, seed=5).encoding.codes
        assert a == b
