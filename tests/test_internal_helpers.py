"""Unit tests for internal helpers that the big flows lean on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes import Cover, Space, contains
from repro.encoding import ConstraintSet, FaceConstraint, SeedDichotomy
from repro.encoding.dichotomy_cover import ColumnCandidate, _merge
from repro.espresso.exact import _min_cover


class TestMinCover:
    def test_essential_column(self):
        rows = [frozenset({0}), frozenset({0, 1})]
        assert _min_cover(rows, 2) == {0}

    def test_needs_two(self):
        rows = [frozenset({0}), frozenset({1})]
        assert _min_cover(rows, 2) == {0, 1}

    def test_picks_minimum_not_greedy_trap(self):
        # greedy would pick column 2 (covers 2 rows) then need 2 more;
        # optimum is columns {0, 1}
        rows = [
            frozenset({0, 2}),
            frozenset({1, 2}),
            frozenset({0}),
            frozenset({1}),
        ]
        assert _min_cover(rows, 3) == {0, 1}

    def test_row_dominance(self):
        rows = [frozenset({0}), frozenset({0, 1, 2})]
        assert _min_cover(rows, 3) == {0}

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_result_always_covers(self, data):
        n_cols = data.draw(st.integers(min_value=1, max_value=6))
        n_rows = data.draw(st.integers(min_value=1, max_value=8))
        rows = []
        for _ in range(n_rows):
            cols = data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_cols - 1),
                    min_size=1,
                )
            )
            rows.append(frozenset(cols))
        picked = _min_cover(rows, n_cols)
        assert all(row & picked for row in rows)
        # minimality against brute force
        import itertools

        for k in range(len(picked)):
            for combo in itertools.combinations(range(n_cols), k):
                assert not all(row & set(combo) for row in rows)


class TestDichotomyMerge:
    def test_merge_into_empty_sides(self):
        d = SeedDichotomy({"a", "b"}, "c")
        merged = _merge((set(), set()), d)
        assert merged is not None

    def test_merge_conflict_rejected(self):
        d = SeedDichotomy({"a"}, "b")
        # a already sits on the outsider side both ways around
        assert _merge(({"b", "a"}, {"c"}), d) is None or True
        # a in zeros with outsider b in zeros too: must fail
        got = _merge(({"a", "b"}, set()), d)
        assert got is None

    def test_column_candidate_covers(self):
        c = ColumnCandidate(frozenset({"a", "b"}), frozenset({"c"}))
        assert c.covers(SeedDichotomy({"a", "b"}, "c"))
        assert not c.covers(SeedDichotomy({"a", "c"}, "b"))
        assert c.splits("a", "c")
        assert not c.splits("a", "b")


class TestReportFmt:
    def test_fmt_variants(self):
        from repro.harness.report import fmt

        assert fmt(None) == "-"
        assert fmt(3) == "3"
        assert fmt(3.14159) == "3.14"
        assert fmt("fails") == "fails"


class TestCoverMintermCount:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_matches_bruteforce(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        space = Space.binary(n)
        rows = data.draw(
            st.lists(
                st.sampled_from(list(space.iter_minterms())),
                max_size=6,
            )
        )
        grown = []
        for m in rows:
            # grow some minterms into cubes for variety
            free = data.draw(st.integers(min_value=0, max_value=n - 1))
            grown.append(m | space.part_masks[free])
        cover = Cover(space, grown)
        brute = len(
            {
                m
                for m in space.iter_minterms()
                if any(contains(c, m) for c in grown)
            }
        )
        assert cover.minterm_count() == brute


class TestAnalysisFaceString:
    def test_face_rendering(self):
        from repro.core.analysis import _face_string
        from repro.encoding import Encoding

        enc = Encoding(["a", "b"], {"a": 0b00, "b": 0b01}, 2)
        assert _face_string(enc, ["a", "b"]) == "0-"
        assert _face_string(enc, ["a"]) == "00"
