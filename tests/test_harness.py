"""Tests for the experiment harness (tables, ablations, CLI)."""

import pytest

from repro.harness import (
    ABLATION_VARIANTS,
    render_table,
    run_ablation,
    run_table1,
    run_table2,
)
from repro.harness.cli import main


class TestRenderTable:
    def test_alignment_and_footer(self):
        out = render_table(
            ["name", "x"],
            [["a", 1], ["bb", 22]],
            title="T",
            footer=["tot", 23],
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "tot" in lines[-1]
        assert "23" in lines[-1]

    def test_none_rendering(self):
        out = render_table(["a", "b"], [["x", None]])
        assert "-" in out.splitlines()[-1]

    def test_float_rendering(self):
        out = render_table(["a", "b"], [["x", 1.234]])
        assert "1.23" in out


class TestTable1:
    def test_single_row(self):
        report = run_table1(["bbara"], include_enc=False)
        assert len(report.rows) == 1
        row = report.rows[0]
        assert row.fsm == "bbara"
        assert row.n_constraints > 0
        assert row.cubes_picola > 0
        assert row.cubes_nova > 0

    def test_enc_runs_on_small(self):
        report = run_table1(
            ["opus"], include_enc=True, enc_budget=4000
        )
        assert report.rows[0].cubes_enc is not None

    def test_render_contains_summary(self):
        report = run_table1(["bbara", "opus"], include_enc=False)
        text = report.render()
        assert "PICOLA wins" in text
        assert "NOVA overhead" in text
        assert "bbara" in text

    def test_statistics(self):
        report = run_table1(
            ["bbara", "opus", "lion9"], include_enc=False
        )
        assert (
            report.picola_wins + report.nova_wins + report.ties
            == len(report.rows)
        )


class TestTable2:
    def test_single_row(self):
        report = run_table2(["dk16"])
        row = report.rows[0]
        assert set(row.sizes) == {"nova_ih", "nova_ioh", "picola"}
        assert all(size > 0 for size in row.sizes.values())
        assert row.time_ratio("nova_ih") == pytest.approx(1.0)

    def test_render(self):
        report = run_table2(["dk16"])
        text = report.render()
        assert "dk16" in text
        assert "NEW total" in text


class TestAblation:
    def test_variants_exist(self):
        assert "full" in ABLATION_VARIANTS
        assert "no_guides" in ABLATION_VARIANTS

    def test_runs_subset(self):
        report = run_ablation(["bbara"], ["full", "no_guides"])
        assert report.cubes["bbara"]["full"] > 0
        assert "total" in report.render()


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "scf" in out
        assert "scaled from" in out

    def test_table1_quick_single(self, capsys):
        assert main(["table1", "--fsm", "opus", "--no-enc"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_table2_single(self, capsys):
        assert main(["table2", "--fsm", "dk16"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_ablation_single(self, capsys):
        assert main(["ablation", "--fsm", "opus"]) == 0
        assert "Ablation" in capsys.readouterr().out

    def test_encode_kiss_file(self, tmp_path, capsys):
        kiss = tmp_path / "toy.kiss2"
        kiss.write_text(
            ".i 1\n.o 1\n.r a\n0 a a 0\n1 a b 1\n- b a 0\n.e\n"
        )
        assert main(["encode", str(kiss)]) == 0
        out = capsys.readouterr().out
        assert "size=" in out

    def test_export_command(self, tmp_path, capsys):
        assert main([
            "export", "lion", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "lion.blif").exists()
        assert (tmp_path / "lion.v").exists()
        blif = (tmp_path / "lion.blif").read_text()
        assert blif.startswith(".model lion")

    def test_analyze_command(self, capsys):
        assert main(["analyze", "ex5"]) == 0
        out = capsys.readouterr().out
        assert "constraints" in out
        assert "estimated implementation" in out

    def test_motivation_command(self, capsys):
        assert main(["motivation", "lion9", "--extra-bits", "1"]) == 0
        out = capsys.readouterr().out
        assert "nv=" in out


class TestSerialize:
    def test_table1_json(self, tmp_path):
        import json

        from repro.harness import run_table1
        from repro.harness.serialize import to_dict, to_json

        report = run_table1(["opus"], include_enc=False)
        data = to_dict(report)
        assert data["experiment"] == "table1"
        assert data["rows"][0]["fsm"] == "opus"
        assert "picola_wins" in data["summary"]
        json.loads(to_json(report))  # valid JSON

    def test_table2_json(self):
        from repro.harness import run_table2
        from repro.harness.serialize import to_dict

        report = run_table2(["dk16"])
        data = to_dict(report)
        assert data["rows"][0]["sizes"]["picola"] > 0
        assert "totals" in data["summary"]

    def test_table2_totals_aggregate_all_ok_rows(self):
        """Regression: summary totals used to take the method set
        from only the *first* ok row, so methods that row lacked
        (degraded resume payloads, sharded slices) vanished from the
        totals even when later rows reported them."""
        from repro.harness.serialize import to_dict
        from repro.harness.table2 import Table2Report, Table2Row

        report = Table2Report(rows=[
            Table2Row(fsm="a", sizes={"nova_ih": 10}),
            Table2Row(
                fsm="b",
                sizes={"nova_ih": 5, "nova_ioh": 7, "picola": 4},
            ),
        ])
        totals = to_dict(report)["summary"]["totals"]
        assert totals == {"nova_ih": 15, "nova_ioh": 7, "picola": 4}

    def test_ablation_json(self):
        from repro.harness import run_ablation
        from repro.harness.serialize import to_dict

        report = run_ablation(["opus"], ["full"])
        data = to_dict(report)
        assert data["totals"]["full"] >= 0

    def test_unknown_type_rejected(self):
        import pytest as _pytest

        from repro.harness.serialize import to_dict

        with _pytest.raises(TypeError):
            to_dict(42)

    def test_cli_json_flag(self, tmp_path, capsys):
        out = tmp_path / "t1.json"
        assert main([
            "table1", "--fsm", "opus", "--no-enc",
            "--json", str(out),
        ]) == 0
        import json

        data = json.loads(out.read_text())
        assert data["experiment"] == "table1"


class TestSeedSweep:
    def test_single_seed_single_fsm(self):
        from repro.harness import run_seed_sweep

        report = run_seed_sweep(["opus"], seeds=(0, 1))
        assert len(report.outcomes) == 2
        assert report.outcomes[0].seed == 0
        text = report.render()
        assert "Seed sweep" in text
        assert "mean NOVA overhead" in text

    def test_stddev_zero_for_single_seed(self):
        from repro.harness import run_seed_sweep

        report = run_seed_sweep(["opus"], seeds=(3,))
        assert report.overhead_stddev() == 0.0

    def test_cli_sweep(self, capsys):
        assert main(["sweep", "--fsm", "opus", "--seeds", "0"]) == 0
        assert "Seed sweep" in capsys.readouterr().out
