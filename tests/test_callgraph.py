"""Tests for the whole-program call-graph builder (PR 9) and the
flow rules RPA010-RPA014 built on top of it."""

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import DEFAULT_RULES, Baseline, analyze, split_by_baseline
from repro.analysis.callgraph import LOCK, build_program
from repro.analysis.cli import _load_contexts, main as lint_main
from repro.analysis.engine import FileContext
from repro.analysis.flow import always_locked, thread_roots
from repro.analysis.rules import KERNEL_PACKAGES


def _program(files):
    """Build a Program straight from ``{path: source}`` (no disk)."""
    contexts = [
        FileContext(path, source, ast.parse(source))
        for path, source in sorted(files.items())
    ]
    return build_program(contexts)


def _callees(program, caller):
    return [
        site.callee
        for site in program.functions[caller].calls
        if site.callee is not None
    ]


def _tree(tmp_path, files):
    root = tmp_path / "repro"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def _lint(tmp_path, files):
    return analyze(_tree(tmp_path, files), DEFAULT_RULES())


UTIL = "def helper():\n    return 1\n"


class TestResolution:
    """Name resolution fixtures: the graph edges we promise to find."""

    def test_module_alias_import(self):
        program = _program({
            "repro/util.py": UTIL,
            "repro/a.py": (
                "from repro import util as u\n"
                "\n"
                "def f():\n"
                "    return u.helper()\n"
            ),
        })
        assert "repro.util.helper" in _callees(program, "repro.a.f")

    def test_import_module_as(self):
        program = _program({
            "repro/util.py": UTIL,
            "repro/a.py": (
                "import repro.util as ru\n"
                "\n"
                "def f():\n"
                "    return ru.helper()\n"
            ),
        })
        assert "repro.util.helper" in _callees(program, "repro.a.f")

    def test_from_import_function_alias(self):
        program = _program({
            "repro/util.py": UTIL,
            "repro/a.py": (
                "from repro.util import helper as h\n"
                "\n"
                "def g():\n"
                "    return h()\n"
            ),
        })
        assert "repro.util.helper" in _callees(program, "repro.a.g")

    def test_relative_import(self):
        program = _program({
            "repro/util.py": UTIL,
            "repro/a.py": (
                "from .util import helper\n"
                "\n"
                "def g():\n"
                "    return helper()\n"
            ),
        })
        assert "repro.util.helper" in _callees(program, "repro.a.g")

    def test_package_reexport(self):
        program = _program({
            "repro/pkg/__init__.py": "from .impl import helper\n",
            "repro/pkg/impl.py": UTIL,
            "repro/a.py": (
                "from repro.pkg import helper\n"
                "\n"
                "def g():\n"
                "    return helper()\n"
            ),
        })
        assert "repro.pkg.impl.helper" in _callees(program, "repro.a.g")

    def test_method_call_via_annotation(self):
        program = _program({
            "repro/model.py": (
                "class Model:\n"
                "    def fit(self):\n"
                "        return 0\n"
            ),
            "repro/use.py": (
                "from repro.model import Model\n"
                "\n"
                "def train(m: Model):\n"
                "    return m.fit()\n"
            ),
        })
        assert "repro.model.Model.fit" in _callees(
            program, "repro.use.train"
        )

    def test_method_call_via_ctor_inference(self):
        program = _program({
            "repro/model.py": (
                "class Model:\n"
                "    def fit(self):\n"
                "        return 0\n"
            ),
            "repro/use.py": (
                "from repro.model import Model\n"
                "\n"
                "def build():\n"
                "    m = Model()\n"
                "    return m.fit()\n"
            ),
        })
        assert "repro.model.Model.fit" in _callees(
            program, "repro.use.build"
        )

    def test_inherited_method_resolves_to_base(self):
        program = _program({
            "repro/model.py": (
                "class Model:\n"
                "    def fit(self):\n"
                "        return 0\n"
            ),
            "repro/sub.py": (
                "from repro.model import Model\n"
                "\n"
                "class Sub(Model):\n"
                "    pass\n"
                "\n"
                "def run(s: Sub):\n"
                "    return s.fit()\n"
            ),
        })
        assert "repro.model.Model.fit" in _callees(
            program, "repro.sub.run"
        )

    def test_self_and_super_calls(self):
        program = _program({
            "repro/m.py": (
                "class Base:\n"
                "    def step(self):\n"
                "        return 0\n"
                "\n"
                "class Child(Base):\n"
                "    def step(self):\n"
                "        return super().step()\n"
                "    def go(self):\n"
                "        return self.step()\n"
            ),
        })
        assert "repro.m.Base.step" in _callees(
            program, "repro.m.Child.step"
        )
        assert "repro.m.Child.step" in _callees(
            program, "repro.m.Child.go"
        )

    def test_plain_decorators_recorded(self):
        program = _program({
            "repro/d.py": (
                "def wrap(fn):\n"
                "    return fn\n"
                "\n"
                "@wrap\n"
                "def inner():\n"
                "    return 2\n"
                "\n"
                "@staticmethod\n"
                "def lonely():\n"
                "    return inner()\n"
            ),
        })
        assert program.functions["repro.d.inner"].decorators == ("wrap",)
        assert program.functions["repro.d.lonely"].decorators == (
            "staticmethod",
        )
        # decoration does not break edge extraction from the body
        assert "repro.d.inner" in _callees(program, "repro.d.lonely")

    def test_functools_partial_edge(self):
        program = _program({
            "repro/p.py": (
                "import functools\n"
                "\n"
                "def worker(x):\n"
                "    return x\n"
                "\n"
                "def submitter():\n"
                "    return functools.partial(worker, 1)\n"
            ),
        })
        partials = [
            site
            for site in program.functions["repro.p.submitter"].calls
            if site.partial
        ]
        assert [site.callee for site in partials] == ["repro.p.worker"]

    def test_bare_partial_import(self):
        program = _program({
            "repro/p.py": (
                "from functools import partial\n"
                "\n"
                "def worker(x):\n"
                "    return x\n"
                "\n"
                "def submitter():\n"
                "    return partial(worker)\n"
            ),
        })
        assert any(
            site.partial and site.callee == "repro.p.worker"
            for site in program.functions["repro.p.submitter"].calls
        )

    def test_unresolved_external_call_is_counted_not_guessed(self):
        program = _program({
            "repro/a.py": (
                "import os.path\n"
                "\n"
                "def f():\n"
                "    return os.path.join('a', 'b')\n"
            ),
        })
        (site,) = program.functions["repro.a.f"].calls
        assert site.callee is None
        assert program.to_dict()["unresolved_calls"] == 1

    def test_nested_function_addressable(self):
        program = _program({
            "repro/n.py": (
                "def outer():\n"
                "    def inner():\n"
                "        return 1\n"
                "    return inner()\n"
            ),
        })
        assert "repro.n.outer.inner" in _callees(program, "repro.n.outer")


class TestEscapeSummaries:
    """Lock tracking, thread roots, and the always-locked fixpoint."""

    def test_with_lock_depth_tracked(self):
        program = _program({
            "repro/m.py": (
                "import threading\n"
                "\n"
                "class C:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.n = 0\n"
                "    def locked(self):\n"
                "        with self._lock:\n"
                "            self.n += 1\n"
                "    def unlocked(self):\n"
                "        self.n += 1\n"
            ),
        })
        cls = program.classes["repro.m.C"]
        assert cls.attr_types["_lock"] == LOCK
        assert cls.has_lock_attr
        (locked,) = [
            s for s in cls.methods["locked"].mutations if s.name == "n"
        ]
        (unlocked,) = [
            s for s in cls.methods["unlocked"].mutations if s.name == "n"
        ]
        assert locked.lock_depth > 0
        assert unlocked.lock_depth == 0

    def test_thread_roots(self):
        program = _program({
            "repro/t.py": (
                "import threading\n"
                "\n"
                "class Pump(threading.Thread):\n"
                "    def run(self):\n"
                "        return 0\n"
                "\n"
                "def payload():\n"
                "    return 1\n"
                "\n"
                "def start():\n"
                "    threading.Thread(target=payload).start()\n"
            ),
        })
        roots = thread_roots(program)
        assert "repro.t.Pump.run" in roots
        assert "repro.t.payload" in roots
        assert "repro.t.start" not in roots

    def test_handler_do_methods_are_roots(self):
        program = _program({
            "repro/h.py": (
                "from http.server import BaseHTTPRequestHandler\n"
                "\n"
                "class H(BaseHTTPRequestHandler):\n"
                "    def do_GET(self):\n"
                "        return 0\n"
                "    def helper(self):\n"
                "        return 1\n"
            ),
        })
        roots = thread_roots(program)
        assert "repro.h.H.do_GET" in roots
        assert "repro.h.H.helper" not in roots

    def test_always_locked_helper(self):
        program = _program({
            "repro/m.py": (
                "import threading\n"
                "\n"
                "_LOCK = threading.Lock()\n"
                "\n"
                "def _bump(state):\n"
                "    state['n'] = 1\n"
                "\n"
                "def public(state):\n"
                "    with _LOCK:\n"
                "        _bump(state)\n"
            ),
        })
        locked = always_locked(program)
        assert "repro.m._bump" in locked
        assert "repro.m.public" not in locked


# sources shared by the determinism and --graph tests; unprefixed keys
# are written under a ``repro`` tree root by ``_tree``, prefixed ones
# feed ``_program`` directly — both name the modules ``repro.*``
GRAPH_SOURCES = {
    "util.py": UTIL,
    "a.py": (
        "from repro import util as u\n"
        "\n"
        "def f():\n"
        "    return u.helper()\n"
    ),
    "b.py": (
        "from repro.a import f\n"
        "\n"
        "def g():\n"
        "    return f() + 1\n"
    ),
}


class TestDeterminism:
    """Graph output is a pure function of the sources."""

    FILES = {f"repro/{rel}": src for rel, src in GRAPH_SOURCES.items()}

    def test_two_builds_byte_identical(self):
        first = json.dumps(
            _program(self.FILES).to_dict(), indent=2, sort_keys=True
        )
        second = json.dumps(
            _program(self.FILES).to_dict(), indent=2, sort_keys=True
        )
        assert first == second

    def test_real_tree_two_builds_byte_identical(self):
        root = Path(repro.__file__).parent / "analysis"
        first = build_program(_load_contexts([root])).to_dict()
        second = build_program(_load_contexts([root])).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_stable_across_hash_seeds(self):
        """The JSON dump must not depend on PYTHONHASHSEED."""
        root = Path(repro.__file__).parent / "analysis"
        src_dir = Path(repro.__file__).parent.parent
        code = (
            "import hashlib, json, sys\n"
            "from pathlib import Path\n"
            "from repro.analysis.cli import _load_contexts\n"
            "from repro.analysis.callgraph import build_program\n"
            "program = build_program(_load_contexts([Path(sys.argv[1])]))\n"
            "doc = json.dumps(program.to_dict(), indent=2, sort_keys=True)\n"
            "print(hashlib.sha256(doc.encode()).hexdigest())\n"
        )
        digests = set()
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(src_dir)
            proc = subprocess.run(
                [sys.executable, "-c", code, str(root)],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1


class TestSolverSelfCheck:
    """Every registry solver must reach at least one kernel loop."""

    @pytest.fixture(scope="class")
    def program(self):
        return build_program(
            _load_contexts([Path(repro.__file__).parent])
        )

    @pytest.mark.parametrize(
        "solver",
        ["PicolaSolver", "ExactSolver", "NovaSolver",
         "MustangSolver", "EncSolver"],
    )
    def test_solver_reaches_kernel_loop(self, program, solver):
        root = f"repro.solvers.{solver}._run"
        assert root in program.functions
        closure = program.reachable([root])
        looped = [
            qual
            for qual in closure
            if any(
                program.functions[qual].path.startswith(pkg)
                for pkg in KERNEL_PACKAGES
            )
            and any(
                isinstance(node, (ast.For, ast.While))
                for node in ast.walk(program.functions[qual].node)
            )
        ]
        assert looped, f"{root} reaches no kernel loop"

    def test_graph_covers_whole_package(self, program):
        doc = program.to_dict()
        assert len(doc["modules"]) > 50
        assert len(doc["edges"]) > 500


THREADED_GLOBAL_BAD = (
    "import threading\n"
    "\n"
    "COUNTS = {}\n"
    "\n"
    "def payload():\n"
    "    COUNTS['n'] = COUNTS.get('n', 0) + 1\n"
    "\n"
    "def start():\n"
    "    threading.Thread(target=payload).start()\n"
)

THREADED_GLOBAL_GOOD = (
    "import threading\n"
    "\n"
    "COUNTS = {}\n"
    "_LOCK = threading.Lock()\n"
    "\n"
    "def payload():\n"
    "    with _LOCK:\n"
    "        COUNTS['n'] = COUNTS.get('n', 0) + 1\n"
    "\n"
    "def start():\n"
    "    threading.Thread(target=payload).start()\n"
)

LOCK_OWNER_BAD = (
    "import threading\n"
    "\n"
    "class Stats:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.total = 0\n"
    "    def bump(self):\n"
    "        self.total += 1\n"
)

LOCK_OWNER_GOOD = (
    "import threading\n"
    "\n"
    "class Stats:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.total = 0\n"
    "    def bump(self):\n"
    "        with self._lock:\n"
    "            self.total += 1\n"
)


class TestSharedStateRule:
    """RPA010 fixtures."""

    def test_unlocked_global_on_thread_path(self, tmp_path):
        report = _lint(tmp_path, {"svc/m.py": THREADED_GLOBAL_BAD})
        (finding,) = report.findings_for("RPA010")
        assert "COUNTS" in finding.message

    def test_locked_global_is_clean(self, tmp_path):
        report = _lint(tmp_path, {"svc/m.py": THREADED_GLOBAL_GOOD})
        assert report.findings_for("RPA010") == []

    def test_global_off_thread_path_is_clean(self, tmp_path):
        source = (
            "COUNTS = {}\n"
            "\n"
            "def payload():\n"
            "    COUNTS['n'] = 1\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        assert report.findings_for("RPA010") == []

    def test_lock_owner_unlocked_mutation(self, tmp_path):
        report = _lint(tmp_path, {"svc/m.py": LOCK_OWNER_BAD})
        (finding,) = report.findings_for("RPA010")
        assert "self.total" in finding.message

    def test_lock_owner_guarded_mutation_clean(self, tmp_path):
        report = _lint(tmp_path, {"svc/m.py": LOCK_OWNER_GOOD})
        assert report.findings_for("RPA010") == []

    def test_lock_owner_init_exempt(self, tmp_path):
        # __init__ happens-before sharing: only bump() may be flagged
        report = _lint(tmp_path, {"svc/m.py": LOCK_OWNER_BAD})
        (finding,) = report.findings_for("RPA010")
        assert "bump" in finding.message

    def test_helper_called_only_under_lock_is_clean(self, tmp_path):
        source = (
            "import threading\n"
            "\n"
            "class Stats:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.total = 0\n"
            "    def _bump_locked(self):\n"
            "        self.total += 1\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        assert report.findings_for("RPA010") == []

    def test_lockless_class_on_thread_path(self, tmp_path):
        source = (
            "import threading\n"
            "\n"
            "class Meter:\n"
            "    def __init__(self):\n"
            "        self.counts = {}\n"
            "    def bump(self, key):\n"
            "        self.counts[key] = self.counts.get(key, 0) + 1\n"
            "\n"
            "def start(m: Meter):\n"
            "    threading.Thread(target=m.bump).start()\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        (finding,) = report.findings_for("RPA010")
        assert "Meter" in finding.message and "counts" in finding.message


class TestForkCaptureRule:
    """RPA011 fixtures."""

    def test_lock_holder_captured_into_submit(self, tmp_path):
        source = (
            "import threading\n"
            "\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "def work(h):\n"
            "    return h\n"
            "\n"
            "def feed(pool):\n"
            "    h = Holder()\n"
            "    pool.submit(work, h)\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        (finding,) = report.findings_for("RPA011")
        assert "lock" in finding.message

    def test_plain_data_capture_is_clean(self, tmp_path):
        source = (
            "def work(payload):\n"
            "    return payload\n"
            "\n"
            "def feed(pool):\n"
            "    pool.submit(work, {'n': 1})\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        assert report.findings_for("RPA011") == []

    def test_transitive_resource_through_attribute(self, tmp_path):
        source = (
            "class Sink:\n"
            "    def __init__(self):\n"
            "        self.fh = open('x')\n"
            "\n"
            "class Wrapper:\n"
            "    def __init__(self, sink: Sink):\n"
            "        self.sink = sink\n"
            "\n"
            "def work(w):\n"
            "    return w\n"
            "\n"
            "def feed(pool, w: Wrapper):\n"
            "    pool.submit(work, w)\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        (finding,) = report.findings_for("RPA011")
        assert "file" in finding.message


class TestBudgetFlowRule:
    """RPA012 fixtures (solver fixture shadows repro.solvers)."""

    BAD = (
        "class Solver:\n"
        "    def solve(self, cset, budget=None):\n"
        "        return run_kernel(cset, budget)\n"
        "\n"
        "def run_kernel(cset, budget=None):\n"
        "    return helper(cset)\n"
        "\n"
        "def helper(cset, budget=None):\n"
        "    return cset\n"
    )

    GOOD = (
        "class Solver:\n"
        "    def solve(self, cset, budget=None):\n"
        "        return run_kernel(cset, budget)\n"
        "\n"
        "def run_kernel(cset, budget=None):\n"
        "    return helper(cset, budget=budget)\n"
        "\n"
        "def helper(cset, budget=None):\n"
        "    return cset\n"
    )

    def test_dropped_budget_hop(self, tmp_path):
        report = _lint(tmp_path, {"solvers.py": self.BAD})
        (finding,) = report.findings_for("RPA012")
        assert "helper" in finding.message

    def test_forwarded_budget_is_clean(self, tmp_path):
        report = _lint(tmp_path, {"solvers.py": self.GOOD})
        assert report.findings_for("RPA012") == []

    def test_off_solver_path_not_flagged(self, tmp_path):
        source = (
            "def run_kernel(cset, budget=None):\n"
            "    return helper(cset)\n"
            "\n"
            "def helper(cset, budget=None):\n"
            "    return cset\n"
        )
        report = _lint(tmp_path, {"solvers.py": source})
        assert report.findings_for("RPA012") == []


class TestCacheCoherenceRule:
    """RPA013 fixtures."""

    HEAD = (
        "class Cover:\n"
        "    def __init__(self):\n"
        "        self.cubes = []\n"
        "        self._canon = None\n"
        "    def _invalidate(self):\n"
        "        self._canon = None\n"
    )

    def test_mutator_without_invalidation(self, tmp_path):
        source = self.HEAD + (
            "    def add(self, cube):\n"
            "        self.cubes += [cube]\n"
        )
        report = _lint(tmp_path, {"cubes/m.py": source})
        (finding,) = report.findings_for("RPA013")
        assert "_invalidate" in finding.message

    def test_conditional_invalidation_flagged(self, tmp_path):
        source = self.HEAD + (
            "    def add(self, cube):\n"
            "        self.cubes += [cube]\n"
            "        if cube:\n"
            "            self._invalidate()\n"
        )
        report = _lint(tmp_path, {"cubes/m.py": source})
        (finding,) = report.findings_for("RPA013")
        assert "conditionally" in finding.message

    def test_unconditional_invalidation_clean(self, tmp_path):
        source = self.HEAD + (
            "    def add(self, cube):\n"
            "        self.cubes += [cube]\n"
            "        self._invalidate()\n"
        )
        report = _lint(tmp_path, {"cubes/m.py": source})
        assert report.findings_for("RPA013") == []

    def test_finally_invalidation_clean(self, tmp_path):
        source = self.HEAD + (
            "    def add(self, cube):\n"
            "        try:\n"
            "            self.cubes += [cube]\n"
            "        finally:\n"
            "            self._invalidate()\n"
        )
        report = _lint(tmp_path, {"cubes/m.py": source})
        assert report.findings_for("RPA013") == []

    def test_inline_none_reset_clean(self, tmp_path):
        source = self.HEAD + (
            "    def add(self, cube):\n"
            "        self.cubes += [cube]\n"
            "        self._canon = None\n"
        )
        report = _lint(tmp_path, {"cubes/m.py": source})
        assert report.findings_for("RPA013") == []


class TestLockBlockingRule:
    """RPA014 fixtures."""

    def test_unbounded_get_under_lock(self, tmp_path):
        source = (
            "import queue\n"
            "import threading\n"
            "\n"
            "_LOCK = threading.Lock()\n"
            "_Q = queue.Queue()\n"
            "\n"
            "def drain():\n"
            "    with _LOCK:\n"
            "        return _Q.get()\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        (finding,) = report.findings_for("RPA014")
        assert "queue.get" in finding.message

    def test_get_with_timeout_clean(self, tmp_path):
        source = (
            "import queue\n"
            "import threading\n"
            "\n"
            "_LOCK = threading.Lock()\n"
            "_Q = queue.Queue()\n"
            "\n"
            "def drain():\n"
            "    with _LOCK:\n"
            "        return _Q.get(timeout=1.0)\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        assert report.findings_for("RPA014") == []

    def test_blocking_call_outside_lock_clean(self, tmp_path):
        source = (
            "import queue\n"
            "\n"
            "_Q = queue.Queue()\n"
            "\n"
            "def drain():\n"
            "    return _Q.get()\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        assert report.findings_for("RPA014") == []

    def test_transitive_blocking_call_under_lock(self, tmp_path):
        source = (
            "import queue\n"
            "import threading\n"
            "\n"
            "_LOCK = threading.Lock()\n"
            "_Q = queue.Queue()\n"
            "\n"
            "def fetch():\n"
            "    return _Q.get()\n"
            "\n"
            "def locked_fetch():\n"
            "    with _LOCK:\n"
            "        return fetch()\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        findings = report.findings_for("RPA014")
        assert any("locked_fetch" in f.message for f in findings)

    def test_thread_join_under_lock(self, tmp_path):
        source = (
            "import threading\n"
            "\n"
            "_LOCK = threading.Lock()\n"
            "\n"
            "def stop(worker: threading.Thread):\n"
            "    with _LOCK:\n"
            "        worker.join()\n"
        )
        report = _lint(tmp_path, {"svc/m.py": source})
        (finding,) = report.findings_for("RPA014")
        assert "join" in finding.message


class TestFlowCliIntegration:
    """--no-flow, --graph, --jobs, --format github, move tracking."""

    def test_no_flow_disables_flow_rules(self, tmp_path, capsys):
        root = _tree(tmp_path, {"svc/m.py": LOCK_OWNER_BAD})
        assert lint_main([str(root)]) == 1
        assert "RPA010" in capsys.readouterr().out
        assert lint_main([str(root), "--no-flow"]) == 0
        assert "RPA010" not in capsys.readouterr().out

    def test_dormant_flow_noqa_not_unused_under_no_flow(
        self, tmp_path
    ):
        # a noqa naming only flow rules is dormant under --no-flow,
        # not stale: --strict must keep passing
        suppressed = LOCK_OWNER_BAD.replace(
            "self.total += 1",
            "self.total += 1  # repro: noqa[RPA010] -- test fixture",
        )
        root = _tree(tmp_path, {"svc/m.py": suppressed})
        assert lint_main([str(root), "--strict"]) == 0
        assert lint_main([str(root), "--strict", "--no-flow"]) == 0
        # but with the rule active and the finding gone, the same
        # comment is genuinely unused and fails strict
        report = analyze(root, DEFAULT_RULES(flow=False))
        assert report.unused_suppressions == []

    def test_same_line_noqa_suppresses_flow_finding(self, tmp_path):
        suppressed = LOCK_OWNER_BAD.replace(
            "self.total += 1",
            "self.total += 1  # repro: noqa[RPA010] -- test fixture",
        )
        report = _lint(tmp_path, {"svc/m.py": suppressed})
        assert report.findings_for("RPA010") == []
        assert any(
            f.rule == "RPA010" for f, _ in report.suppressed
        )

    def test_graph_json_dump(self, tmp_path, capsys):
        root = _tree(tmp_path, GRAPH_SOURCES)
        assert lint_main([str(root), "--graph", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {
            "modules", "functions", "classes", "edges",
            "unresolved_calls",
        }
        edges = {
            (e["caller"], e["callee"]) for e in doc["edges"]
        }
        assert ("repro.a.f", "repro.util.helper") in edges
        assert ("repro.b.g", "repro.a.f") in edges

    def test_graph_text_dump(self, tmp_path, capsys):
        root = _tree(tmp_path, GRAPH_SOURCES)
        assert lint_main([str(root), "--graph", "text"]) == 0
        out = capsys.readouterr().out
        assert "repro.a.f" in out and "-> repro.util.helper" in out

    def test_jobs_byte_identical_to_serial(self, tmp_path, capsys):
        root = _tree(
            tmp_path,
            {
                "svc/m.py": LOCK_OWNER_BAD,
                "fsm/m.py": "raise ValueError('x')\n",
                "core/ok.py": "X = 1\n",
            },
        )
        lint_main([str(root), "--json"])
        serial = capsys.readouterr().out
        lint_main([str(root), "--json", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert parallel == serial
        assert json.loads(serial)["findings"]

    def test_github_format(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = _tree(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})
        assert lint_main(
            ["repro", "--format", "github"]
        ) == 1
        out = capsys.readouterr().out
        assert (
            "::error file=repro/fsm/m.py,line=1,col=1,"
            "title=RPA004::" in out
        )
        assert out.rstrip().splitlines()[-1].endswith("1 finding")

    def test_github_format_prefix(self, tmp_path, capsys):
        root = _tree(tmp_path, {"fsm/m.py": "raise ValueError('x')\n"})
        assert lint_main(
            [str(root), "--format", "github", "--github-prefix", "src/"]
        ) == 1
        assert "::error file=src/repro/fsm/m.py," in capsys.readouterr().out

    def test_github_format_escapes_message(self, tmp_path, capsys):
        # a message containing % or newlines must not break the
        # workflow-command framing
        from repro.analysis.engine import AnalysisReport, Finding
        from repro.analysis.report import LintResult, render_github

        finding = Finding(
            rule="RPA999",
            path="repro/x.py",
            line=1,
            col=1,
            message="100% bad\nsecond line",
            snippet="X = 1",
        )
        text = render_github(
            LintResult(
                report=AnalysisReport(
                    findings=[finding], files_checked=1
                ),
                new_findings=[finding],
                baselined=[],
            )
        )
        (command,) = [
            line for line in text.splitlines()
            if line.startswith("::error")
        ]
        assert "\n" not in command
        assert "100%25 bad%0Asecond line" in command

    def test_baseline_tracks_file_move(self, tmp_path):
        report = _lint(tmp_path, {"fsm/old.py": "raise ValueError('x')\n"})
        baseline = Baseline.from_findings(report.findings)
        moved = analyze(
            _tree(
                tmp_path / "after",
                {"fsm/relocated.py": "raise ValueError('x')\n"},
            ),
            DEFAULT_RULES(),
        )
        new, matched, stale = split_by_baseline(
            moved.findings, baseline
        )
        assert new == [] and stale == []
        assert len(matched) == 1

    def test_baseline_move_tracking_requires_unique_pair(self, tmp_path):
        # two identical findings moving at once cannot be paired
        # unambiguously; they surface as new + stale, not mismatched
        report = _lint(
            tmp_path,
            {
                "fsm/a.py": "raise ValueError('x')\n",
                "fsm/b.py": "raise ValueError('x')\n",
            },
        )
        baseline = Baseline.from_findings(report.findings)
        moved = analyze(
            _tree(
                tmp_path / "after",
                {
                    "fsm/c.py": "raise ValueError('x')\n",
                    "fsm/d.py": "raise ValueError('x')\n",
                },
            ),
            DEFAULT_RULES(),
        )
        new, matched, stale = split_by_baseline(
            moved.findings, baseline
        )
        assert len(new) == 2 and len(stale) == 2 and matched == []
