"""End-to-end fault injection: degraded cells, isolated failures,
checkpoint/resume.

These tests force failures at the instrumented sites (see
``repro.runtime.faults``) and assert the ISSUE-level guarantees: one
failing benchmark never takes down an experiment, the report still
renders and serializes, and a killed run resumes from the last
completed benchmark.
"""

import json

import pytest

from repro.harness.ablation import run_ablation
from repro.harness.cli import main
from repro.harness.serialize import to_json
from repro.harness.sweep import run_seed_sweep
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2
from repro.runtime import (
    BudgetExceeded,
    Checkpoint,
    ReproError,
    SolverTimeout,
    faults,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


class TestTable1Degradation:
    def test_enc_timeout_marks_cell_not_row(self):
        """A SolverTimeout inside ENC degrades one cell; the row's
        PICOLA/NOVA comparison and the other rows are untouched."""
        with faults.inject("enc.minimize", SolverTimeout):
            report = run_table1(
                ["lion9", "ex3"], include_enc=True, enc_budget=2000
            )
        assert [r.fsm for r in report.rows] == ["lion9", "ex3"]
        assert all(r.ok for r in report.rows)
        assert report.n_failed == 0
        hit, clean = report.rows
        assert hit.enc_status == "timeout"
        assert hit.cubes_enc is None
        assert hit.cubes_picola is not None  # comparison survived
        assert clean.enc_status is None
        assert "TIMEOUT" in report.render()
        # partial report serializes
        data = json.loads(to_json(report))
        assert data["rows"][0]["enc_status"] == "timeout"
        assert data["summary"]["failed"] == 0

    def test_row_timeout_isolated(self):
        with faults.inject("table1.row", SolverTimeout, key="ex3"):
            report = run_table1(["lion9", "ex3"], include_enc=False)
        assert report.n_failed == 1
        lion9, ex3 = report.rows
        assert lion9.ok and lion9.cubes_picola is not None
        assert ex3.status == "timeout"
        assert "FAILED (timeout)" in report.render()
        # summary statistics only aggregate the surviving rows
        assert (
            report.picola_wins + report.nova_wins + report.ties == 1
        )
        data = json.loads(to_json(report))
        assert data["rows"][1]["status"] == "timeout"
        assert data["summary"]["failed"] == 1

    def test_row_crash_isolated(self):
        with faults.inject(
            "table1.row", ReproError("synthetic crash"), key="lion9"
        ):
            report = run_table1(["lion9", "ex3"], include_enc=False)
        assert report.rows[0].status == "failed"
        assert "synthetic crash" in report.rows[0].error
        assert report.rows[1].ok
        assert "FAILED (ReproError)" in report.render()


class TestTable2Degradation:
    def test_row_failure_renders_and_serializes(self):
        with faults.inject("table2.row", SolverTimeout, key="dk16"):
            report = run_table2(["dk16"])
        assert report.n_failed == 1
        assert report.rows[0].status == "timeout"
        assert "FAILED (timeout)" in report.render()
        data = json.loads(to_json(report))
        assert data["rows"][0]["status"] == "timeout"
        assert data["summary"]["failed"] == 1


class TestAblationDegradation:
    def test_exact_budget_degrades_cell(self):
        """BudgetExceeded in exact_encode marks the exact cell BUDGET;
        the PICOLA variants of the same FSM still report numbers."""
        with faults.inject("exact.node", BudgetExceeded):
            report = run_ablation(
                ["lion9"], ["full"], include_exact=True
            )
        assert report.n_failed == 0
        assert report.cubes["lion9"]["full"] is not None
        assert report.cubes["lion9"]["exact"] is None
        assert report.cell_status["lion9"]["exact"] == "budget"
        assert "BUDGET" in report.render()
        data = json.loads(to_json(report))
        assert data["cell_status"]["lion9"]["exact"] == "budget"
        # totals skip the degraded cell instead of crashing on None
        assert data["totals"]["exact"] == 0

    def test_whole_fsm_failure_isolated(self):
        with faults.inject(
            "ablation.fsm", ReproError, key="lion9"
        ):
            report = run_ablation(["lion9", "ex3"], ["full"])
        assert report.failures == {"lion9": "ReproError"}
        assert report.cubes["ex3"]["full"] is not None
        assert "FAILED (ReproError)" in report.render()
        json.loads(to_json(report))


class TestSweepDegradation:
    def test_cell_failure_excluded_from_totals(self):
        with faults.inject(
            "sweep.benchmark", SolverTimeout, key="0/ex3"
        ):
            report = run_seed_sweep(["lion9", "ex3"], seeds=(0,))
        assert report.failures == {(0, "ex3"): "timeout"}
        assert len(report.outcomes) == 1
        assert report.outcomes[0].total_picola > 0
        assert "failed" in report.render()
        data = json.loads(to_json(report))
        assert data["failures"] == {"0/ex3": "timeout"}

    def test_seed_with_no_completed_cells_is_excluded(self):
        """A seed every one of whose cells failed must not appear as
        an all-zero outcome row: that row's fake 0.0 nova_overhead
        would drag mean_overhead() toward zero and inflate
        overhead_stddev()."""
        with faults.inject(
            "sweep.benchmark", SolverTimeout, key="0/lion9"
        ), faults.inject(
            "sweep.benchmark", SolverTimeout, key="0/ex3"
        ):
            report = run_seed_sweep(["lion9", "ex3"], seeds=(0, 1))
        # seed 0 lost both cells; seed 1 completed normally
        assert report.skipped_seeds == [0]
        assert [o.seed for o in report.outcomes] == [1]
        assert len(report.failures) == 2
        good = report.outcomes[0].nova_overhead
        assert report.mean_overhead() == pytest.approx(good)
        assert report.overhead_stddev() == 0.0  # one sample, no spread
        assert "excluded from the aggregate" in report.render()
        data = json.loads(to_json(report))
        assert data["skipped_seeds"] == [0]
        assert data["summary"]["skipped_seeds"] == 1


class TestCheckpointResume:
    def test_table1_resume_skips_completed_rows(self, tmp_path):
        ckpt_path = tmp_path / "table1.ckpt"
        first = run_table1(
            ["lion9"], include_enc=False, checkpoint=ckpt_path
        )
        assert Checkpoint(ckpt_path).is_done("lion9")

        # a fault armed on the completed row must never fire: resume
        # loads it from the checkpoint instead of recomputing
        with faults.inject(
            "table1.row", SolverTimeout, key="lion9"
        ) as fault:
            second = run_table1(
                ["lion9", "ex3"], include_enc=False,
                checkpoint=ckpt_path,
            )
            assert fault.fired == 0
        assert all(r.ok for r in second.rows)
        assert (
            second.rows[0].cubes_picola == first.rows[0].cubes_picola
        )

    def test_table1_failed_rows_checkpoint_with_status(self, tmp_path):
        """Failures are checkpointed too: a deterministically failing
        benchmark is not re-run on every --resume."""
        ckpt_path = tmp_path / "table1.ckpt"
        with faults.inject("table1.row", SolverTimeout, key="ex3"):
            report = run_table1(
                ["lion9", "ex3"], include_enc=False,
                checkpoint=ckpt_path,
            )
        assert report.n_failed == 1
        ckpt = Checkpoint(ckpt_path)
        assert ckpt.is_done("lion9")
        assert ckpt.is_done("ex3")
        assert ckpt.get("ex3")["status"] == "timeout"

        # plain resume restores the recorded failure without re-running
        with faults.inject("table1.row", SolverTimeout) as fault:
            resumed = run_table1(
                ["lion9", "ex3"], include_enc=False,
                checkpoint=ckpt_path,
            )
            assert fault.fired == 0
        assert resumed.n_failed == 1
        assert resumed.rows[1].status == "timeout"
        assert "FAILED (timeout)" in resumed.render()

    def test_table1_retry_failed_reruns_only_failures(self, tmp_path):
        ckpt_path = tmp_path / "table1.ckpt"
        with faults.inject("table1.row", SolverTimeout, key="ex3"):
            run_table1(
                ["lion9", "ex3"], include_enc=False,
                checkpoint=ckpt_path,
            )
        # retry_failed re-runs ex3 (fault no longer armed -> succeeds)
        # but must not touch the completed lion9 row
        with faults.inject(
            "table1.row", SolverTimeout, key="lion9"
        ) as fault:
            retried = run_table1(
                ["lion9", "ex3"], include_enc=False,
                checkpoint=ckpt_path, retry_failed=True,
            )
            assert fault.fired == 0
        assert retried.n_failed == 0
        assert all(r.ok for r in retried.rows)
        assert Checkpoint(ckpt_path).get("ex3")["status"] == "ok"

    def test_sweep_failed_cells_checkpoint_and_resume(self, tmp_path):
        ckpt_path = tmp_path / "sweep.ckpt"
        with faults.inject(
            "sweep.benchmark", SolverTimeout, key="0/ex3"
        ):
            run_seed_sweep(
                ["lion9", "ex3"], seeds=(0,), checkpoint=ckpt_path
            )
        ckpt = Checkpoint(ckpt_path)
        assert ckpt.is_done("0/ex3")
        assert ckpt.get("0/ex3")["status"] == "timeout"

        with faults.inject("sweep.benchmark", SolverTimeout) as fault:
            resumed = run_seed_sweep(
                ["lion9", "ex3"], seeds=(0,), checkpoint=ckpt_path
            )
            assert fault.fired == 0  # nothing re-ran
        assert resumed.failures == {(0, "ex3"): "timeout"}

        retried = run_seed_sweep(
            ["lion9", "ex3"], seeds=(0,), checkpoint=ckpt_path,
            retry_failed=True,
        )
        assert retried.failures == {}
        assert Checkpoint(ckpt_path).get("0/ex3")["picola"] > 0

    def test_ablation_failed_fsm_checkpoints_and_resumes(self, tmp_path):
        ckpt_path = tmp_path / "abl.ckpt"
        with faults.inject("ablation.fsm", ReproError, key="lion9"):
            run_ablation(
                ["lion9", "ex3"], ["full"], checkpoint=ckpt_path
            )
        ckpt = Checkpoint(ckpt_path)
        assert ckpt.is_done("lion9")
        assert ckpt.get("lion9")["status"] == "failed"

        with faults.inject("ablation.fsm", ReproError) as fault:
            resumed = run_ablation(
                ["lion9", "ex3"], ["full"], checkpoint=ckpt_path
            )
            assert fault.fired == 0
        assert resumed.failures == {"lion9": "ReproError"}
        assert resumed.cubes["ex3"]["full"] is not None

        retried = run_ablation(
            ["lion9", "ex3"], ["full"], checkpoint=ckpt_path,
            retry_failed=True,
        )
        assert retried.failures == {}
        assert retried.cubes["lion9"]["full"] is not None

    def test_sweep_kill_and_resume(self, tmp_path):
        """Kill a sweep mid-run (KeyboardInterrupt propagates through
        the fault boundary), then resume from the checkpoint."""
        ckpt_path = tmp_path / "sweep.ckpt"
        with faults.inject(
            "sweep.benchmark", KeyboardInterrupt, key="0/ex3"
        ):
            with pytest.raises(KeyboardInterrupt):
                run_seed_sweep(
                    ["lion9", "ex3"], seeds=(0,),
                    checkpoint=ckpt_path,
                )
        killed = Checkpoint(ckpt_path)
        assert killed.is_done("0/lion9")
        assert not killed.is_done("0/ex3")

        with faults.inject(
            "sweep.benchmark", SolverTimeout, key="0/lion9"
        ) as fault:
            report = run_seed_sweep(
                ["lion9", "ex3"], seeds=(0,), checkpoint=ckpt_path
            )
            assert fault.fired == 0  # completed cell was skipped
        assert report.n_failed == 0
        assert report.outcomes[0].total_picola > 0
        assert Checkpoint(ckpt_path).is_done("0/ex3")

    def test_experiment_tag_guards_against_mixups(self, tmp_path):
        ckpt_path = tmp_path / "run.ckpt"
        run_table1(["lion9"], include_enc=False, checkpoint=ckpt_path)
        from repro.runtime import CheckpointError

        with pytest.raises(CheckpointError):
            run_table2(["dk16"], checkpoint=ckpt_path)


class TestCliAcceptance:
    def test_forced_timeout_yields_complete_table_and_json(
        self, tmp_path, capsys
    ):
        """The ISSUE acceptance criterion: a forced timeout in one
        benchmark produces a complete table with one FAILED (timeout)
        row, valid --json output, and an informative exit code."""
        json_path = tmp_path / "table1.json"
        with faults.inject("table1.row", SolverTimeout, key="ex3"):
            rc = main([
                "table1", "--fsm", "lion9", "ex3", "--no-enc",
                "--json", str(json_path),
            ])
        assert rc == 1  # completed, but with failed rows
        out = capsys.readouterr().out
        assert "FAILED (timeout)" in out
        assert "lion9" in out  # the rest of the table is present
        data = json.loads(json_path.read_text())
        assert len(data["rows"]) == 2
        statuses = {r["fsm"]: r["status"] for r in data["rows"]}
        assert statuses == {"lion9": "ok", "ex3": "timeout"}

    def test_env_var_fault_injection(self, monkeypatch, capsys):
        monkeypatch.setenv(
            "REPRO_FAULTS", "table1.row@lion9=timeout"
        )
        rc = main(["table1", "--fsm", "lion9", "--no-enc"])
        assert rc == 1
        assert "FAILED (timeout)" in capsys.readouterr().out

    def test_resume_flag_skips_completed(self, tmp_path, capsys):
        ckpt_path = tmp_path / "resume.ckpt"
        assert main([
            "table1", "--fsm", "lion9", "--no-enc",
            "--resume", str(ckpt_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "table1", "--fsm", "lion9", "--no-enc",
            "--resume", str(ckpt_path),
        ]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out

    def test_timeout_flag_accepted(self, capsys):
        assert main([
            "table1", "--fsm", "lion9", "--no-enc",
            "--timeout", "60",
        ]) == 0
        assert "lion9" in capsys.readouterr().out


class TestInstallFromEnvErrors:
    """Malformed REPRO_FAULTS must die classified, never as a trace."""

    @pytest.mark.parametrize("spec,fragment", [
        ("x", "bad fault spec"),
        ("=timeout", "empty site"),
        ("x=nope", "bad fault kind"),
        ("x=timeout:zz", "bad fault count"),
        ("x=timeout:0", "must be >= 1"),
        ("x=timeout:-3", "must be >= 1"),
    ])
    def test_malformed_specs_raise_parse_error(
        self, monkeypatch, spec, fragment
    ):
        from repro.runtime import ParseError
        from repro.runtime.faults import install_from_env

        monkeypatch.setenv("REPRO_FAULTS", spec)
        with pytest.raises(ParseError, match=fragment):
            install_from_env()
        # single-entry specs fail before anything is armed
        assert not faults.active()

    def test_malformed_spec_exits_2_via_cli(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "x=timeout:0")
        assert main(["bench-list"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("picola: error:")
        assert "\n" == err[err.index("\n"):]  # a single line

    def test_empty_and_unset_are_noops(self, monkeypatch):
        from repro.runtime.faults import install_from_env

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert install_from_env() == []
        monkeypatch.setenv("REPRO_FAULTS", "  ")
        assert install_from_env() == []
        monkeypatch.setenv("REPRO_FAULTS", " , ,")
        assert install_from_env() == []

    def test_valid_spec_arms(self, monkeypatch):
        from repro.runtime.faults import install_from_env

        monkeypatch.setenv(
            "REPRO_FAULTS", "a.site@key1=timeout:2, b.site=error"
        )
        installed = install_from_env()
        assert len(installed) == 2
        assert installed[0].site == "a.site"
        assert installed[0].key == "key1"
        assert installed[0].after == 2
        assert installed[1].site == "b.site"
        assert installed[1].key is None

    def test_arm_rejects_bad_after_classified(self):
        from repro.runtime import InvalidSpecError

        with pytest.raises(InvalidSpecError):
            faults.arm("x", SolverTimeout, after=0)
        # still a ValueError for pre-taxonomy callers
        with pytest.raises(ValueError):
            faults.arm("x", SolverTimeout, after=-1)

    def test_arm_rejects_empty_site(self):
        from repro.runtime import InvalidSpecError

        with pytest.raises(InvalidSpecError, match="non-empty"):
            faults.arm("", SolverTimeout)
