"""Hypothesis round-trip properties for the file formats and codecs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes import Space
from repro.encoding import Encoding
from repro.espresso import Pla, format_pla, parse_pla
from repro.fsm import format_kiss, parse_kiss, synthesize_fsm


@st.composite
def machines(draw):
    n_in = draw(st.integers(min_value=1, max_value=3))
    n_out = draw(st.integers(min_value=1, max_value=3))
    n_states = draw(st.integers(min_value=2, max_value=8))
    n_terms = draw(st.integers(min_value=n_states, max_value=3 * n_states))
    seed = draw(st.integers(min_value=0, max_value=50))
    return synthesize_fsm("hyp", n_in, n_out, n_states, n_terms, seed)


class TestKissRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(machines())
    def test_parse_format_identity(self, fsm):
        again = parse_kiss(format_kiss(fsm), name=fsm.name)
        assert again.transitions == fsm.transitions
        assert again.reset_state == fsm.reset_state
        assert again.n_states == fsm.n_states


@st.composite
def plas(draw):
    n_in = draw(st.integers(min_value=1, max_value=4))
    n_out = draw(st.integers(min_value=1, max_value=3))
    pla = Pla(n_in, n_out)
    space = pla.space
    n_cubes = draw(st.integers(min_value=0, max_value=6))
    for _ in range(n_cubes):
        fields = [
            draw(st.integers(min_value=1, max_value=3))
            for _ in range(n_in)
        ]
        fields.append(
            draw(st.integers(min_value=1, max_value=(1 << n_out) - 1))
        )
        pla.onset.append(space.make_cube(fields))
    n_dc = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_dc):
        fields = [
            draw(st.integers(min_value=1, max_value=3))
            for _ in range(n_in)
        ]
        fields.append(
            draw(st.integers(min_value=1, max_value=(1 << n_out) - 1))
        )
        pla.dcset.append(space.make_cube(fields))
    return pla


class TestPlaRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(plas())
    def test_semantic_roundtrip(self, pla):
        """Parsing the formatted PLA preserves per-minterm semantics.

        The row set can change (one row with output '11' may split)
        but the (on/off/dc) classification of every point must not.
        """
        again = parse_pla(format_pla(pla))
        assert again.n_inputs == pla.n_inputs
        assert again.n_outputs == pla.n_outputs
        n = pla.n_inputs
        for x in range(1 << n):
            values = [(x >> (n - 1 - b)) & 1 for b in range(n)]
            assert again.eval_minterm(values) == pla.eval_minterm(values)


class TestEncodingColumnsRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_from_columns_inverts_columns(self, data):
        n = data.draw(st.integers(min_value=1, max_value=10))
        nv = max(1, (n - 1).bit_length())
        symbols = [f"s{i}" for i in range(n)]
        codes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << nv) - 1),
                min_size=n, max_size=n,
            )
        )
        enc = Encoding.from_code_list(symbols, codes, nv)
        again = Encoding.from_columns(symbols, enc.columns())
        assert again.codes == enc.codes
        assert again.n_bits == enc.n_bits


class TestSpaceFormatRoundtrip:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_format_parse_identity(self, data):
        sizes = data.draw(
            st.lists(
                st.integers(min_value=2, max_value=5),
                min_size=1, max_size=4,
            )
        )
        space = Space(sizes)
        fields = []
        for size in sizes:
            fields.append(
                data.draw(
                    st.integers(min_value=1, max_value=(1 << size) - 1)
                )
            )
        cube = space.make_cube(fields)
        assert space.parse_cube(space.format_cube(cube)) == cube
