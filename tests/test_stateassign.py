"""Tests for the state-assignment tool and encoded-machine correctness."""

import pytest

from repro.cubes import contains
from repro.encoding import derive_face_constraints
from repro.fsm import encode_fsm, load_benchmark, parse_kiss
from repro.stateassign import METHODS, AssignmentResult, assign_states

TOY = """
.i 2
.o 1
.r a
00 a a 0
01 a b 0
1- a c 1
-- b a 1
0- c b 0
1- c c 1
"""


def simulate_symbolic(fsm, state, inputs):
    """Next state and outputs per the symbolic description."""
    for t in fsm.transitions_from(state):
        if all(p in ("-", i) for p, i in zip(t.inputs, inputs)):
            return t.next, t.outputs
    return None, None


class TestAssignStates:
    def test_all_methods_run(self):
        fsm = parse_kiss(TOY)
        for method in METHODS:
            result = assign_states(fsm, method, seed=1)
            assert result.size > 0
            assert result.encoding.is_injective()

    def test_unknown_method_rejected(self):
        fsm = parse_kiss(TOY)
        with pytest.raises(ValueError):
            assign_states(fsm, "made-up")

    def test_minimized_preserves_behaviour(self):
        """The minimized encoded PLA must agree with the symbolic FSM."""
        fsm = parse_kiss(TOY)
        result = assign_states(fsm, "picola")
        enc = result.encoding
        pla = result.minimized
        n_in, n_bits = fsm.n_inputs, enc.n_bits
        for state in fsm.states:
            code = enc.code_of(state)
            for x in range(1 << n_in):
                inputs = format(x, f"0{n_in}b")
                want_next, want_out = simulate_symbolic(fsm, state, inputs)
                if want_next is None:
                    continue  # unspecified
                values = [int(ch) for ch in inputs]
                values += [
                    (code >> (n_bits - 1 - b)) & 1 for b in range(n_bits)
                ]
                got = pla.eval_minterm(values)
                want_code = enc.code_of(want_next)
                for b in range(n_bits):
                    want_bit = (want_code >> (n_bits - 1 - b)) & 1
                    assert got[b] in (want_bit, -1), (
                        f"state {state} input {inputs} bit {b}"
                    )
                for o, ch in enumerate(want_out):
                    if ch == "-":
                        continue
                    assert got[n_bits + o] in (int(ch), -1), (
                        f"state {state} input {inputs} output {o}"
                    )

    def test_minimization_reduces_or_keeps_size(self):
        fsm = load_benchmark("lion")
        result = assign_states(fsm, "natural")
        assert result.size <= result.pla.num_terms()

    def test_shared_constraints_reused(self):
        fsm = parse_kiss(TOY)
        cset = derive_face_constraints(fsm)
        result = assign_states(fsm, "picola", constraints=cset)
        assert result.constraints is cset

    def test_result_metrics(self):
        fsm = parse_kiss(TOY)
        result = assign_states(fsm, "picola")
        assert result.literals >= 0
        assert result.area == result.size * (
            2 * result.minimized.n_inputs + result.minimized.n_outputs
        )
        assert fsm.name in result.summary() or "picola" in result.summary()

    def test_no_minimize_flag(self):
        fsm = parse_kiss(TOY)
        result = assign_states(fsm, "natural", minimize=False)
        assert result.minimized is result.pla


class TestAssignOptions:
    def test_reduce_option_minimizes_states(self):
        kiss = """
.i 1
.o 1
.r a
0 a b 0
1 a c 0
0 b a 1
1 b a 1
0 c a 1
1 c a 1
"""
        fsm = parse_kiss(kiss)
        result = assign_states(fsm, "picola", reduce=True)
        assert result.fsm.n_states == 2  # b and c merge
        assert result.encoding.n_bits == 1

    def test_sparse_option_never_worse(self):
        fsm = load_benchmark("bbara")
        plain = assign_states(fsm, "natural")
        sparse = assign_states(fsm, "natural", sparse=True)
        assert sparse.size <= plain.size
        assert sparse.literals <= plain.literals

    def test_sparse_result_still_correct(self):
        from repro.fsm import cosimulate, random_input_sequence

        fsm = load_benchmark("lion")
        result = assign_states(fsm, "picola", sparse=True)
        codes = {
            s: result.encoding.code_of(s)
            for s in result.encoding.symbols
        }
        cosimulate(
            fsm, result.minimized, codes, result.encoding.n_bits,
            random_input_sequence(fsm.n_inputs, 120, seed=2),
        )
