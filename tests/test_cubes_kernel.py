"""Unit tests for the positional-cube kernel (spaces and single cubes)."""

import pytest

from repro.cubes import (
    Space,
    consensus,
    contains,
    cofactor,
    cube_complement,
    cube_size,
    distance,
    free_part_count,
    intersect,
    is_void,
    sharp,
    strictly_contains,
    supercube,
)


def bits_of(space, cube):
    """All minterms contained in a cube, by brute force."""
    return [m for m in space.iter_minterms() if contains(cube, m)]


class TestSpaceLayout:
    def test_binary_space_width(self):
        space = Space.binary(3)
        assert space.width == 6
        assert space.universe == 0b111111
        assert space.part_sizes == (2, 2, 2)

    def test_binary_space_with_outputs(self):
        space = Space.binary(2, 3)
        assert space.part_sizes == (2, 2, 3)
        assert space.width == 7
        assert space.has_output_part

    def test_mv_space(self):
        space = Space([4, 2])
        assert space.offsets == (0, 4)
        assert space.part_masks == (0b1111, 0b110000)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            Space([])

    def test_zero_size_part_rejected(self):
        with pytest.raises(ValueError):
            Space([2, 0])

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Space([2, 2], labels=["only-one"])

    def test_literal(self):
        space = Space.binary(2)
        # x0 = 1, x1 free
        assert space.literal(0, 1) == 0b1110
        assert space.literal(1, 0) == 0b0111

    def test_minterm_roundtrip(self):
        space = Space([2, 3])
        m = space.minterm([1, 2])
        assert space.field(m, 0) == 0b10
        assert space.field(m, 1) == 0b100

    def test_minterm_enumeration_count(self):
        space = Space([2, 3, 2])
        minterms = list(space.iter_minterms())
        assert len(minterms) == 12
        assert len(set(minterms)) == 12
        assert space.num_minterms() == 12

    def test_make_cube_and_fields(self):
        space = Space([2, 4])
        cube = space.make_cube([0b11, 0b0101])
        assert space.fields(cube) == [0b11, 0b0101]

    def test_make_cube_rejects_wide_field(self):
        space = Space([2, 2])
        with pytest.raises(ValueError):
            space.make_cube([0b111, 0b11])

    def test_with_field(self):
        space = Space([2, 2])
        cube = space.universe
        cube = space.with_field(cube, 1, 0b01)
        assert space.fields(cube) == [0b11, 0b01]


class TestCubeFormat:
    def test_format_binary(self):
        space = Space.binary(3)
        assert space.format_cube(space.universe) == "---"
        cube = space.make_cube([0b01, 0b10, 0b11])
        assert space.format_cube(cube) == "01-"

    def test_format_with_output_part(self):
        space = Space.binary(2, 3)
        cube = space.make_cube([0b10, 0b11, 0b101])
        assert space.format_cube(cube) == "1- 101"

    def test_parse_roundtrip(self):
        space = Space.binary(2, 3)
        for text in ["00 111", "1- 010", "-- 001"]:
            assert space.format_cube(space.parse_cube(text)) == text

    def test_parse_rejects_garbage(self):
        space = Space.binary(2)
        with pytest.raises(ValueError):
            space.parse_cube("0x")
        with pytest.raises(ValueError):
            space.parse_cube("0")
        with pytest.raises(ValueError):
            space.parse_cube("000")


class TestCubeOps:
    def setup_method(self):
        self.space = Space.binary(3)

    def cube(self, text):
        return self.space.parse_cube(text)

    def test_intersection_void(self):
        assert intersect(self.space, self.cube("0--"), self.cube("1--")) == 0

    def test_intersection_basic(self):
        got = intersect(self.space, self.cube("0--"), self.cube("-1-"))
        assert got == self.cube("01-")

    def test_is_void(self):
        assert is_void(self.space, 0)
        assert not is_void(self.space, self.space.universe)

    def test_containment(self):
        assert contains(self.cube("0--"), self.cube("01-"))
        assert not contains(self.cube("01-"), self.cube("0--"))
        assert strictly_contains(self.cube("0--"), self.cube("01-"))
        assert not strictly_contains(self.cube("0--"), self.cube("0--"))

    def test_supercube(self):
        got = supercube([self.cube("000"), self.cube("011")])
        assert got == self.cube("0--")

    def test_distance(self):
        assert distance(self.space, self.cube("000"), self.cube("001")) == 1
        assert distance(self.space, self.cube("000"), self.cube("011")) == 2
        assert distance(self.space, self.cube("0--"), self.cube("01-")) == 0

    def test_consensus_distance_one(self):
        got = consensus(self.space, self.cube("01-"), self.cube("00-"))
        assert got == self.cube("0--")

    def test_consensus_classic(self):
        got = consensus(self.space, self.cube("1-0"), self.cube("01-"))
        # conflicting in variable 0 -> raise it, intersect the rest
        assert got == self.cube("-10")

    def test_consensus_distance_two_is_void(self):
        assert consensus(self.space, self.cube("00-"), self.cube("11-")) == 0

    def test_cofactor_shannon(self):
        # Shannon expansion sanity: c = (x0 & cof(c, x0)) on minterms
        c = self.cube("01-")
        lit = self.space.literal(0, 0)
        cof = cofactor(self.space, c, lit)
        for m in self.space.iter_minterms():
            inside = contains(c, m)
            if contains(lit, m):
                assert contains(cof, m) == inside

    def test_cube_size(self):
        assert cube_size(self.space, self.cube("000")) == 1
        assert cube_size(self.space, self.cube("0--")) == 4
        assert cube_size(self.space, self.space.universe) == 8

    def test_free_part_count(self):
        assert free_part_count(self.space, self.cube("0--")) == 2
        assert free_part_count(self.space, self.space.universe) == 3

    def test_cube_complement_partitions(self):
        c = self.cube("01-")
        comp = cube_complement(self.space, c)
        covered = set()
        for piece in comp:
            covered.update(bits_of(self.space, piece))
        inside = set(bits_of(self.space, c))
        allm = set(self.space.iter_minterms())
        assert covered == allm - inside

    def test_sharp_is_difference(self):
        a, b = self.cube("0--"), self.cube("-1-")
        pieces = sharp(self.space, a, b)
        got = set()
        for piece in pieces:
            minterms = bits_of(self.space, piece)
            assert not got & set(minterms), "sharp pieces must be disjoint"
            got.update(minterms)
        expect = set(bits_of(self.space, a)) - set(bits_of(self.space, b))
        assert got == expect

    def test_sharp_subset_is_empty(self):
        assert sharp(self.space, self.cube("01-"), self.cube("0--")) == []


class TestMVCubeOps:
    def test_mv_intersection(self):
        space = Space([3, 2])
        a = space.make_cube([0b011, 0b11])
        b = space.make_cube([0b110, 0b01])
        got = intersect(space, a, b)
        assert space.fields(got) == [0b010, 0b01]

    def test_mv_void_intersection(self):
        space = Space([3, 2])
        a = space.make_cube([0b001, 0b11])
        b = space.make_cube([0b110, 0b11])
        assert intersect(space, a, b) == 0

    def test_mv_cube_complement(self):
        space = Space([3, 2])
        cube = space.make_cube([0b011, 0b01])
        comp = cube_complement(space, cube)
        inside = set(bits_of(space, cube))
        covered = set()
        for piece in comp:
            covered.update(bits_of(space, piece))
        assert covered == set(space.iter_minterms()) - inside
