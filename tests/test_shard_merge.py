"""Sharded multi-host runs (``--shard K/N``), streaming results
(``--stream``) and ``picola merge``.

Covers the protocol invariants: the deterministic partition (N shards
cover every unit exactly once), self-describing shard checkpoints,
kill-one-shard-and-resume, merge validation (tag/spec/params
mismatches, duplicate/missing shards, foreign or missing cells), and
the headline guarantee — a merged report renders **byte-identical**
to an unsharded run, for all four experiments and for stream files.
"""

import json

import pytest

from repro.harness.ablation import run_ablation
from repro.harness.cli import main
from repro.harness.merge import merge_files
from repro.harness.shard import (
    ShardSpec,
    StreamWriter,
    build_meta,
    parse_shard,
    read_stream,
)
from repro.harness.sweep import run_seed_sweep
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2
from repro.runtime import (
    Checkpoint,
    CheckpointError,
    InvalidSpecError,
    SolverTimeout,
    faults,
)


class TestShardSpec:
    def test_partition_covers_every_unit_exactly_once(self):
        """The defining property: over all N shards, the partitions
        are disjoint and their union is the full unit list."""
        keys = [f"u{i}" for i in range(17)]
        for total in (1, 2, 3, 5, 16, 17, 20):
            parts = [
                ShardSpec(index=k, total=total).partition(keys)
                for k in range(1, total + 1)
            ]
            flat = [key for part in parts for key in part]
            assert sorted(flat) == sorted(keys)  # cover, no overlap
            assert len(flat) == len(keys)

    def test_partition_is_round_robin_and_ordered(self):
        keys = ["a", "b", "c", "d", "e"]
        assert ShardSpec(1, 2).partition(keys) == ["a", "c", "e"]
        assert ShardSpec(2, 2).partition(keys) == ["b", "d"]
        # a shard beyond the list length simply owns nothing
        assert ShardSpec(7, 8).partition(["a", "b"]) == []

    def test_parse_shard(self):
        assert parse_shard("2/3") == ShardSpec(index=2, total=3)
        assert str(parse_shard("2/3")) == "2/3"
        for bad in ("", "3", "0/2", "3/2", "-1/2", "a/b", "1/2/3"):
            with pytest.raises(InvalidSpecError):
                parse_shard(bad)

    def test_dict_round_trip(self):
        spec = ShardSpec(index=3, total=4)
        assert ShardSpec.from_dict(spec.to_dict()) == spec


class TestShardCheckpointMeta:
    def test_shard_checkpoint_is_self_describing(self, tmp_path):
        path = tmp_path / "s1.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=path, shard="1/2",
        )
        ckpt = Checkpoint(path)
        assert ckpt.meta["experiment"] == "table1"
        assert ckpt.meta["shard"] == {"index": 1, "total": 2}
        assert ckpt.meta["units"] == ["lion9", "ex3"]
        assert ckpt.meta["params"]["include_enc"] is False
        assert ckpt.keys() == ["lion9"]  # shard 1/2 of two rows

    def test_resume_refuses_mismatched_run_spec(self, tmp_path):
        path = tmp_path / "s1.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=path, shard="1/2",
        )
        # same file, different unit universe -> different meta
        with pytest.raises(CheckpointError):
            run_table1(
                ["lion9", "ex3", "opus"], include_enc=False,
                checkpoint=path, shard="1/2",
            )
        # ... different shard spec
        with pytest.raises(CheckpointError):
            run_table1(
                ["lion9", "ex3"], include_enc=False,
                checkpoint=path, shard="2/2",
            )
        # ... different params
        with pytest.raises(CheckpointError):
            run_table1(
                ["lion9", "ex3"], include_enc=False, seed=9,
                checkpoint=path, shard="1/2",
            )

    def test_sharded_resume_refuses_plain_checkpoint(self, tmp_path):
        path = tmp_path / "plain.json"
        run_table1(["lion9"], include_enc=False, checkpoint=path)
        with pytest.raises(CheckpointError):
            run_table1(
                ["lion9"], include_enc=False,
                checkpoint=path, shard="1/1",
            )

    def test_unsharded_resume_still_ignores_params(self, tmp_path):
        """Legacy behavior is preserved: without --shard no meta is
        stamped, so resuming with different knobs keeps working."""
        path = tmp_path / "plain.json"
        run_table1(["lion9"], include_enc=False, checkpoint=path)
        assert Checkpoint(path).meta is None
        report = run_table1(
            ["lion9"], include_enc=False, seed=9, checkpoint=path
        )
        assert report.rows[0].ok


class TestKillAndResumeShard:
    def test_killed_shard_resumes_then_merges(self, tmp_path):
        """Kill one shard mid-run; its checkpoint holds the finished
        cells, a resume completes the remainder, and the merge then
        succeeds."""
        fsms = ["lion9", "ex3", "opus", "train11"]
        s1, s2 = tmp_path / "s1.json", tmp_path / "s2.json"
        run_table1(
            fsms, include_enc=False, checkpoint=s2, shard="2/2"
        )
        # shard 1 owns lion9 and opus; die on opus
        with faults.inject("table1.row", KeyboardInterrupt, key="opus"):
            with pytest.raises(KeyboardInterrupt):
                run_table1(
                    fsms, include_enc=False,
                    checkpoint=s1, shard="1/2",
                )
        killed = Checkpoint(s1)
        assert killed.is_done("lion9") and not killed.is_done("opus")

        # an incomplete shard is rejected with a pointed diagnostic
        with pytest.raises(CheckpointError, match="missing 1 cell"):
            merge_files([s1, s2])

        with faults.inject(
            "table1.row", SolverTimeout, key="lion9"
        ) as fault:
            run_table1(
                fsms, include_enc=False, checkpoint=s1, shard="1/2"
            )
            assert fault.fired == 0  # finished cell was not re-run
        merged, experiment = merge_files([s1, s2])
        assert experiment == "table1"
        unsharded = run_table1(fsms, include_enc=False)
        assert merged.render() == unsharded.render()


class TestMergeValidation:
    def _two_shards(self, tmp_path, **kwargs):
        s1, s2 = tmp_path / "s1.json", tmp_path / "s2.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=s1, shard="1/2", **kwargs,
        )
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=s2, shard="2/2", **kwargs,
        )
        return s1, s2

    def test_merge_needs_files(self):
        with pytest.raises(CheckpointError):
            merge_files([])

    def test_rejects_mismatched_experiments(self, tmp_path):
        t1 = tmp_path / "t1.json"
        t2 = tmp_path / "t2.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=t1, shard="1/2",
        )
        run_table2(["dk16", "s386"], checkpoint=t2, shard="2/2")
        with pytest.raises(CheckpointError, match="cannot merge"):
            merge_files([t1, t2])

    def test_rejects_disagreeing_unit_universe(self, tmp_path):
        s1 = tmp_path / "s1.json"
        s2 = tmp_path / "s2.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=s1, shard="1/2",
        )
        run_table1(
            ["lion9", "opus"], include_enc=False,
            checkpoint=s2, shard="2/2",
        )
        with pytest.raises(CheckpointError, match="unit universe"):
            merge_files([s1, s2])

    def test_rejects_disagreeing_params(self, tmp_path):
        s1 = tmp_path / "s1.json"
        s2 = tmp_path / "s2.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=s1, shard="1/2",
        )
        run_table1(
            ["lion9", "ex3"], include_enc=False, seed=9,
            checkpoint=s2, shard="2/2",
        )
        with pytest.raises(CheckpointError, match="params"):
            merge_files([s1, s2])

    def test_rejects_disagreeing_shard_totals(self, tmp_path):
        s1 = tmp_path / "s1.json"
        s2 = tmp_path / "s2.json"
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=s1, shard="1/1",
        )
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=s2, shard="2/2",
        )
        with pytest.raises(CheckpointError, match="totals must agree"):
            merge_files([s1, s2])

    def test_rejects_duplicate_shards(self, tmp_path):
        s1, _ = self._two_shards(tmp_path)
        with pytest.raises(CheckpointError, match="duplicate shard"):
            merge_files([s1, s1])

    def test_rejects_missing_shards(self, tmp_path):
        s1, _ = self._two_shards(tmp_path)
        with pytest.raises(
            CheckpointError, match="missing shard file"
        ):
            merge_files([s1])

    def test_rejects_foreign_cells(self, tmp_path):
        """A cell outside the shard's own partition means the files
        overlap or were tampered with."""
        s1, s2 = self._two_shards(tmp_path)
        data = json.loads(s1.read_text())
        data["completed"]["ex3"] = data["completed"]["lion9"]
        s1.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="outside shard"):
            merge_files([s1, s2])

    def test_rejects_plain_checkpoint(self, tmp_path):
        plain = tmp_path / "plain.json"
        run_table1(["lion9"], include_enc=False, checkpoint=plain)
        with pytest.raises(
            CheckpointError, match="not a shard checkpoint"
        ):
            merge_files([plain])

    def test_rejects_unknown_schema(self, tmp_path):
        s1, s2 = self._two_shards(tmp_path)
        data = json.loads(s1.read_text())
        data["meta"]["schema"] = 99
        s1.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="schema"):
            merge_files([s1, s2])


class TestMergedRendersByteIdentical:
    """The headline guarantee, per experiment: run N shards, merge,
    compare the rendered report (and JSON modulo wall-clock fields)
    against a plain unsharded run."""

    def test_table1(self, tmp_path):
        fsms = ["lion9", "ex3", "opus"]
        shards = []
        for k in (1, 2):
            path = tmp_path / f"s{k}.json"
            run_table1(
                fsms, include_enc=False,
                checkpoint=path, shard=f"{k}/2",
            )
            shards.append(path)
        merged, _ = merge_files(shards)
        unsharded = run_table1(fsms, include_enc=False)
        assert merged.render() == unsharded.render()

    def test_table1_failed_rows_survive_the_merge(self, tmp_path):
        fsms = ["lion9", "ex3"]
        shards = []
        with faults.inject(
            "table1.row", SolverTimeout, key="ex3", times=2
        ):
            for k in (1, 2):
                path = tmp_path / f"s{k}.json"
                run_table1(
                    fsms, include_enc=False,
                    checkpoint=path, shard=f"{k}/2",
                )
                shards.append(path)
            merged, _ = merge_files(shards)
            unsharded = run_table1(fsms, include_enc=False)
        assert merged.n_failed == 1
        assert merged.render() == unsharded.render()

    def test_table2(self, tmp_path):
        fsms = ["dk16", "s386"]
        shards = []
        for k in (1, 2):
            path = tmp_path / f"s{k}.json"
            run_table2(fsms, checkpoint=path, shard=f"{k}/2")
            shards.append(path)
        merged, _ = merge_files(shards)
        unsharded = run_table2(fsms)
        # Table II renders wall-clock time *ratios*, which no two
        # live runs share — mask them; everything else must match
        # byte for byte (the merge replays the shard cells verbatim,
        # ratios included, so merged == its own shards exactly)
        import re

        def mask_times(text):
            return re.sub(r"\d+\.\d+", "#", text)

        assert mask_times(merged.render()) == mask_times(
            unsharded.render()
        )
        # JSON too, modulo the wall-clock fields
        from repro.harness.serialize import to_dict

        def scrub(data):
            for row in data["rows"]:
                row["seconds"] = None
                row["time_ratios"] = None
            return data

        assert scrub(to_dict(merged)) == scrub(to_dict(unsharded))

    def test_ablation(self, tmp_path):
        fsms = ["lion9", "ex3", "opus"]
        variants = ["full", "no_guides"]
        shards = []
        for k in (1, 2, 3):
            path = tmp_path / f"s{k}.json"
            run_ablation(
                fsms, variants, checkpoint=path, shard=f"{k}/3"
            )
            shards.append(path)
        merged, _ = merge_files(shards)
        unsharded = run_ablation(fsms, variants)
        assert merged.render() == unsharded.render()

    def test_sweep(self, tmp_path):
        fsms = ["lion9", "ex3"]
        shards = []
        for k in (1, 2):
            path = tmp_path / f"s{k}.json"
            run_seed_sweep(
                fsms, seeds=(0, 1),
                checkpoint=path, shard=f"{k}/2",
            )
            shards.append(path)
        merged, _ = merge_files(shards)
        unsharded = run_seed_sweep(fsms, seeds=(0, 1))
        assert merged.render() == unsharded.render()


class TestStreaming:
    def test_stream_file_round_trips(self, tmp_path):
        stream = tmp_path / "run.jsonl"
        report = run_table1(
            ["lion9", "ex3"], include_enc=False, stream=stream
        )
        lines = [
            json.loads(line)
            for line in stream.read_text().splitlines()
        ]
        assert [e["type"] for e in lines] == [
            "header", "cell", "cell", "end",
        ]
        assert lines[0]["experiment"] == "table1"
        assert lines[0]["shard"] is None
        assert lines[-1]["cells"] == 2
        meta, completed = read_stream(stream)
        assert sorted(completed) == ["ex3", "lion9"]
        # an unsharded stream merges on its own, as shard 1/1
        merged, _ = merge_files([stream], from_stream=True)
        assert merged.render() == report.render()

    def test_stream_tolerates_torn_final_line(self, tmp_path):
        stream = tmp_path / "run.jsonl"
        run_table1(
            ["lion9", "ex3"], include_enc=False, stream=stream
        )
        text = stream.read_text().splitlines()
        # drop the end marker and tear the last cell mid-JSON
        torn = "\n".join(text[:-2] + [text[-2][: len(text[-2]) // 2]])
        stream.write_text(torn)
        meta, completed = read_stream(stream)
        assert list(completed) == ["lion9"]

    def test_stream_rejects_non_stream_files(self, tmp_path):
        bad = tmp_path / "nope.jsonl"
        bad.write_text('{"type":"cell","key":"x","payload":{}}\n')
        with pytest.raises(CheckpointError, match="header"):
            read_stream(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            read_stream(empty)

    def test_stream_last_write_wins(self, tmp_path):
        meta = build_meta("table1", ["a"], {}, None)
        stream = tmp_path / "dup.jsonl"
        writer = StreamWriter(stream, meta)
        writer.emit_cell("a", {"v": 1})
        writer.emit_cell("a", {"v": 2}, resumed=True)
        writer.close()
        _, completed = read_stream(stream)
        assert completed == {"a": {"v": 2}}

    def test_sharded_streams_merge_like_checkpoints(self, tmp_path):
        fsms = ["lion9", "ex3", "opus"]
        streams = []
        for k in (1, 2):
            path = tmp_path / f"s{k}.jsonl"
            run_table1(
                fsms, include_enc=False,
                stream=path, shard=f"{k}/2",
            )
            streams.append(path)
        merged, _ = merge_files(streams, from_stream=True)
        # auto-detection handles stream files without the flag too
        detected, _ = merge_files(streams)
        unsharded = run_table1(fsms, include_enc=False)
        assert merged.render() == unsharded.render()
        assert detected.render() == unsharded.render()


class TestFuzzSharding:
    def test_sharded_fuzz_streams_merge_byte_identical(self, tmp_path):
        from repro.fuzz import FuzzConfig, run_fuzz

        base = dict(
            solver="picola", generators=("random",),
            max_examples=6, seed=3, scale=8, timeout=10.0,
        )
        streams = []
        for k in (1, 2):
            path = tmp_path / f"f{k}.jsonl"
            config = FuzzConfig(
                **base, shard=f"{k}/2", stream=str(path)
            )
            report = run_fuzz(config)
            assert len(report.outcomes) == 3  # this shard's half
            streams.append(path)
        merged, experiment = merge_files(streams, from_stream=True)
        assert experiment == "fuzz"
        unsharded = run_fuzz(FuzzConfig(**base))
        assert merged.render() == unsharded.render()
        assert [o.key for o in merged.outcomes] == [
            o.key for o in unsharded.outcomes
        ]
        assert [o.classification for o in merged.outcomes] == [
            o.classification for o in unsharded.outcomes
        ]


class TestCliEndToEnd:
    def _table_of(self, text):
        """The deterministic tail of a command's output: everything
        from the table border on (verbose per-row progress lines and
        the merge banner differ by construction)."""
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line and set(line) == {"="}:  # the title underline
                return "\n".join(lines[i - 1:])
        raise AssertionError(f"no table in output:\n{text}")

    def test_shard_merge_matches_unsharded(self, tmp_path, capsys):
        args = ["table1", "--fsm", "lion9", "ex3", "opus", "--no-enc"]
        shard_files = []
        for k in (1, 2):
            ckpt = tmp_path / f"s{k}.json"
            stream = tmp_path / f"s{k}.jsonl"
            assert main(args + [
                "--shard", f"{k}/2",
                "--resume", str(ckpt), "--stream", str(stream),
            ]) == 0
            shard_files.append(ckpt)
        capsys.readouterr()
        assert main(args) == 0
        unsharded = self._table_of(capsys.readouterr().out)

        assert main(["merge"] + [str(p) for p in shard_files]) == 0
        merged_out = capsys.readouterr().out
        assert "merged 2 shard file(s): table1" in merged_out
        assert self._table_of(merged_out) == unsharded

        streams = [str(tmp_path / f"s{k}.jsonl") for k in (1, 2)]
        assert main(["merge", "--from-stream"] + streams) == 0
        assert self._table_of(capsys.readouterr().out) == unsharded

    def test_merge_json_flag(self, tmp_path, capsys):
        for k in (1, 2):
            assert main([
                "table1", "--fsm", "lion9", "ex3", "--no-enc",
                "--shard", f"{k}/2",
                "--resume", str(tmp_path / f"s{k}.json"),
            ]) == 0
        out = tmp_path / "merged.json"
        assert main([
            "merge", str(tmp_path / "s1.json"),
            str(tmp_path / "s2.json"), "--json", str(out),
        ]) == 0
        data = json.loads(out.read_text())
        assert data["experiment"] == "table1"
        assert [r["fsm"] for r in data["rows"]] == ["lion9", "ex3"]

    def test_bad_shard_spec_is_usage_error(self, capsys):
        assert main([
            "table1", "--fsm", "lion9", "--no-enc", "--shard", "3/2",
        ]) == 2
        assert "shard" in capsys.readouterr().err

    def test_merge_mismatch_is_usage_error(self, tmp_path, capsys):
        run_table1(
            ["lion9", "ex3"], include_enc=False,
            checkpoint=tmp_path / "s1.json", shard="1/2",
        )
        run_table2(
            ["dk16", "s386"],
            checkpoint=tmp_path / "s2.json", shard="2/2",
        )
        assert main([
            "merge", str(tmp_path / "s1.json"),
            str(tmp_path / "s2.json"),
        ]) == 2
        assert "cannot merge" in capsys.readouterr().err

    def test_merge_propagates_failure_exit_code(self, tmp_path):
        with faults.inject(
            "table1.row", SolverTimeout, key="ex3", times=2
        ):
            for k in (1, 2):
                run_table1(
                    ["lion9", "ex3"], include_enc=False,
                    checkpoint=tmp_path / f"s{k}.json",
                    shard=f"{k}/2",
                )
        assert main([
            "merge", str(tmp_path / "s1.json"),
            str(tmp_path / "s2.json"),
        ]) == 1  # failed rows surface, same as the experiment commands
