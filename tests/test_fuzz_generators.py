"""The fuzz workload generators: determinism, structure, registry."""

import pytest

from repro.encoding import ConstraintSet
from repro.fuzz import (
    FuzzCase,
    generate_case,
    get_generator,
    list_generators,
    register_generator,
)
from repro.fuzz.generators import _REGISTRY
from repro.runtime import InvalidSpecError


class TestRegistry:
    def test_at_least_three_named_families(self):
        assert len(list_generators()) >= 3

    def test_expected_families_present(self):
        names = list_generators()
        for family in ("random", "fsm", "bounded-length", "grid",
                       "pathological"):
            assert family in names

    def test_unknown_generator_is_classified(self):
        with pytest.raises(InvalidSpecError, match="unknown generator"):
            get_generator("nope")

    def test_duplicate_registration_rejected(self):
        fn = _REGISTRY["random"].fn
        with pytest.raises(InvalidSpecError, match="already registered"):
            register_generator("random", fn)

    def test_replace_allows_reregistration(self):
        spec = _REGISTRY["random"]
        try:
            register_generator(
                "random", spec.fn, makes_fsm=False, replace=True
            )
        finally:
            _REGISTRY["random"] = spec

    def test_scale_floor(self):
        with pytest.raises(InvalidSpecError, match="scale"):
            generate_case("random", 0, scale=1)


class TestDeterminism:
    @pytest.mark.parametrize("family", list_generators())
    def test_same_seed_same_case(self, family):
        a = generate_case(family, 17, 16)
        b = generate_case(family, 17, 16)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("family", list_generators())
    def test_different_seeds_vary(self, family):
        shapes = {
            (
                generate_case(family, s, 20).cset.n_symbols,
                len(generate_case(family, s, 20).cset.constraints),
            )
            for s in range(12)
        }
        assert len(shapes) > 1


class TestStructure:
    @pytest.mark.parametrize("family", list_generators())
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_cases_are_well_formed(self, family, seed):
        case = generate_case(family, seed, 16)
        assert isinstance(case.cset, ConstraintSet)
        assert case.cset.n_symbols >= 2
        for constraint in case.cset.constraints:
            assert constraint.symbols <= set(case.cset.symbols)
        if case.nv is not None:
            assert case.nv >= case.cset.min_code_length()

    def test_scale_bounds_symbols(self):
        for seed in range(20):
            case = generate_case("random", seed, 8)
            assert case.cset.n_symbols <= 8

    def test_scale_reaches_large_instances(self):
        biggest = max(
            generate_case("random", s, 2000).cset.n_symbols
            for s in range(40)
        )
        assert biggest > 500

    def test_fsm_family_carries_machine(self):
        case = generate_case("fsm", 2, 12)
        assert case.fsm is not None
        assert case.cset.n_symbols == case.fsm.n_states

    def test_bounded_length_is_marked_satisfiable(self):
        case = generate_case("bounded-length", 4, 16)
        assert case.satisfiable
        assert case.nv is not None
        # prefix groups at nv: the natural encoding s_i -> i satisfies
        # every group, so the marking is honest
        from repro.encoding import Encoding

        codes = {f"s{i}": i for i in range(case.cset.n_symbols)}
        encoding = Encoding(case.cset.symbols, codes, case.nv)
        for constraint in case.cset.nontrivial():
            assert not encoding.intruders(constraint.symbols)

    def test_grid_family_rows_and_columns(self):
        case = generate_case("grid", 1, 20)
        assert case.cset.n_symbols >= 4
        assert len(case.cset.constraints) >= 3


class TestRoundTrip:
    @pytest.mark.parametrize("family", list_generators())
    def test_dict_round_trip(self, family):
        case = generate_case(family, 5, 12)
        again = FuzzCase.from_dict(case.to_dict())
        assert again.to_dict() == case.to_dict()
        assert tuple(again.cset.symbols) == tuple(case.cset.symbols)
        assert (again.fsm is None) == (case.fsm is None)
        if case.fsm is not None:
            assert again.fsm.n_states == case.fsm.n_states


class TestHypothesisStrategies:
    def test_fuzz_cases_strategy_draws_cases(self):
        hypothesis = pytest.importorskip("hypothesis")
        from repro.fuzz.strategies import fuzz_cases

        @hypothesis.given(fuzz_cases(scale=10))
        @hypothesis.settings(
            max_examples=15, deadline=None,
            suppress_health_check=[
                hypothesis.HealthCheck.too_slow,
                hypothesis.HealthCheck.filter_too_much,
            ],
        )
        def run(case):
            assert isinstance(case, FuzzCase)
            assert case.family in list_generators()
            assert case.cset.n_symbols >= 2

        run()

    def test_strategy_rejects_unknown_family(self):
        pytest.importorskip("hypothesis")
        from repro.fuzz.strategies import fuzz_cases

        with pytest.raises(InvalidSpecError, match="unknown generator"):
            fuzz_cases(["nope"])

    def test_constraint_sets_strategy(self):
        hypothesis = pytest.importorskip("hypothesis")
        from repro.fuzz.strategies import constraint_sets

        @hypothesis.given(constraint_sets(["random"], scale=8))
        @hypothesis.settings(max_examples=10, deadline=None)
        def run(cset):
            assert isinstance(cset, ConstraintSet)

        run()
