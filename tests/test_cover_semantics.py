"""Tests for tautology, complement and Cover semantics.

Everything here is cross-checked against brute-force minterm enumeration
on small spaces, plus hypothesis property tests over random covers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes import (
    Cover,
    Space,
    absorb,
    complement,
    contains,
    cover_contains_cube,
    intersect,
    sharp,
    tautology,
)
from repro.runtime import InvalidSpecError


def brute_minterms(space, cubes):
    return {
        m
        for m in space.iter_minterms()
        if any(contains(c, m) for c in cubes)
    }


def random_cube(space, draw_bits):
    """Build a non-void cube from a list of per-position booleans."""
    cube = 0
    pos = 0
    for part, size in enumerate(space.part_sizes):
        field = 0
        for value in range(size):
            if draw_bits[pos]:
                field |= 1 << value
            pos += 1
        if not field:
            field = 1  # avoid void parts
        cube |= field << space.offsets[part]
    return cube


@st.composite
def spaces_and_covers(draw):
    sizes = draw(
        st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=4)
    )
    space = Space(sizes)
    n_cubes = draw(st.integers(min_value=0, max_value=6))
    cover = []
    for _ in range(n_cubes):
        bits = draw(
            st.lists(
                st.booleans(), min_size=space.width, max_size=space.width
            )
        )
        cover.append(random_cube(space, bits))
    return space, cover


class TestTautology:
    def test_empty_cover_not_tautology(self):
        space = Space.binary(2)
        assert not tautology(space, [])

    def test_universe_is_tautology(self):
        space = Space.binary(3)
        assert tautology(space, [space.universe])

    def test_split_pair_is_tautology(self):
        space = Space.binary(3)
        cover = [space.parse_cube("0--"), space.parse_cube("1--")]
        assert tautology(space, cover)

    def test_missing_vertex(self):
        space = Space.binary(2)
        cover = [
            space.parse_cube("0-"),
            space.parse_cube("-0"),
            space.parse_cube("10"),
        ]
        assert not tautology(space, cover)  # 11 uncovered

    def test_xor_style_cover(self):
        space = Space.binary(2)
        cover = [space.parse_cube("01"), space.parse_cube("10")]
        assert not tautology(space, cover)
        cover += [space.parse_cube("00"), space.parse_cube("11")]
        assert tautology(space, cover)

    def test_mv_tautology(self):
        space = Space([3])
        cover = [space.make_cube([0b011]), space.make_cube([0b100])]
        assert tautology(space, cover)
        assert not tautology(space, [space.make_cube([0b011])])

    @settings(max_examples=200, deadline=None)
    @given(spaces_and_covers())
    def test_matches_bruteforce(self, sc):
        space, cover = sc
        expect = brute_minterms(space, cover) == set(space.iter_minterms())
        assert tautology(space, cover) == expect


class TestCoverContainsCube:
    def test_simple_containment(self):
        space = Space.binary(3)
        cover = [space.parse_cube("0--"), space.parse_cube("1-1")]
        assert cover_contains_cube(space, cover, space.parse_cube("011"))
        assert cover_contains_cube(space, cover, space.parse_cube("--1"))
        assert not cover_contains_cube(space, cover, space.parse_cube("1--"))

    @settings(max_examples=150, deadline=None)
    @given(spaces_and_covers(), st.data())
    def test_matches_bruteforce(self, sc, data):
        space, cover = sc
        bits = data.draw(
            st.lists(st.booleans(), min_size=space.width, max_size=space.width)
        )
        cube = random_cube(space, bits)
        covered = brute_minterms(space, cover)
        inside = {m for m in space.iter_minterms() if contains(cube, m)}
        assert cover_contains_cube(space, cover, cube) == (inside <= covered)


class TestComplement:
    def test_complement_of_empty(self):
        space = Space.binary(2)
        assert complement(space, []) == [space.universe]

    def test_complement_of_universe(self):
        space = Space.binary(2)
        assert complement(space, [space.universe]) == []

    def test_double_complement_same_set(self):
        space = Space.binary(3)
        cover = [space.parse_cube("01-"), space.parse_cube("--1")]
        comp2 = complement(space, complement(space, cover))
        assert brute_minterms(space, comp2) == brute_minterms(space, cover)

    @settings(max_examples=150, deadline=None)
    @given(spaces_and_covers())
    def test_partition_property(self, sc):
        """complement covers exactly the uncovered minterms."""
        space, cover = sc
        comp = complement(space, cover)
        covered = brute_minterms(space, cover)
        comp_covered = brute_minterms(space, comp)
        universe = set(space.iter_minterms())
        assert comp_covered == universe - covered


class TestAbsorb:
    def test_absorb_removes_contained(self):
        space = Space.binary(3)
        cover = [
            space.parse_cube("0--"),
            space.parse_cube("01-"),
            space.parse_cube("011"),
            space.parse_cube("1--"),
        ]
        kept = absorb(cover)
        assert sorted(kept) == sorted(
            [space.parse_cube("0--"), space.parse_cube("1--")]
        )

    @settings(max_examples=100, deadline=None)
    @given(spaces_and_covers())
    def test_absorb_preserves_semantics(self, sc):
        space, cover = sc
        kept = absorb(list(cover))
        assert brute_minterms(space, kept) == brute_minterms(space, cover)
        # no cube in the result is contained in another
        for i, a in enumerate(kept):
            for j, b in enumerate(kept):
                if i != j:
                    assert not (a & ~b == 0 and a != b) or not contains(b, a)


class TestCoverClass:
    def test_from_strings_and_len(self):
        space = Space.binary(3)
        cover = Cover.from_strings(space, ["01-", "1--"])
        assert len(cover) == 2

    def test_equivalence(self):
        space = Space.binary(2)
        a = Cover.from_strings(space, ["0-", "1-"])
        b = Cover.universe(space)
        assert a.equivalent(b)
        assert not a.equivalent(Cover.from_strings(space, ["0-"]))

    def test_intersection(self):
        space = Space.binary(3)
        a = Cover.from_strings(space, ["0--"])
        b = Cover.from_strings(space, ["-1-", "--1"])
        inter = a.intersected(b)
        want = brute_minterms(space, a.cubes) & brute_minterms(space, b.cubes)
        assert brute_minterms(space, inter.cubes) == want

    def test_minterm_count(self):
        space = Space.binary(3)
        cover = Cover.from_strings(space, ["0--", "-0-"])
        # |0--| + |-0-| - |00-| = 4 + 4 - 2
        assert cover.minterm_count() == 6

    def test_minterm_count_disjoint(self):
        space = Space.binary(3)
        cover = Cover.from_strings(space, ["000", "111"])
        assert cover.minterm_count() == 2

    def test_covers_minterm(self):
        space = Space.binary(2)
        cover = Cover.from_strings(space, ["01"])
        assert cover.covers_minterm(space.minterm([0, 1]))
        assert not cover.covers_minterm(space.minterm([1, 1]))

    def test_complemented_roundtrip(self):
        space = Space.binary(4)
        cover = Cover.from_strings(space, ["01--", "--10", "1--1"])
        assert cover.complemented().complemented().equivalent(cover)

    def test_universe_and_empty(self):
        space = Space.binary(2)
        assert Cover.universe(space).is_tautology()
        assert not Cover.empty(space).is_tautology()
        assert Cover.empty(space).complemented().is_tautology()

    def test_caches_survive_in_place_mutation(self):
        # same-length edits through the public list must invalidate the
        # __eq__/__contains__ caches, not just append/add
        space = Space.binary(2)
        a = Cover.from_strings(space, ["01", "10"])
        b = Cover.from_strings(space, ["01", "11"])
        assert a != b
        assert space.parse_cube("10") in a
        a.cubes[1] = space.parse_cube("11")  # same length: slot overwrite
        assert a == b
        assert space.parse_cube("10") not in a
        assert space.parse_cube("11") in a
        a.cubes.pop()
        a.cubes.append(space.parse_cube("10"))  # pop+append: length unchanged
        assert a != b
        assert space.parse_cube("10") in a
        c = Cover.from_strings(space, ["10", "01"])
        assert a == c  # order-insensitive after the mutations
        a.cubes.sort()
        assert a == c
        a.cubes.clear()
        assert a == Cover.empty(space)
        assert space.parse_cube("10") not in a


class TestCoverOperators:
    def brute(self, cover):
        return brute_minterms(cover.space, cover.cubes)

    def test_union(self):
        space = Space.binary(3)
        a = Cover.from_strings(space, ["00-"])
        b = Cover.from_strings(space, ["11-"])
        assert self.brute(a | b) == self.brute(a) | self.brute(b)

    def test_intersection_operator(self):
        space = Space.binary(3)
        a = Cover.from_strings(space, ["0--"])
        b = Cover.from_strings(space, ["-0-"])
        assert self.brute(a & b) == self.brute(a) & self.brute(b)

    def test_difference(self):
        space = Space.binary(3)
        a = Cover.from_strings(space, ["0--"])
        b = Cover.from_strings(space, ["00-"])
        assert self.brute(a - b) == self.brute(a) - self.brute(b)

    def test_invert(self):
        space = Space.binary(2)
        a = Cover.from_strings(space, ["01"])
        assert self.brute(~a) == set(space.iter_minterms()) - self.brute(a)

    def test_space_mismatch_rejected(self):
        a = Cover.universe(Space.binary(2))
        b = Cover.universe(Space.binary(3))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            a | b

    def test_space_mismatch_rejected_everywhere(self):
        """Every binary Cover operation guards against cross-space
        operands — a cube's bit layout is meaningless in another
        space, so silent acceptance would corrupt results."""
        a = Cover.universe(Space.binary(2))
        b = Cover.universe(Space.binary(3))
        with pytest.raises(InvalidSpecError):
            a.intersected(b)
        with pytest.raises(InvalidSpecError):
            a & b
        with pytest.raises(InvalidSpecError):
            a.union(b)
        with pytest.raises(InvalidSpecError):
            a.difference(b)
        with pytest.raises(InvalidSpecError):
            a.contains_cover(b)
        with pytest.raises(InvalidSpecError):
            a.equivalent(b)

class TestSharpProperties:
    """The disjoint-sharp decomposition is what minterm_count and the
    complement algorithms lean on: cubes must be pairwise disjoint and
    cover exactly ``a``'s minterms outside ``b``."""

    @settings(max_examples=150, deadline=None)
    @given(spaces_and_covers(), st.data())
    def test_sharp_is_disjoint_and_exact(self, sc, data):
        space, _ = sc
        bits_a = data.draw(st.lists(
            st.booleans(), min_size=space.width, max_size=space.width
        ))
        bits_b = data.draw(st.lists(
            st.booleans(), min_size=space.width, max_size=space.width
        ))
        a = random_cube(space, bits_a)
        b = random_cube(space, bits_b)
        pieces = sharp(space, a, b)
        # pairwise disjoint
        for i, x in enumerate(pieces):
            for y in pieces[i + 1:]:
                assert intersect(space, x, y) == 0
        # together they cover exactly a - b
        want = {
            m for m in space.iter_minterms()
            if contains(a, m) and not contains(b, m)
        }
        assert brute_minterms(space, pieces) == want


class TestMintermCountProperty:
    @settings(max_examples=150, deadline=None)
    @given(spaces_and_covers())
    def test_matches_bruteforce(self, sc):
        space, cubes = sc
        cover = Cover(space, cubes)
        assert cover.minterm_count() == len(brute_minterms(space, cubes))


class TestCoverOperatorProperties:
    def brute(self, cover):
        return brute_minterms(cover.space, cover.cubes)

    @settings(max_examples=60, deadline=None)
    @given(spaces_and_covers(), st.data())
    def test_demorgan(self, sc, data):
        space, cubes_a = sc
        n = data.draw(st.integers(min_value=0, max_value=4))
        cubes_b = []
        for _ in range(n):
            bits = data.draw(st.lists(
                st.booleans(), min_size=space.width, max_size=space.width
            ))
            cubes_b.append(random_cube(space, bits))
        a = Cover(space, cubes_a)
        b = Cover(space, cubes_b)
        lhs = ~(a | b)
        rhs = (~a) & (~b)
        assert self.brute(lhs) == self.brute(rhs)
