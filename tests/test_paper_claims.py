"""Integration tests pinning the paper's qualitative claims.

These run on small subsets so they stay test-suite-fast; the full
versions live in benchmarks/.  Each test names the paper claim it
guards, so a regression here means the reproduction story broke.
"""

import pytest

from repro.baselines import enc_encode, nova_encode
from repro.core import PicolaOptions, picola_encode, theorem1_cubes
from repro.encoding import (
    ConstraintSet,
    FaceConstraint,
    derive_face_constraints,
    evaluate_encoding,
)
from repro.fsm import load_benchmark

CLAIM_FSMS = ["bbara", "ex3", "lion9", "dk16", "donfile", "ex2", "keyb"]


@pytest.fixture(scope="module")
def suite():
    out = {}
    for name in CLAIM_FSMS:
        cset = derive_face_constraints(load_benchmark(name))
        pic = picola_encode(cset)
        nov = nova_encode(cset, seed=1)
        out[name] = {
            "cset": cset,
            "picola": evaluate_encoding(pic.encoding, cset),
            "picola_result": pic,
            "nova": evaluate_encoding(nov.encoding, cset),
        }
    return out


class TestTable1Claims:
    def test_picola_competitive_in_total(self, suite):
        """Paper: benchmark is ~11% more expensive with NOVA."""
        total_p = sum(s["picola"].total_cubes for s in suite.values())
        total_n = sum(s["nova"].total_cubes for s in suite.values())
        assert total_p <= total_n * 1.02, (
            f"PICOLA total {total_p} should not trail NOVA {total_n}"
        )

    def test_picola_wins_on_dense_machines(self, suite):
        """The dense problems are where guides pay off."""
        wins = sum(
            1
            for name in ["dk16", "donfile"]
            if suite[name]["picola"].total_cubes
            <= suite[name]["nova"].total_cubes
        )
        assert wins == 2

    def test_satisfied_constraints_cost_one_cube(self, suite):
        """Definition: a satisfied face constraint = 1 product term."""
        for s in suite.values():
            for score in s["picola"].scores:
                if score.satisfied:
                    assert score.cubes == 1

    def test_paper_example_guide_is_optimal(self):
        """Examples 3-4: infeasible L4 implemented with 2 cubes."""
        symbols = [f"s{i}" for i in range(1, 16)]
        cset = ConstraintSet(
            symbols,
            [
                FaceConstraint({"s2", "s6", "s8", "s14"}),
                FaceConstraint({"s1", "s2"}),
                FaceConstraint({"s9", "s14"}),
                FaceConstraint({"s6", "s7", "s8", "s9", "s14"}),
            ],
        )
        result = picola_encode(cset)
        report = evaluate_encoding(result.encoding, cset)
        # L1..L3 satisfiable together; L4 is infeasible in B^4 and
        # must cost exactly 2 cubes (the paper's optimum), for a
        # total of 5
        assert report.total_cubes <= 5
        l4 = next(
            s for s in report.scores
            if s.constraint.symbols
            == frozenset({"s6", "s7", "s8", "s9", "s14"})
        )
        assert not l4.satisfied
        assert l4.cubes == 2


class TestEncClaims:
    def test_enc_quality_comparable_when_it_converges(self):
        """Paper: 'the quality of the results is similar'."""
        cset = derive_face_constraints(load_benchmark("opus"))
        enc = enc_encode(cset, max_minimizations=4000)
        pic = picola_encode(cset)
        if enc.converged:
            pic_cubes = evaluate_encoding(
                pic.encoding, cset
            ).total_cubes
            assert abs(enc.total_cubes - pic_cubes) <= 3

    def test_enc_blows_budget_on_dense_problem(self):
        """Paper: ENC 'is not practical for medium and large
        examples' (fails on scf)."""
        cset = derive_face_constraints(load_benchmark("keyb"))
        enc = enc_encode(cset, max_minimizations=500)
        assert not enc.converged

    def test_picola_orders_of_magnitude_cheaper(self):
        """PICOLA never calls the logic minimizer while encoding."""
        import time

        cset = derive_face_constraints(load_benchmark("dk16"))
        t0 = time.perf_counter()
        picola_encode(cset)
        t_picola = time.perf_counter() - t0
        t0 = time.perf_counter()
        enc_encode(cset, max_minimizations=2000)
        t_enc = time.perf_counter() - t0
        assert t_picola < t_enc


class TestGuideClaims:
    def test_guides_do_not_hurt(self, suite):
        """Section 3.2: guides buy cheap violated constraints."""
        total_with = 0
        total_without = 0
        for name in CLAIM_FSMS:
            cset = suite[name]["cset"]
            with_g = suite[name]["picola"].total_cubes
            no_g = evaluate_encoding(
                picola_encode(
                    cset, options=PicolaOptions(use_guides=False)
                ).encoding,
                cset,
            ).total_cubes
            total_with += with_g
            total_without += no_g
        assert total_with <= total_without + 2

    def test_theorem1_bound_matches_espresso_when_cube(self, suite):
        """Theorem I is constructive: espresso can't do worse."""
        from repro.encoding import cubes_for_constraint

        for s in suite.values():
            enc = s["picola_result"].encoding
            for score in s["picola"].scores:
                if score.satisfied:
                    continue
                cubes = theorem1_cubes(
                    enc, sorted(score.constraint.symbols),
                    list(score.intruders),
                )
                if cubes is None:
                    continue
                assert score.cubes <= len(cubes)
