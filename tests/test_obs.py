"""Unit tests for the observability layer (repro.obs)."""

import io
import json
import time

import pytest

from repro import cubes
from repro.core import picola_encode
from repro.encoding import ConstraintSet, FaceConstraint
from repro.obs import (
    NULL_TRACER,
    ConsoleSink,
    JsonlSink,
    MemorySink,
    NullTracer,
    Tracer,
    get_tracer,
    profile_report,
    resolve_tracer,
    set_tracer,
)


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Tests must not leak a process-wide tracer into each other."""
    set_tracer(None)
    yield
    set_tracer(None)


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        # spans emit on close: innermost first
        names = [s["name"] for s in sink.spans]
        assert names == ["inner", "middle", "sibling", "outer"]
        by_name = {s["name"]: s for s in sink.spans}
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["parent"] == "outer"
        assert by_name["middle"]["depth"] == 1
        assert by_name["inner"]["parent"] == "middle"
        assert by_name["inner"]["depth"] == 2
        assert by_name["sibling"]["parent"] == "outer"
        assert by_name["sibling"]["depth"] == 1

    def test_span_attrs_and_set(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work", col=3) as span:
            span.set(children=7)
        (event,) = sink.spans
        assert event["attrs"] == {"col": 3, "children": 7}
        assert event["seconds"] >= 0.0

    def test_span_survives_exception(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [s["name"] for s in sink.spans] == ["inner", "outer"]
        # the stack unwound: a new span is top-level again
        with tracer.span("after"):
            pass
        assert sink.spans[-1]["parent"] is None

    def test_timings_histogram(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("step"):
                pass
        hist = tracer.timings()["step"]
        assert hist.n == 3
        assert hist.total >= 0.0
        assert hist.minimum <= hist.mean <= hist.maximum
        assert hist.to_dict()["n"] == 3


class TestCountersAndGauges:
    def test_counter_aggregation(self):
        tracer = Tracer()
        tracer.count("exact.nodes")
        tracer.count("exact.nodes", 41)
        tracer.count("other", 5)
        assert tracer.counter("exact.nodes") == 42
        assert tracer.counter("missing") == 0
        assert tracer.counters() == {"exact.nodes": 42, "other": 5}

    def test_counters_snapshot_is_a_copy(self):
        tracer = Tracer()
        tracer.count("a")
        snap = tracer.counters()
        snap["a"] = 999
        assert tracer.counter("a") == 1

    def test_gauge_keeps_last_min_max_n(self):
        tracer = Tracer()
        for value in (5.0, 2.0, 9.0):
            tracer.gauge("beam.width", value)
        g = tracer.gauges()["beam.width"]
        assert g == {"last": 9.0, "min": 2.0, "max": 9.0, "n": 3}

    def test_close_emits_aggregates_once(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.count("n", 3)
        tracer.gauge("g", 1.5)
        with tracer.span("s"):
            pass
        tracer.close()
        tracer.close()  # idempotent
        types = [e["type"] for e in sink.events]
        assert types.count("counters") == 1
        assert types.count("gauges") == 1
        assert types.count("timings") == 1
        assert sink.counters() == {"n": 3}


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        with tracer.span("outer", fsm="lion"):
            with tracer.span("inner"):
                pass
        tracer.count("work.items", 7)
        tracer.gauge("work.best", 3.0)
        tracer.close()
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert all(isinstance(e, dict) for e in events)
        spans = [e for e in events if e["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[1]["attrs"] == {"fsm": "lion"}
        (counters,) = [e for e in events if e["type"] == "counters"]
        assert counters["values"] == {"work.items": 7}
        (timings,) = [e for e in events if e["type"] == "timings"]
        assert timings["values"]["outer"]["n"] == 1

    def test_jsonl_accepts_open_handle(self):
        handle = io.StringIO()
        tracer = Tracer(JsonlSink(handle))
        tracer.count("x")
        tracer.close()
        lines = handle.getvalue().splitlines()
        assert json.loads(lines[0]) == {
            "type": "counters", "values": {"x": 1},
        }

    def test_console_sink_renders_spans(self):
        out = io.StringIO()
        tracer = Tracer(ConsoleSink(out))
        with tracer.span("outer"):
            with tracer.span("inner", col=2):
                pass
        tracer.count("n", 4)
        tracer.close()
        text = out.getvalue()
        assert "  inner:" in text  # indented by depth
        assert "[col=2]" in text
        assert "n = 4" in text

    def test_memory_sink_clear(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("s"):
            pass
        assert sink.spans
        sink.clear()
        assert sink.events == []


class TestDefaultTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert resolve_tracer(None) is NULL_TRACER

    def test_set_and_reset(self):
        tracer = Tracer()
        assert set_tracer(tracer) is tracer
        assert get_tracer() is tracer
        assert resolve_tracer(None) is tracer
        set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_explicit_tracer_wins(self):
        installed, explicit = Tracer(), Tracer()
        set_tracer(installed)
        assert resolve_tracer(explicit) is explicit

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert null.enabled is False
        assert Tracer.enabled is True
        with null.span("anything", attr=1) as span:
            span.set(more=2)
        # one shared, reusable context manager: no allocation per span
        assert null.span("a") is null.span("b")
        null.count("n", 5)
        null.gauge("g", 1.0)
        assert null.counter("n") == 0
        assert null.counters() == {}
        assert null.gauges() == {}
        assert null.timings() == {}
        null.close()


class TestSolverIntegration:
    def test_picola_populates_counters_and_spans(self):
        symbols = [f"s{i}" for i in range(6)]
        cset = ConstraintSet(
            symbols,
            [
                FaceConstraint({"s0", "s1"}),
                FaceConstraint({"s2", "s3", "s4"}),
            ],
        )
        sink = MemorySink()
        tracer = Tracer(sink)
        picola_encode(cset, tracer=tracer)
        assert tracer.counter("picola.columns") > 0
        assert tracer.counter("picola.beam_states") > 0
        names = {s["name"] for s in sink.spans}
        assert "picola/encode" in names
        assert "picola/column" in names

    def test_profile_report_renders(self):
        tracer = Tracer()
        with tracer.span("picola/encode"):
            with tracer.span("picola/column"):
                pass
        tracer.count("picola.columns", 1)
        tracer.gauge("picola.intruder_set", 2)
        text = profile_report(tracer).render()
        assert "picola/column" in text
        assert "picola.columns" in text
        assert "picola.intruder_set" in text


class TestNullTracerOverhead:
    """The disabled tracer must be ~free on an instrumented hot loop.

    The workload mirrors a real instrumented loop head: a batch of
    cube-kernel operations (what solver inner loops actually do)
    followed by one tracer call — the same shape as the seams in
    :mod:`repro.core` and :mod:`repro.espresso`.  We compare the
    minimum over several repeats (minimum, not mean: scheduler noise
    only ever adds time) of the instrumented loop against the bare
    loop and require <5% overhead.
    """

    REPEATS = 9
    ROWS = 400

    @staticmethod
    def _workload(space, cube_list, tracer):
        acc = 0
        for _ in range(TestNullTracerOverhead.ROWS):
            a = cube_list[0]
            for b in cube_list:
                acc += cubes.distance(space, a, b)
                acc += cubes.cube_size(
                    space, cubes.intersect(space, a, b)
                )
            if tracer is not None:
                tracer.count("bench.rows")
        return acc

    @classmethod
    def _timed(cls, space, cube_list, tracer):
        t0 = time.perf_counter()
        cls._workload(space, cube_list, tracer)
        return time.perf_counter() - t0

    def test_disabled_overhead_under_five_percent(self):
        space = cubes.Space([2] * 8)
        cube_list = [
            space.universe & ~space.literal(i % 8, (i // 3) % 2)
            for i in range(24)
        ]
        # warm up both paths before timing
        self._workload(space, cube_list, None)
        self._workload(space, cube_list, NULL_TRACER)
        # interleave the two variants so clock-speed drift between
        # early and late trials cannot masquerade as tracer overhead;
        # take the minimum (noise only ever adds time)
        bare_trials, nulled_trials = [], []
        for _ in range(self.REPEATS):
            bare_trials.append(self._timed(space, cube_list, None))
            nulled_trials.append(
                self._timed(space, cube_list, NULL_TRACER)
            )
        bare = min(bare_trials)
        nulled = min(nulled_trials)
        ratio = nulled / bare
        assert ratio < 1.05, (
            f"NullTracer overhead {100 * (ratio - 1):.2f}% "
            f"(bare {bare:.6f}s vs instrumented {nulled:.6f}s)"
        )


class TestTracerThreadSafety:
    """Regression tests for the PR-9 Tracer data race: concurrent
    count()/span()/gauge() calls from `picola serve` handler threads
    lost updates before the aggregates were lock-guarded."""

    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, work):
        import sys
        import threading

        # force frequent preemption so torn read-modify-write cycles
        # actually interleave instead of hiding behind long timeslices
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(self.THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old)

    def test_concurrent_counts_are_exact(self):
        tracer = Tracer()

        def work(i):
            for _ in range(self.PER_THREAD):
                tracer.count("hammer.n")
                tracer.gauge("hammer.g", i)

        self._hammer(work)
        assert tracer.counter("hammer.n") == self.THREADS * self.PER_THREAD
        assert tracer.gauges()["hammer.g"]["n"] == (
            self.THREADS * self.PER_THREAD
        )

    def test_concurrent_spans_keep_exact_histograms(self):
        tracer = Tracer()

        def work(i):
            for _ in range(self.PER_THREAD // 4):
                with tracer.span("hammer/outer"):
                    with tracer.span("hammer/inner"):
                        pass

        self._hammer(work)
        expected = self.THREADS * (self.PER_THREAD // 4)
        assert tracer.timings()["hammer/outer"].n == expected
        assert tracer.timings()["hammer/inner"].n == expected

    def test_span_stacks_are_thread_local(self):
        sink = MemorySink()
        tracer = Tracer(sink)

        def work(i):
            for _ in range(50):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass

        self._hammer(work)
        inner = [e for e in sink.spans if e["name"] == "inner"]
        outer = [e for e in sink.spans if e["name"] == "outer"]
        # concurrent nesting never bleeds across threads: every inner
        # span sits at depth 1 under its own thread's outer span
        assert {e["depth"] for e in inner} == {1}
        assert {e["parent"] for e in inner} == {"outer"}
        assert {e["depth"] for e in outer} == {0}

    def test_snapshots_race_free_against_writers(self):
        import threading

        tracer = Tracer()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    tracer.counters()
                    tracer.gauges()
                    tracer.timings()
                except RuntimeError as exc:  # dict changed size, ...
                    errors.append(exc)
                    return

        snap = threading.Thread(target=reader)
        snap.start()

        def work(i):
            for k in range(self.PER_THREAD):
                tracer.count(f"hammer.{k % 97}")
                tracer.gauge(f"gauge.{k % 89}", k)

        try:
            self._hammer(work)
        finally:
            stop.set()
            snap.join()
        assert errors == []
