"""Tests for state minimization and dichotomy-cover encodings."""

import pytest

from repro.encoding import (
    ConstraintSet,
    FaceConstraint,
    build_full_encoding,
    dichotomy_cover_length,
)
from repro.fsm import (
    equivalent_state_classes,
    load_benchmark,
    parse_kiss,
    reduce_states,
)

# b and c are equivalent (identical rows up to renaming); d is not
REDUNDANT = """
.i 1
.o 1
.r a
0 a b 0
1 a c 0
0 b a 1
1 b d 0
0 c a 1
1 c d 0
0 d d 1
1 d a 1
"""


class TestStateReduction:
    def test_detects_equivalent_pair(self):
        fsm = parse_kiss(REDUNDANT)
        classes = equivalent_state_classes(fsm)
        merged = [c for c in classes if len(c) > 1]
        assert merged == [["b", "c"]]

    def test_reduce_produces_smaller_machine(self):
        fsm = parse_kiss(REDUNDANT)
        result = reduce_states(fsm)
        assert result.removed == 1
        assert result.fsm.n_states == 3
        assert result.representative["c"] == "b"
        assert result.fsm.reset_state == "a"

    def test_reduced_machine_behaves_identically(self):
        from repro.fsm import SymbolicSimulator

        fsm = parse_kiss(REDUNDANT)
        result = reduce_states(fsm)
        sim_a = SymbolicSimulator(fsm)
        sim_b = SymbolicSimulator(result.fsm)
        import random

        rng = random.Random(4)
        for _ in range(200):
            x = rng.choice("01")
            na, oa = sim_a.step(x)
            nb, ob = sim_b.step(x)
            assert oa == ob
            assert result.representative[na] == nb

    def test_already_minimal_machine_unchanged(self):
        fsm = load_benchmark("shiftreg")
        result = reduce_states(fsm)
        assert result.removed == 0
        assert result.fsm.n_states == fsm.n_states

    def test_modulo12_is_minimal(self):
        fsm = load_benchmark("modulo12")
        assert reduce_states(fsm).removed == 0

    def test_incompletely_specified_rejected(self):
        fsm = parse_kiss(".i 1\n.o 1\n.r a\n0 a a 1\n1 a b 1\n- b a 0\n")
        # state a has both rows but b's rows cover everything; make a
        # machine that's genuinely incomplete:
        fsm2 = parse_kiss(".i 1\n.o 1\n.r a\n0 a a 1\n0 b a 0\n1 b b 1\n")
        with pytest.raises(ValueError):
            reduce_states(fsm2)

    def test_dc_outputs_rejected(self):
        fsm = parse_kiss(
            ".i 1\n.o 1\n.r a\n0 a a -\n1 a b 1\n0 b a 1\n1 b b 0\n"
        )
        with pytest.raises(ValueError):
            reduce_states(fsm)


def cset_of(n, groups):
    syms = [f"s{i}" for i in range(n)]
    return ConstraintSet(
        syms, [FaceConstraint({f"s{i}" for i in g}) for g in groups]
    )


class TestDichotomyCover:
    def test_no_constraints_still_distinguishes(self):
        cs = cset_of(4, [])
        n, columns = dichotomy_cover_length(cs)
        assert n >= 2  # 4 symbols need 2 splitting columns
        enc = build_full_encoding(cs)
        assert enc.is_injective()

    def test_full_encoding_satisfies_everything(self):
        cs = cset_of(8, [[0, 1], [2, 3], [4, 5, 6, 7], [0, 1, 2, 3]])
        enc = build_full_encoding(cs)
        for c in cs.nontrivial():
            assert enc.satisfies(c.symbols), sorted(c.symbols)

    def test_infeasible_at_min_length_needs_more_bits(self):
        # 5-of-6 constraint: impossible in 3 bits, fine in 4
        cs = cset_of(6, [[0, 1, 2, 3, 4]])
        n, _ = dichotomy_cover_length(cs)
        assert n >= 4
        enc = build_full_encoding(cs)
        assert enc.satisfies(frozenset(f"s{i}" for i in range(5)))

    def test_single_symbol(self):
        cs = cset_of(1, [])
        enc = build_full_encoding(cs)
        assert enc.is_injective()

    def test_cover_length_at_least_log2(self):
        cs = cset_of(9, [[0, 1, 2]])
        n, _ = dichotomy_cover_length(cs)
        assert n >= 4  # 9 symbols cannot fit in 3 columns

    def test_matches_minimum_satisfying_length_upper_bound(self):
        from repro.encoding import minimum_satisfying_length

        cs = cset_of(6, [[0, 1, 2, 3, 4], [0, 1]])
        exact_len = minimum_satisfying_length(cs)
        cover_len, _ = dichotomy_cover_length(cs)
        assert cover_len >= exact_len  # cover is an upper bound
