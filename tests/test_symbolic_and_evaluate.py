"""Tests for symbolic constraint derivation and encoding evaluation."""

import pytest

from repro.cubes import Space
from repro.encoding import (
    ConstraintSet,
    Encoding,
    FaceConstraint,
    constraint_function,
    constraints_from_cover,
    cubes_for_constraint,
    derive_face_constraints,
    evaluate_encoding,
    minimize_symbolic_cover,
    satisfied_dichotomies,
)
from repro.encoding.symbolic import _fast_symbolic_merge
from repro.fsm import fsm_to_symbolic_cover, load_benchmark, parse_kiss

# two states behave identically on input 0- (both go to 'hub' with
# output 1): symbolic minimization must merge them into one implicant,
# yielding the face constraint {a, b}
MERGEABLE = """
.i 2
.o 1
.r a
0- a hub 1
1- a a 0
0- b hub 1
1- b b 0
0- hub hub 0
1- hub a 0
"""


class TestSymbolicDerivation:
    def test_mergeable_states_become_constraint(self):
        fsm = parse_kiss(MERGEABLE)
        cset = derive_face_constraints(fsm)
        groups = [c.symbols for c in cset.nontrivial()]
        assert frozenset({"a", "b"}) in groups

    def test_constraint_weights_count_implicants(self):
        fsm = parse_kiss(MERGEABLE)
        cset = derive_face_constraints(fsm)
        for c in cset.nontrivial():
            assert c.weight >= 1.0

    def test_minimized_cover_still_covers(self):
        fsm = parse_kiss(MERGEABLE)
        space, original, states = fsm_to_symbolic_cover(fsm)
        space2, minimized, states2 = minimize_symbolic_cover(fsm)
        assert space == space2
        from repro.cubes import cover_contains_cube

        for cube in original:
            assert cover_contains_cube(space, minimized, cube)
        for cube in minimized:
            assert cover_contains_cube(space, original, cube)

    def test_constraints_from_cover_rejects_bad_states(self):
        fsm = parse_kiss(MERGEABLE)
        space, cover, states = fsm_to_symbolic_cover(fsm)
        with pytest.raises(ValueError):
            constraints_from_cover(space, cover, states + ["extra"])

    def test_fast_merge_equivalent_to_cover(self):
        fsm = load_benchmark("dk16")
        space, cover, states = fsm_to_symbolic_cover(fsm)
        merged = _fast_symbolic_merge(space, list(cover), len(states))
        from repro.cubes import cover_contains_cube

        assert len(merged) <= len(cover)
        for cube in cover:
            assert cover_contains_cube(space, merged, cube)
        for cube in merged:
            assert cover_contains_cube(space, cover, cube)

    def test_benchmark_constraint_counts_plausible(self):
        for name in ["bbara", "lion9", "keyb"]:
            cset = derive_face_constraints(load_benchmark(name))
            assert 1 <= len(cset.nontrivial()) <= 60


class TestConstraintFunction:
    def enc(self):
        return Encoding(
            ["a", "b", "c", "d", "e"],
            {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4},
            3,
        )

    def test_onset_and_dcset_shapes(self):
        space, onset, dcset = constraint_function(
            self.enc(), FaceConstraint({"a", "b"})
        )
        assert len(onset) == 2
        assert len(dcset) == 3  # codes 5, 6, 7 unused

    def test_satisfied_costs_one_cube(self):
        assert cubes_for_constraint(
            self.enc(), FaceConstraint({"a", "b"})
        ) == 1

    def test_violated_costs_more(self):
        # {a, d} spans face 0--, which contains b and c
        assert cubes_for_constraint(
            self.enc(), FaceConstraint({"a", "d"})
        ) == 2

    def test_dc_codes_reduce_cost(self):
        # {c, e}: face --0 would contain a; with codes 5..7 dc the
        # minimizer can still do it in 2 cubes at worst
        cost = cubes_for_constraint(self.enc(), FaceConstraint({"c", "e"}))
        assert cost <= 2

    def test_exact_and_heuristic_agree_on_small(self):
        enc = self.enc()
        for members in [{"a", "b"}, {"a", "d"}, {"b", "c", "d"}]:
            c = FaceConstraint(members)
            exact = cubes_for_constraint(enc, c, exact=True)
            heur = cubes_for_constraint(enc, c, exact=False)
            assert heur >= exact
            assert heur - exact <= 1


class TestEvaluateEncoding:
    def test_report_totals(self):
        syms = ["a", "b", "c", "d"]
        cset = ConstraintSet(
            syms, [FaceConstraint({"a", "b"}), FaceConstraint({"a", "c"})]
        )
        enc = Encoding(syms, {"a": 0, "b": 1, "c": 2, "d": 3}, 2)
        report = evaluate_encoding(enc, cset)
        assert report.n_constraints == 2
        assert report.n_satisfied == 2
        assert report.total_cubes == 2
        assert "2/2" in report.summary()

    def test_rejects_non_injective(self):
        syms = ["a", "b"]
        cset = ConstraintSet(syms, [])
        enc = Encoding(syms, {"a": 0, "b": 0}, 1)
        with pytest.raises(ValueError):
            evaluate_encoding(enc, cset)

    def test_satisfied_dichotomies_counts(self):
        syms = ["a", "b", "c", "d"]
        cset = ConstraintSet(syms, [FaceConstraint({"a", "b"})])
        enc = Encoding(syms, {"a": 0, "b": 1, "c": 2, "d": 3}, 2)
        done, total = satisfied_dichotomies(enc, cset)
        assert total == 2  # outsiders c and d
        assert done == 2  # column 0 separates both


class TestIncompleteSpecification:
    def test_missing_rows_become_dc(self):
        from repro.fsm import parse_kiss

        # state b has no row for input 1: that territory is dc
        kiss = ".i 1\n.o 1\n.r a\n0 a b 1\n1 a a 0\n0 b a 1\n"
        fsm = parse_kiss(kiss)
        space, cover, dc, states = fsm_to_symbolic_cover(
            fsm, with_dc=True
        )
        assert dc, "unspecified territory must appear as don't-care"
        # the dc cube must cover (input=1, state=b, any output)
        from repro.cubes import contains

        b = states.index("b")
        target = space.make_cube(
            [0b10, 1 << b, space.part_masks[-1] >> space.offsets[-1]]
        )
        assert any(contains(d, target) for d in dc)

    def test_dc_outputs_collected(self):
        from repro.fsm import parse_kiss

        kiss = ".i 1\n.o 2\n.r a\n0 a b 1-\n1 a a 00\n0 b a 11\n1 b b 00\n"
        fsm = parse_kiss(kiss)
        space, cover, dc, states = fsm_to_symbolic_cover(
            fsm, with_dc=True
        )
        # row "0 a b 1-": output 1 of that row is dc
        assert any(
            space.field(d, space.num_parts - 1)
            == 1 << (len(states) + 1)
            for d in dc
        )

    def test_minimization_exploits_dc(self):
        from repro.fsm import parse_kiss
        from repro.encoding import minimize_symbolic_cover

        # two states share behaviour on input 0; state b unspecified
        # on input 1 -> rows can merge with a's thanks to dc
        kiss = (
            ".i 1\n.o 1\n.r a\n"
            "0 a hub 1\n1 a a 0\n"
            "0 b hub 1\n"
            "0 hub hub 0\n1 hub a 0\n"
        )
        fsm = parse_kiss(kiss)
        space, minimized, states = minimize_symbolic_cover(fsm)
        cset = constraints_from_cover(space, minimized, states)
        groups = [c.symbols for c in cset.nontrivial()]
        assert frozenset({"a", "b"}) in groups
