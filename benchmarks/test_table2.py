"""Benchmark regenerating the paper's Table II (state assignment).

Each case runs the full state-assignment pipeline — symbolic
minimization, encoding (NOVA i_hybrid / io_hybrid / the PICOLA-based
NEW tool), encoded-PLA construction and espresso — and reports the
two-level sizes plus encode-time ratios, like the paper's Table II.

Run:  pytest benchmarks/test_table2.py --benchmark-only
Full sweep (all 19 rows, slow): set REPRO_FULL_TABLES=1.
"""

import os

import pytest

from repro.fsm import TABLE2_FSMS
from repro.harness import QUICK_FSMS2, run_table2

FULL = bool(os.environ.get("REPRO_FULL_TABLES"))
FSMS = TABLE2_FSMS if FULL else QUICK_FSMS2


@pytest.mark.parametrize("fsm", FSMS)
def test_table2_row(benchmark, fsm):
    """One Table II row: sizes and time ratios for the three tools."""

    def run():
        return run_table2([fsm])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    row = report.rows[0]
    assert all(size > 0 for size in row.sizes.values())
    print(
        f"\n[Table II] {row.fsm}: "
        f"NOVA-ih={row.sizes['nova_ih']} "
        f"NOVA-ioh={row.sizes['nova_ioh']} "
        f"NEW={row.sizes['picola']} "
        f"time-ratio NEW/ih={row.time_ratio('picola'):.2f}"
    )


def test_table2_summary(benchmark):
    """The whole (quick) table with totals."""

    def run():
        return run_table2(QUICK_FSMS2)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + report.render())
    new = report.total_size("picola")
    ih = report.total_size("nova_ih")
    # the paper's qualitative claim: NEW compares favorably
    assert new <= ih * 1.10, (
        f"NEW ({new}) should be competitive with NOVA i_hybrid ({ih})"
    )
