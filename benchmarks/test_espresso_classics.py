"""Espresso on the classic arithmetic PLAs of the literature.

rd53/rd73/xor5/adr4/sqr4/maj5 are the standard two-level minimization
probes; the published espresso results are known, so this bench is a
direct quality regression on our minimizer: parity is asserted exactly
(its minimum SOP is 2^(n-1) terms by theory), the rest within a small
slack of the published counts.

Run:  pytest benchmarks/test_espresso_classics.py --benchmark-only
"""

import pytest

from repro.espresso import CLASSICS, espresso_pla, verify_pla_minimization

#: allowed slack over the published espresso cube counts
SLACK = {"rd53": 0, "rd73": 0, "xor5": 0, "adr4": 2, "sqr4": 3, "maj5": 0}


@pytest.mark.parametrize("name", sorted(CLASSICS))
def test_classic_function(benchmark, name):
    make, reference = CLASSICS[name]
    pla = make()

    def run():
        return espresso_pla(pla)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    verify_pla_minimization(pla, out)
    print(
        f"\n[Classics] {name}: {pla.num_terms()} minterms -> "
        f"{out.num_terms()} cubes (published {reference})"
    )
    assert out.num_terms() <= reference + SLACK[name]
