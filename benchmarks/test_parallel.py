"""Benchmark the parallel experiment engine against the serial path.

Times a 10-row Table I regeneration at ``jobs=1`` vs ``jobs=cpu_count``
and asserts the speedup acceptance criterion (>= 2x on a 4-core
runner).  The timing test is skipped on narrower machines — a 1- or
2-core box cannot meaningfully demonstrate pool scaling — but the
correctness cross-check (identical tables) runs everywhere.

Run:  pytest benchmarks/test_parallel.py --benchmark-only
"""

import os
import time

import pytest

from repro.harness import QUICK_FSMS, run_table1

FSMS = QUICK_FSMS[:10]


def _timed(jobs):
    t0 = time.perf_counter()
    report = run_table1(FSMS, include_enc=False, jobs=jobs)
    return report, time.perf_counter() - t0


def test_parallel_matches_serial_output(benchmark):
    """Correctness under load: jobs=0 renders the identical table."""
    serial = run_table1(FSMS, include_enc=False)

    def run():
        return run_table1(FSMS, include_enc=False, jobs=0)

    par = benchmark.pedantic(run, rounds=1, iterations=1)
    assert par.render() == serial.render()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup criterion is defined for a 4-core runner",
)
def test_parallel_speedup(benchmark):
    """>= 2x wall-clock speedup for a 10-row table on >= 4 cores."""
    # warm caches (benchmark loaders, solver imports) off the clock
    run_table1(FSMS[:1], include_enc=False)

    def run():
        serial_report, t_serial = _timed(jobs=1)
        par_report, t_par = _timed(jobs=0)
        assert par_report.render() == serial_report.render()
        return t_serial, t_par

    t_serial, t_par = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = t_serial / t_par
    print(
        f"\n[parallel] 10-row table1: serial {t_serial:.2f}s, "
        f"jobs=0 {t_par:.2f}s, speedup {speedup:.2f}x "
        f"({os.cpu_count()} cores)"
    )
    assert speedup >= 2.0
