"""The paper's motivating trade-off: code length vs implementation cost.

Section 1 argues that satisfying the *complete* face-constraint set
usually needs more than ``ceil(log2 n)`` code bits, and the longer
codes eat the area gains — hence the minimum-length partial problem.
This bench regenerates that argument as data: for each FSM it sweeps
the code length from the minimum upward and reports satisfied
constraints, cubes, and the area proxy (cubes x 2nv), plus the
minimum fully-satisfying length.

Run:  pytest benchmarks/test_motivation.py --benchmark-only
"""

import pytest

from repro.encoding import (
    derive_face_constraints,
    length_tradeoff,
    minimum_satisfying_length,
)
from repro.fsm import load_benchmark

MOTIVATION_FSMS = ["bbara", "ex3", "lion9", "dk16", "keyb"]


@pytest.mark.parametrize("fsm", MOTIVATION_FSMS)
def test_length_tradeoff(benchmark, fsm):
    cset = derive_face_constraints(load_benchmark(fsm))

    def run():
        return length_tradeoff(cset, max_extra_bits=2)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Motivation] {fsm}:")
    for p in points:
        print(
            f"  nv={p.nv}: satisfied {p.satisfied}/{p.total}, "
            f"cubes={p.cubes}, area~{p.area_proxy}"
        )
    # satisfaction must not degrade with more bits
    assert points[-1].satisfied >= points[0].satisfied


def test_minimum_satisfying_length(benchmark):
    def run():
        out = {}
        for fsm in MOTIVATION_FSMS:
            cset = derive_face_constraints(load_benchmark(fsm))
            out[fsm] = (cset.min_code_length(),
                        minimum_satisfying_length(cset, max_extra_bits=4))
        return out

    lengths = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[Motivation] minimum fully-satisfying length:")
    for fsm, (base, full) in lengths.items():
        extra = "unknown (>+4)" if full is None else f"+{full - base}"
        print(f"  {fsm}: min {base} bits, full embedding {extra}")
    # at least one machine should need extra bits — that is the
    # paper's whole motivation for the partial problem
    assert any(
        full is None or full > base for base, full in lengths.values()
    )
