"""Benchmark regenerating the paper's Table I.

Each benchmark case reproduces one Table I row: derive the
input-encoding problem from the FSM, run NOVA / ENC / PICOLA at
minimum code length, and score all three with the espresso-based
evaluator.  The fixture prints the row so a ``--benchmark-only`` run
shows the same numbers the paper's table reports; the module-level
summary test renders the full table with win/loss statistics.

Run:  pytest benchmarks/test_table1.py --benchmark-only
Full sweep (all 33 rows, slow): set REPRO_FULL_TABLES=1.
"""

import os

import pytest

from repro.harness import QUICK_FSMS, run_table1
from repro.fsm import TABLE1_FSMS

FULL = bool(os.environ.get("REPRO_FULL_TABLES"))
FSMS = TABLE1_FSMS if FULL else QUICK_FSMS


@pytest.mark.parametrize("fsm", FSMS)
def test_table1_row(benchmark, fsm):
    """One Table I row (NOVA vs ENC vs PICOLA cube counts)."""

    def run():
        return run_table1([fsm], include_enc=not FULL, enc_budget=3000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    row = report.rows[0]
    assert row.cubes_picola >= row.n_constraints or row.n_constraints == 0
    print(
        f"\n[Table I] {row.fsm}: const={row.n_constraints} "
        f"NOVA={row.cubes_nova} ENC={row.cubes_enc} "
        f"PICOLA={row.cubes_picola} "
        f"(paper PICOLA={row.paper_picola})"
    )


def test_table1_summary(benchmark):
    """The whole (quick) table plus the paper's summary statistics."""

    def run():
        return run_table1(QUICK_FSMS, include_enc=False)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + report.render())
    # the paper's qualitative claim: NOVA is more expensive overall
    assert report.nova_overhead >= -0.10, (
        "PICOLA should be at least competitive with NOVA overall"
    )
