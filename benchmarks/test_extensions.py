"""Extension bench: the full state-assignment tool zoo.

Beyond the paper's Table II (NOVA i/io-hybrid vs the NEW tool), this
bench adds the other classic encoder families — MUSTANG's
adjacency-driven assignment (p and n variants), pure greedy NOVA, and
the trivial natural/gray strawmen — under the identical two-level cost
model.  The expected picture: face-constraint-driven tools (PICOLA,
NOVA) lead; adjacency-driven MUSTANG trails them on two-level size
(it optimizes for multi-level sharing); the strawmen trail everything.

Run:  pytest benchmarks/test_extensions.py --benchmark-only
"""

import pytest

from repro.encoding import derive_face_constraints
from repro.fsm import load_benchmark
from repro.stateassign import assign_states

EXT_FSMS = ["dk16", "donfile", "ex2", "keyb", "tma", "s386"]
EXT_METHODS = [
    "picola", "nova_ih", "nova_greedy", "mustang_p", "mustang_n",
    "natural", "gray",
]


@pytest.mark.parametrize("method", EXT_METHODS)
def test_method_total_size(benchmark, method):
    def run():
        total = 0
        for name in EXT_FSMS:
            fsm = load_benchmark(name)
            cset = derive_face_constraints(fsm)
            total += assign_states(
                fsm, method, constraints=cset, seed=1
            ).size
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Extensions] {method}: total size = {total}")
    assert total > 0


def test_tool_ranking(benchmark):
    """Face-driven tools should beat the strawmen in total size."""

    def run():
        totals = {}
        for method in ["picola", "mustang_n", "natural"]:
            totals[method] = 0
            for name in EXT_FSMS:
                fsm = load_benchmark(name)
                cset = derive_face_constraints(fsm)
                totals[method] += assign_states(
                    fsm, method, constraints=cset, seed=1
                ).size
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Extensions] totals: {totals}")
    assert totals["picola"] <= totals["natural"]
    assert totals["picola"] <= totals["mustang_n"] * 1.05
