"""Seed-stability bench: Table I conclusions across FSM draws.

The benchmark machines are seeded synthetic stand-ins; this bench
re-runs the quick Table I comparison under several generator seeds
and asserts the paper's headline conclusion (PICOLA at least
competitive with NOVA overall) holds for every draw — the
reproduction's robustness evidence.

Run:  pytest benchmarks/test_sweep.py --benchmark-only
"""

from repro.harness import run_seed_sweep


def test_seed_stability(benchmark):
    def run():
        return run_seed_sweep(seeds=(0, 1, 2))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + report.render())
    assert report.picola_never_behind(), (
        "PICOLA fell behind NOVA in total cubes under some FSM draw"
    )
    assert report.mean_overhead() > -0.02
