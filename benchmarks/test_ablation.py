"""Ablation benches for PICOLA's design choices (DESIGN.md exp. A-D).

Measures total constraint-implementation cubes for each PICOLA
variant over the quick FSM subset: guides on/off, dynamic vs static
classification, objective presets, final repair, beam width.

Run:  pytest benchmarks/test_ablation.py --benchmark-only
"""

import pytest

from repro.harness import ABLATION_VARIANTS, run_ablation

ABLATION_FSMS = ["bbara", "ex3", "lion9", "dk16", "keyb", "ex2", "donfile"]


@pytest.mark.parametrize("variant", sorted(ABLATION_VARIANTS))
def test_ablation_variant(benchmark, variant):
    def run():
        return run_ablation(ABLATION_FSMS, [variant])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    total = report.total(variant)
    assert total > 0
    print(f"\n[Ablation] {variant}: total cubes = {total}")


def test_ablation_summary(benchmark):
    def run():
        return run_ablation(ABLATION_FSMS)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + report.render())
    # guide constraints should not hurt (Section 3.2's claim)
    assert report.total("full") <= report.total("no_guides") + 2
