"""Micro-benchmarks of the substrates: bulk cube kernel, espresso, PICOLA.

All timing goes through :class:`repro.obs.Tracer` spans and their
per-name histograms — the same seam ``--profile`` reports — so the
committed ``BENCH_kernel.json`` and a profiling run agree on what was
measured.

Two layers:

* *kernel workloads* run the bulk primitives the tautology/complement/
  expand hot paths are built from, at representative cover sizes,
  under BOTH backends; the python/numpy speedup per workload is the
  number the regression gate defends (>20% drop fails).
* *end-to-end smokes* time espresso and the PICOLA pipeline under the
  active kernel; recorded for context, not gated (they are dominated
  by small-cover recursion where both backends intentionally run the
  same scalar code).

Run:  python benchmarks/test_kernels.py --update   # rewrite BENCH_kernel.json
      python benchmarks/test_kernels.py --check    # fail on >20% regression
      pytest benchmarks/test_kernels.py            # smoke the workloads once
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from repro.cubes import Space
from repro.cubes.bulk import active_kernel, available_kernels, get_kernel
from repro.encoding import derive_face_constraints
from repro.espresso import espresso
from repro.fsm import load_benchmark
from repro.obs import Tracer
from repro.stateassign import assign_states

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: a kernel workload may lose this fraction of its recorded speedup
#: before --check fails (ratios, so the gate is machine-independent)
TOLERANCE = 0.20

_REPEATS = 5


def _random_cover(space, n_cubes, seed, dash=0.5):
    rng = random.Random(seed)
    cover = []
    for _ in range(n_cubes):
        cube = 0
        for size, offset in zip(space.part_sizes, space.offsets):
            if rng.random() < dash:
                field = (1 << size) - 1
            else:
                field = 1 << rng.randrange(size)
            cube |= field << offset
        cover.append(cube)
    return cover


# ----------------------------------------------------------------------
# kernel workloads: (space, cover) fixtures + a per-kernel body
# ----------------------------------------------------------------------

_SPACE = Space.binary(16, 8)
_BIG = _random_cover(_SPACE, 1500, seed=3)
_MID = _random_cover(_SPACE, 500, seed=5)
_PIVOT = _BIG[0]


def _tautology_node(kernel, packed):
    """The per-recursion-node work of the tautology check."""
    kernel.union_info(_SPACE, packed)
    part = kernel.binate_part(_SPACE, packed)
    for value in range(_SPACE.part_sizes[part]):
        kernel.cofactor_value(_SPACE, packed, part, value)


def _complement_absorb(kernel, packed):
    """The absorption pass complement runs on intermediate covers."""
    kernel.absorb(_SPACE, packed)


def _expand_raise(kernel, packed):
    """One EXPAND raise round: blocked bits + best-raise scoring."""
    kernel.blocked_raises(_SPACE, packed, _PIVOT)
    kernel.best_raise(_SPACE, packed, _PIVOT, _SPACE.universe & ~_PIVOT)


def _containment_dedup(kernel, packed):
    """The pairwise-containment dedup closing the EXPAND pass."""
    kernel.dedup_keep_mask(_SPACE, packed)


KERNEL_WORKLOADS = {
    "tautology_node": (_BIG, _tautology_node),
    "complement_absorb": (_MID, _complement_absorb),
    "expand_raise": (_BIG, _expand_raise),
    "containment_dedup": (_BIG, _containment_dedup),
}


def time_kernel_workloads(tracer=None, repeats=_REPEATS):
    """Mean seconds per workload per backend, via tracer histograms."""
    tracer = tracer if tracer is not None else Tracer()
    for name, (cover, body) in KERNEL_WORKLOADS.items():
        for backend in available_kernels():
            kernel = get_kernel(backend)
            packed = kernel.pack(_SPACE, cover)
            body(kernel, packed)  # warmup: materialize cached forms
            for _ in range(repeats):
                with tracer.span(f"bench.{name}.{backend}"):
                    body(kernel, packed)
    timings = tracer.timings()
    results = {}
    for name in KERNEL_WORKLOADS:
        results[name] = {
            backend: timings[f"bench.{name}.{backend}"].mean
            for backend in available_kernels()
        }
        if "numpy" in results[name]:
            results[name]["speedup"] = round(
                results[name]["python"] / results[name]["numpy"], 2
            )
    return results


# ----------------------------------------------------------------------
# end-to-end smokes (active kernel; recorded, not gated)
# ----------------------------------------------------------------------

def _espresso_medium():
    space = Space.binary(10, 6)
    cover = _random_cover(space, 60, seed=5, dash=0.3)
    assert len(espresso(space, cover)) <= 60


def _symbolic_keyb():
    assert len(derive_face_constraints(load_benchmark("keyb")).nontrivial())


def _assignment_bbara():
    assert assign_states(load_benchmark("bbara"), "picola").size > 0


END_TO_END = {
    "espresso_medium": _espresso_medium,
    "symbolic_keyb": _symbolic_keyb,
    "assignment_bbara": _assignment_bbara,
}


def time_end_to_end(tracer=None, repeats=2):
    tracer = tracer if tracer is not None else Tracer()
    for name, body in END_TO_END.items():
        for _ in range(repeats):
            with tracer.span(f"bench.{name}"):
                body()
    timings = tracer.timings()
    return {
        name: {"mean": timings[f"bench.{name}"].mean, "kernel": active_kernel().name}
        for name in END_TO_END
    }


# ----------------------------------------------------------------------
# pytest smokes
# ----------------------------------------------------------------------

def test_kernel_workloads_record_histograms():
    tracer = Tracer()
    results = time_kernel_workloads(tracer, repeats=1)
    assert set(results) == set(KERNEL_WORKLOADS)
    for name in KERNEL_WORKLOADS:
        for backend in available_kernels():
            assert tracer.timings()[f"bench.{name}.{backend}"].n == 1


def test_end_to_end_record_histograms():
    tracer = Tracer()
    results = time_end_to_end(tracer, repeats=1)
    assert set(results) == set(END_TO_END)


def test_committed_bench_file_is_consistent():
    if not BENCH_FILE.exists():
        return
    data = json.loads(BENCH_FILE.read_text())
    assert set(data["workloads"]) == set(KERNEL_WORKLOADS)
    for name in ("tautology_node", "complement_absorb"):
        assert data["workloads"][name]["speedup"] >= 5.0


# ----------------------------------------------------------------------
# CLI: --update regenerates BENCH_kernel.json, --check gates on it
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--update", action="store_true", help="rewrite BENCH_kernel.json"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="re-measure and fail on a >20%% speedup regression",
    )
    args = parser.parse_args(argv)

    current = {
        "workloads": time_kernel_workloads(),
        "end_to_end": time_end_to_end(),
        "tolerance": TOLERANCE,
    }
    for name, entry in current["workloads"].items():
        speedup = entry.get("speedup", "n/a (numpy unavailable)")
        print(f"{name:20s} speedup={speedup}")

    if args.update:
        BENCH_FILE.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {BENCH_FILE}")
        return 0

    if not BENCH_FILE.exists():
        print(f"missing {BENCH_FILE}; run with --update first")
        return 1
    recorded = json.loads(BENCH_FILE.read_text())
    failures = []
    for name, entry in recorded["workloads"].items():
        want = entry.get("speedup")
        got = current["workloads"].get(name, {}).get("speedup")
        if want is None or got is None:
            continue  # numpy unavailable here or there: nothing to gate
        floor = want * (1.0 - TOLERANCE)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{name:20s} recorded={want:6.2f}x now={got:6.2f}x  {status}")
        if got < floor:
            failures.append(name)
    if failures:
        print(f"kernel speedup regression in: {', '.join(failures)}")
        return 1
    print("kernel bench within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
