"""Micro-benchmarks of the substrates: cube kernel, espresso, PICOLA.

These are honest throughput numbers (ops/sec) for the pieces the
tables are built from; regressions here blow up the table runtimes.

Run:  pytest benchmarks/test_kernels.py --benchmark-only
"""

import random

import pytest

from repro.cubes import Space, complement, tautology
from repro.core import picola_encode
from repro.encoding import ConstraintSet, FaceConstraint, derive_face_constraints
from repro.espresso import espresso
from repro.fsm import encode_fsm, load_benchmark
from repro.stateassign import assign_states


def _random_cover(space, n_cubes, seed, dash=0.3):
    rng = random.Random(seed)
    cover = []
    for _ in range(n_cubes):
        fields = []
        for part in range(space.num_parts - 1):
            fields.append(3 if rng.random() < dash else rng.choice([1, 2]))
        fields.append(1 << rng.randrange(space.part_sizes[-1]))
        cover.append(space.make_cube(fields))
    return cover


def test_bench_complement(benchmark):
    space = Space.binary(12, 6)
    cover = _random_cover(space, 80, seed=3)
    result = benchmark(lambda: complement(space, cover))
    assert result


def test_bench_tautology(benchmark):
    space = Space.binary(14)
    half = space.parse_cube("0" + "-" * 13)
    other = space.parse_cube("1" + "-" * 13)
    assert benchmark(lambda: tautology(space, [half, other]))


def test_bench_espresso_medium(benchmark):
    space = Space.binary(10, 6)
    cover = _random_cover(space, 60, seed=5)
    result = benchmark.pedantic(
        lambda: espresso(space, cover), rounds=3, iterations=1
    )
    assert len(result) <= 60


def test_bench_symbolic_minimization(benchmark):
    fsm = load_benchmark("keyb")
    cset = benchmark.pedantic(
        lambda: derive_face_constraints(fsm), rounds=3, iterations=1
    )
    assert len(cset.nontrivial()) > 0


def test_bench_picola_encode(benchmark):
    fsm = load_benchmark("keyb")
    cset = derive_face_constraints(fsm)
    result = benchmark.pedantic(
        lambda: picola_encode(cset), rounds=3, iterations=1
    )
    assert result.encoding.is_injective()


def test_bench_full_state_assignment(benchmark):
    fsm = load_benchmark("bbara")
    result = benchmark.pedantic(
        lambda: assign_states(fsm, "picola"), rounds=1, iterations=1
    )
    assert result.size > 0
