#!/usr/bin/env python3
"""Encoding the mnemonic input field of a microcode ROM.

One of the paper's motivating applications: a microprogram refers to
symbolic mnemonics; the decoder logic is two-level, so mnemonics used
together in the same microinstruction patterns should be embedded on
faces of the code cube.  This example builds a small symbolic
microcode table, derives the face constraints by hand (each multi-
mnemonic row is one group constraint), and compares PICOLA's
minimum-length encoding against a naive binary numbering.

Run:  python examples/microcode_encoding.py
"""

from repro import FaceConstraint, picola_encode
from repro.baselines import natural_encoding
from repro.encoding import ConstraintSet, evaluate_encoding

# A microcode control store: each row activates one control signal for
# a *group* of mnemonics.  Every group is a face constraint.
MNEMONICS = [
    "fetch", "decode", "alu_add", "alu_sub", "alu_and", "alu_or",
    "mem_rd", "mem_wr", "io_rd", "io_wr", "halt",
]
CONTROL_ROWS = {
    "alu_en":   {"alu_add", "alu_sub", "alu_and", "alu_or"},
    "alu_arith": {"alu_add", "alu_sub"},
    "alu_logic": {"alu_and", "alu_or"},
    "mem_en":   {"mem_rd", "mem_wr"},
    "io_en":    {"io_rd", "io_wr"},
    "bus_rd":   {"mem_rd", "io_rd", "fetch"},
    "seq_adv":  {"fetch", "decode"},
}

cset = ConstraintSet(
    MNEMONICS,
    [FaceConstraint(group) for group in CONTROL_ROWS.values()],
)
print(f"{len(MNEMONICS)} mnemonics, {len(CONTROL_ROWS)} control "
      f"groups, minimum code length {cset.min_code_length()} bits\n")

picola = picola_encode(cset)
naive = natural_encoding(MNEMONICS, cset.min_code_length())

for label, encoding in [("PICOLA", picola.encoding), ("naive", naive)]:
    report = evaluate_encoding(encoding, cset)
    print(f"{label}: {report.summary()}")
    for signal, group in CONTROL_ROWS.items():
        score = next(
            s for s in report.scores if s.constraint.symbols == frozenset(group)
        )
        mark = "+" if score.satisfied else " "
        print(f"  [{mark}] {signal:<9} -> {score.cubes} AND-term(s)")
    print()

print("PICOLA mnemonic codes:")
print(picola.encoding.as_table())
print("\nEach satisfied group decodes with a single AND gate over the")
print("code bits; the naive numbering pays extra product terms for")
print("every violated group.")
