#!/usr/bin/env python3
"""End-to-end flow: KISS2 in, BLIF and Verilog out.

Builds a small traffic-light controller programmatically, minimizes
its states, assigns codes with PICOLA, and writes the implementation
as a sequential BLIF model and a synthesizable Verilog module.

Run:  python examples/export_netlists.py [output-dir]
"""

import sys
from pathlib import Path

from repro.export import assignment_to_blif, assignment_to_verilog
from repro.fsm import Fsm, format_kiss, reduce_states
from repro.stateassign import assign_states

out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")

# A traffic-light controller: inputs are (car_waiting, timer_done),
# outputs are (major_green, minor_green).  The two "all red" phases
# behave identically -> state minimization merges them.
fsm = Fsm("traffic")
rows = [
    # inputs  present     next        outputs
    ("0-", "major_go",   "major_go",  "10"),
    ("10", "major_go",   "all_red_a", "10"),
    ("11", "major_go",   "all_red_c", "10"),  # duplicated phase
    ("--", "all_red_a",  "minor_go",  "00"),
    ("--", "all_red_c",  "minor_go",  "00"),  # same behaviour as _a
    ("-0", "minor_go",   "minor_go",  "01"),
    ("-1", "minor_go",   "all_red_b", "01"),
    ("--", "all_red_b",  "major_go",  "00"),
]
for inputs, present, nxt, outputs in rows:
    fsm.add(inputs, present, nxt, outputs)
fsm.reset_state = "major_go"

print("Original machine:")
print(format_kiss(fsm))

reduction = reduce_states(fsm)
print(f"State minimization removed {reduction.removed} state(s): "
      f"{[c for c in reduction.classes if len(c) > 1]}")
machine = reduction.fsm if reduction.removed else fsm

result = assign_states(machine, "picola")
print(f"\nPICOLA assignment ({result.encoding.n_bits} bits):")
print(result.encoding.as_table())
print(f"Two-level implementation: {result.size} product terms, "
      f"{result.literals} literals")

blif_path = out_dir / "traffic.blif"
verilog_path = out_dir / "traffic.v"
blif_path.write_text(assignment_to_blif(result))
verilog_path.write_text(assignment_to_verilog(result))
print(f"\nWrote {blif_path} and {verilog_path}")
