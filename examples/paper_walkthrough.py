#!/usr/bin/env python3
"""Walk through the paper's running example (Sections 2-3).

Fifteen symbols s1..s15 in B^4 under the four face constraints of
Figure 1b:

    L1 = {s2, s6, s8, s14}
    L2 = {s1, s2}
    L3 = {s9, s14}
    L4 = {s6, s7, s8, s9, s14}

The script shows the marked constraint-matrix notation (Example 2),
an infeasible constraint's intruder set, its guide constraint
(Definition, Section 3.2) and the Theorem I cube construction that
implements the infeasible constraint with
dim[super(L)] - dim[super(I)] cubes (Example 3).

Run:  python examples/paper_walkthrough.py
"""

from repro import FaceConstraint, picola_encode
from repro.core import theorem1_cubes
from repro.encoding import ConstraintSet, evaluate_encoding

SYMBOLS = [f"s{i}" for i in range(1, 16)]
L = {
    "L1": {"s2", "s6", "s8", "s14"},
    "L2": {"s1", "s2"},
    "L3": {"s9", "s14"},
    "L4": {"s6", "s7", "s8", "s9", "s14"},
}

cset = ConstraintSet(
    SYMBOLS, [FaceConstraint(members) for members in L.values()]
)
result = picola_encode(cset)
enc = result.encoding

print("PICOLA encoding of the paper's 15-symbol example "
      f"(nv = {enc.n_bits}):")
print(enc.as_table())
print()
print(result.summary())
print()

print("Constraint matrix in the paper's notation (1 = member, 0 = ")
print("unsatisfied dichotomy, i+1 = satisfied by column i):")
header = "      " + " ".join(f"{s:>3}" for s in SYMBOLS)
print(header)
for row, rendered in zip(
    result.matrix.rows, result.matrix.as_paper_matrix()
):
    tag = "G" if row.constraint.is_guide() else " "
    cells = " ".join(f"{v:>3}" for v in rendered)
    print(f"  {tag}   {cells}")
print()

for name, members in L.items():
    intruders = enc.intruders(frozenset(members))
    mask, value = enc.face(members)
    face_str = "".join(
        format(value >> (enc.n_bits - 1 - b) & 1, "d")
        if mask >> (enc.n_bits - 1 - b) & 1 else "-"
        for b in range(enc.n_bits)
    )
    print(f"{name}: super = {face_str}", end="")
    if intruders:
        cubes = theorem1_cubes(enc, sorted(members), intruders)
        print(f", intruders = {{{', '.join(intruders)}}}", end="")
        if cubes is not None:
            print(f" -> Theorem I implements it with {len(cubes)} cubes")
        else:
            print(" (intruders do not form a clean cube)")
    else:
        print("  [satisfied: one product term]")

report = evaluate_encoding(enc, cset)
print(f"\nEspresso-checked total: {report.total_cubes} product terms "
      f"for the complete constraint set")
