#!/usr/bin/env python3
"""Quickstart: encode eight symbols under face constraints.

Run:  python examples/quickstart.py
"""

from repro import FaceConstraint, picola_encode
from repro.encoding import ConstraintSet, evaluate_encoding

# Eight opcode classes; groups that must share a face of the code
# cube so each symbolic implicant stays a single product term.
symbols = ["add", "sub", "and", "or", "load", "store", "jump", "call"]
constraints = [
    FaceConstraint({"add", "sub"}),            # arithmetic pair
    FaceConstraint({"and", "or"}),             # logic pair
    FaceConstraint({"load", "store"}),         # memory pair
    FaceConstraint({"add", "sub", "and", "or"}),  # ALU quad
    FaceConstraint({"jump", "call"}),          # control pair
]

cset = ConstraintSet(symbols, constraints)
result = picola_encode(cset)

print("Minimum-length encoding (nv = %d bits):" % result.encoding.n_bits)
print(result.encoding.as_table())
print()
print("Outcome:", result.summary())

report = evaluate_encoding(result.encoding, cset)
print()
print("Per-constraint implementation cost:")
for score in report.scores:
    status = "satisfied" if score.satisfied else (
        "violated, intruders: " + ", ".join(score.intruders)
    )
    members = ",".join(sorted(score.constraint.symbols))
    print(f"  {{{members}}}: {score.cubes} cube(s) [{status}]")
print()
print(f"Total: {report.total_cubes} product terms for "
      f"{report.n_constraints} constraints "
      f"({report.n_satisfied} satisfied)")
