#!/usr/bin/env python3
"""State assignment of a benchmark FSM with the PICOLA-based tool.

Loads an IWLS-93-style machine from the bundled library, assigns its
states with every tool the paper compares (the NEW PICOLA tool, NOVA
i_hybrid / io_hybrid, and a natural-order strawman), implements each
assignment in two levels with the bundled espresso, and prints the
Table-II-style size comparison.

Run:  python examples/state_assignment.py [benchmark-name]
"""

import sys

from repro.encoding import derive_face_constraints
from repro.espresso import format_pla
from repro.fsm import load_benchmark
from repro.stateassign import assign_states

name = sys.argv[1] if len(sys.argv) > 1 else "dk16"
fsm = load_benchmark(name)
print(f"Machine {fsm.name}: {fsm.n_inputs} inputs, {fsm.n_outputs} "
      f"outputs, {fsm.n_states} states, {len(fsm.transitions)} terms")

constraints = derive_face_constraints(fsm)
print(f"Input-encoding model yields {len(constraints.nontrivial())} "
      f"face constraints; minimum code length = "
      f"{constraints.min_code_length()} bits\n")

results = {}
for method in ["picola", "nova_ih", "nova_ioh", "natural"]:
    results[method] = assign_states(fsm, method, constraints=constraints)

print(f"{'method':<10} {'size':>5} {'literals':>9} {'encode s':>9}")
for method, result in results.items():
    print(f"{method:<10} {result.size:>5} {result.literals:>9} "
          f"{result.encode_seconds:>9.3f}")

best = results["picola"]
print("\nPICOLA encoding:")
print(best.encoding.as_table())
print("\nMinimized two-level implementation (espresso format):")
print(format_pla(best.minimized, pla_type="f"))
