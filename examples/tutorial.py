#!/usr/bin/env python3
"""An executable tutorial of the theory behind PICOLA.

Walks from raw cube algebra to a full state assignment, asserting
every claim along the way.  Run it top to bottom:

    python examples/tutorial.py
"""

# ----------------------------------------------------------------------
# 1. Cubes and covers: the positional-cube kernel
# ----------------------------------------------------------------------
from repro.cubes import Cover, Space

space = Space.binary(3)  # three binary variables
f = Cover.from_strings(space, ["0--", "-11"])  # x0' + x1 x2
g = ~f  # complement

assert (f | g).is_tautology()
assert len((f & g).cubes) == 0
print("1. cube algebra: f | ~f is a tautology, f & ~f is empty")

# ----------------------------------------------------------------------
# 2. Two-level minimization
# ----------------------------------------------------------------------
from repro.espresso import espresso, exact_minimize

onset = [space.parse_cube(r) for r in ["000", "001", "011", "111"]]
minimized = espresso(space, onset)
optimal = exact_minimize(space, onset)
assert len(minimized) == len(optimal) == 2
print(f"2. espresso: 4 minterms -> {len(minimized)} cubes "
      f"(exact optimum {len(optimal)})")

# ----------------------------------------------------------------------
# 3. Faces, constraints, dichotomies
# ----------------------------------------------------------------------
from repro.encoding import ConstraintSet, Encoding, FaceConstraint

symbols = ["s1", "s2", "s3", "s4", "s5", "s6"]
cset = ConstraintSet(
    symbols,
    [FaceConstraint({"s1", "s2", "s3"}), FaceConstraint({"s4", "s5"})],
)
enc = Encoding.from_code_list(symbols, [0, 1, 2, 4, 5, 7], 3)
# {s1,s2,s3} have codes 000,001,010: their face is 0-- which also
# contains 011 (unused) - satisfied; {s4,s5} = 100,101 -> face 10-
assert enc.satisfies({"s1", "s2", "s3"})
assert enc.satisfies({"s4", "s5"})
print("3. faces: both constraints embed on faces of B^3")

# a seed dichotomy view of the same fact:
from repro.encoding import satisfied_dichotomies

done, total = satisfied_dichotomies(enc, cset)
assert done == total
print(f"   all {total} seed dichotomies satisfied")

# ----------------------------------------------------------------------
# 4. Infeasibility and guide constraints (the paper's contribution)
# ----------------------------------------------------------------------
from repro import picola_encode
from repro.core import theorem1_cubes

big = ConstraintSet(
    [f"t{i}" for i in range(7)],
    [FaceConstraint({f"t{i}" for i in range(5)})],  # 5 of 7 in B^3
)
result = picola_encode(big)
(row,) = result.matrix.original_rows()
assert row.infeasible, "5-of-7 cannot share a face of B^3"
intruders = result.encoding.intruders(row.members)
cubes = theorem1_cubes(
    result.encoding, sorted(row.members), intruders
)
print(f"4. infeasible constraint detected; Theorem I implements it "
      f"with {len(cubes) if cubes else 'n/a'} cubes "
      f"(intruders: {', '.join(intruders)})")

# ----------------------------------------------------------------------
# 5. Full state assignment
# ----------------------------------------------------------------------
from repro.fsm import load_benchmark, cosimulate, random_input_sequence
from repro.stateassign import assign_states

fsm = load_benchmark("dk27")
assignment = assign_states(fsm, "picola")
codes = {
    s: assignment.encoding.code_of(s)
    for s in assignment.encoding.symbols
}
steps = cosimulate(
    fsm, assignment.minimized, codes, assignment.encoding.n_bits,
    random_input_sequence(fsm.n_inputs, 100, seed=1),
)
print(f"5. state assignment of {fsm.name}: {assignment.size} product "
      f"terms; co-simulation checked {steps} steps")

print("\ntutorial complete - every assertion held")
