"""The stable programmatic surface of the repro.

Two calls cover everything the paper's pipeline needs:

>>> import repro
>>> request = repro.EncodeRequest.build(
...     ["s0", "s1", "s2", "s3"],
...     [{"symbols": ["s0", "s1"]}, {"symbols": ["s2", "s3"]}],
...     solver="picola",
... )
>>> response = repro.encode(request)
>>> response.ok, response.n_bits
(True, 2)

:func:`encode` serves one request, :func:`encode_many` a batch (with
optional process-level parallelism and a shared result cache).  Both
return :class:`~repro.service.EncodeResponse` objects whose
``payload_bytes()`` is the canonical wire form served by
``picola serve`` — an in-process call and an HTTP call to the daemon
produce byte-identical payloads for the same request.

This module is a thin facade over :mod:`repro.service`; it exists so
callers depend on a two-function surface instead of the service
internals.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .runtime import Budget
from .service.batch import encode_many as _encode_many
from .service.cache import ResultCache
from .service.dispatch import execute as _execute
from .service.request import EncodeRequest, EncodeResponse

__all__ = ["encode", "encode_many", "EncodeRequest", "EncodeResponse"]


def encode(
    request: EncodeRequest,
    *,
    cache: Optional[ResultCache] = None,
    budget: Optional[Budget] = None,
    tracer: Any = None,
    classify: bool = True,
) -> EncodeResponse:
    """Serve one :class:`EncodeRequest`.

    Failures are classified into the response ``status`` by default;
    pass ``classify=False`` to let solver errors propagate as
    exceptions (the harness' fault isolation wants the raw error).
    An explicit ``budget`` overrides the request's declarative QoS,
    letting several pipeline steps share one allowance.
    """
    return _execute(
        request,
        cache=cache,
        budget=budget,
        tracer=tracer,
        classify=classify,
    )


def encode_many(
    requests: Sequence[EncodeRequest],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    tracer: Any = None,
) -> List[EncodeResponse]:
    """Serve a batch; results match input order and are identical to
    a serial loop over :func:`encode` (modulo wall-clock ``seconds``).

    ``jobs`` follows the engine convention: ``1`` serial, ``0`` all
    cores, ``N`` a fixed process pool.
    """
    return _encode_many(requests, jobs=jobs, cache=cache, tracer=tracer)
