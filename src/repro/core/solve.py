"""Solve(): generate one code column (Section 3.4).

The column starts at all-ones.  Bits are flipped to 0 one at a time;
each flip is chosen to maximize a weighted dichotomy score, subject to
the *valid partial encoding* invariant: with ``j`` columns generated
out of ``nv``, every group of symbols sharing the same ``j``-bit
prefix must fit in the remaining subspace (at most ``2^(nv-j)``
members).  After ``nv`` columns every group has size at most one, so
the encoding is injective by construction.

The score of a column for a constraint row follows the paper's recipe
(a weighted sum of satisfied seed dichotomies, with weights depending
on constraint size, type and the columns generated so far) extended
with a *future potential* term: when the members agree, outsiders on
the same side are not satisfied now but remain satisfiable by a later
column, so they count with a discount ``beta`` that decays as columns
run out.  On top of the greedy construction a hill-climbing polish
pass (toggles in both directions, validity-preserving) and a few
seeded restarts pick the best column — the paper leaves the cost
function open, and this is the tuning that makes the column-based
strategy competitive.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cubes.bulk import bit_count
from ..encoding.matrix import ConstraintMatrix, ConstraintRow
from ..obs import resolve_tracer
from ..runtime import InvariantViolation
from .weights import WeightPolicy

__all__ = ["generate_column", "PrefixGroups"]


class PrefixGroups:
    """Tracks groups of symbols sharing the same code prefix.

    Each group is a bitmask over symbol indices (bit ``i`` set when
    ``symbols[i]`` belongs to the group) plus its prefix tuple, in the
    columnar style of the cube kernel: splitting every group under a
    new column is a couple of AND/ANDN operations per group, and group
    sizes are popcounts.  The per-symbol ``prefix`` mapping of the old
    representation survives as a derived read-only property.
    """

    def __init__(self, symbols: Sequence[str], nv: int) -> None:
        self.symbols = list(symbols)
        self.nv = nv
        self.columns_done = 0
        self._index: Dict[str, int] = {
            s: i for i, s in enumerate(self.symbols)
        }
        # one group per distinct prefix; all symbols start with ()
        self._group_prefixes: List[Tuple[int, ...]] = []
        self._group_masks: List[int] = []
        self._group_of: List[int] = [0] * len(self.symbols)
        if self.symbols:
            self._group_prefixes.append(())
            self._group_masks.append((1 << len(self.symbols)) - 1)

    # -- group-id view (the bookkeeping the column builder runs on) ----
    @property
    def n_groups(self) -> int:
        return len(self._group_masks)

    def group_index(self, symbol: str) -> int:
        return self._group_of[self._index[symbol]]

    def group_size(self, gid: int) -> int:
        return bit_count(self._group_masks[gid])

    def _column_mask(self, column: Mapping[str, int]) -> int:
        """Bitmask of symbols the column maps to 1."""
        mask = 0
        for i, s in enumerate(self.symbols):
            if column[s]:
                mask |= 1 << i
        return mask

    # -- legacy per-symbol view ----------------------------------------
    @property
    def prefix(self) -> Dict[str, Tuple[int, ...]]:
        """Per-symbol prefix mapping (derived; do not mutate)."""
        return {
            s: self._group_prefixes[self._group_of[i]]
            for i, s in enumerate(self.symbols)
        }

    def group_sizes(self) -> Dict[Tuple[int, ...], int]:
        return {
            prefix: bit_count(mask)
            for prefix, mask in zip(self._group_prefixes, self._group_masks)
        }

    # ------------------------------------------------------------------
    def cap_after_next_column(self) -> int:
        """Max group size allowed once the next column is appended."""
        remaining = self.nv - (self.columns_done + 1)
        return 1 << max(remaining, 0)

    def apply_column(self, column: Mapping[str, int]) -> None:
        col = self._column_mask(column)
        prefixes: List[Tuple[int, ...]] = []
        masks: List[int] = []
        for prefix, mask in zip(self._group_prefixes, self._group_masks):
            children = [(0, mask & ~col), (1, mask & col)]
            if (mask & -mask) & col:  # first member goes to the 1 side
                children.reverse()
            for value, child in children:
                if child:
                    prefixes.append(prefix + (value,))
                    masks.append(child)
        self._group_prefixes = prefixes
        self._group_masks = masks
        for gid, mask in enumerate(masks):
            while mask:
                low = mask & -mask
                self._group_of[low.bit_length() - 1] = gid
                mask ^= low
        self.columns_done += 1

    def is_valid_column(self, column: Mapping[str, int]) -> bool:
        cap = self.cap_after_next_column()
        col = self._column_mask(column)
        return all(
            bit_count(mask & col) <= cap
            and bit_count(mask & ~col) <= cap
            for mask in self._group_masks
        )

    def clone(self) -> "PrefixGroups":
        twin = PrefixGroups(self.symbols, self.nv)
        twin.columns_done = self.columns_done
        twin._group_prefixes = list(self._group_prefixes)
        twin._group_masks = list(self._group_masks)
        twin._group_of = list(self._group_of)
        return twin


class _RowState:
    """Incremental per-row counters for the column score.

    The score is *dimension aware*, which is what the constraint
    matrix marks are for: a constraint on ``|L|`` symbols can afford
    at most ``nv - ceil(log2 |L|)`` participating (agreeing) columns
    in ``B^nv``, because each one shrinks the face by one dimension
    and the face must still hold ``|L|`` distinct codes.

    * members agree: outsiders on the opposite side are satisfied now
      (full credit); outsiders left on the member side retain the
      discounted potential ``beta`` only while the row can still
      afford another agreeing column — in the row's *last* affordable
      agreeing column they are lost forever and score nothing.
    * members disagree: nothing is satisfied now; all unmarked
      outsiders keep the ``beta`` potential while an agreeing column
      remains affordable.
    """

    __slots__ = (
        "row", "weight", "beta", "n_members",
        "member_ones", "out_ones", "n_out", "agree_budget",
    )

    def __init__(self, row: ConstraintRow, weight: float, beta: float,
                 column: Mapping[str, int], nv: int) -> None:
        self.row = row
        self.weight = weight
        self.beta = beta
        self.n_members = len(row.members)
        self.member_ones = sum(column[s] for s in row.members)
        unmarked = [s for s, m in row.marks.items() if m == 0]
        self.n_out = len(unmarked)
        self.out_ones = sum(column[s] for s in unmarked)
        allowed_agree = nv - row.constraint.min_dimension()
        self.agree_budget = allowed_agree - len(row.agree_columns)

    def _score(self, member_ones: int, out_ones: int) -> float:
        out_zeros = self.n_out - out_ones
        if self.agree_budget <= 0:
            # the face cannot shrink further; agreement is impossible
            # (and Classify() will retire the row if work remains)
            return 0.0
        if member_ones == self.n_members:  # members agree at 1
            future = self.beta if self.agree_budget >= 2 else 0.0
            return self.weight * (out_zeros + future * out_ones)
        if member_ones == 0:  # members agree at 0
            future = self.beta if self.agree_budget >= 2 else 0.0
            return self.weight * (out_ones + future * out_zeros)
        # members split: the column contributes nothing, but later
        # agreeing columns can still do all the work
        return self.weight * self.beta * self.n_out

    def score(self) -> float:
        return self._score(self.member_ones, self.out_ones)

    def gain(self, member_delta: int, out_delta: int) -> float:
        return self._score(
            self.member_ones + member_delta, self.out_ones + out_delta
        ) - self.score()

    def newly_satisfied(self) -> int:
        """Unmarked dichotomies this column actually satisfies."""
        out_zeros = self.n_out - self.out_ones
        if self.member_ones == self.n_members:
            return out_zeros
        if self.member_ones == 0:
            return self.out_ones
        return 0


class _ColumnBuilder:
    """One candidate column plus all incremental bookkeeping."""

    def __init__(
        self,
        matrix: ConstraintMatrix,
        groups: PrefixGroups,
        policy: WeightPolicy,
        beta: float,
    ) -> None:
        self.groups = groups
        self.symbols = groups.symbols
        self.cap = groups.cap_after_next_column()
        self.column: Dict[str, int] = {s: 1 for s in self.symbols}
        # infeasible rows keep scoring at reduced weight: each newly
        # marked dichotomy removes an intruder, which is exactly what
        # makes their Theorem I implementation cheap.  Infeasible
        # *guide* rows are dropped (guides-of-guides add nothing).
        rows = [
            r
            for r in matrix.rows
            if not (r.infeasible and r.constraint.is_guide())
        ]
        self.states = []
        for r in rows:
            weight = policy.row_weight(r)
            if r.infeasible:
                weight *= policy.infeasible_factor
            self.states.append(
                _RowState(r, weight, beta, self.column, matrix.nv)
            )
        self.member_rows: Dict[str, List[_RowState]] = {
            s: [] for s in self.symbols
        }
        self.outsider_rows: Dict[str, List[_RowState]] = {
            s: [] for s in self.symbols
        }
        for st in self.states:
            for s in st.row.members:
                self.member_rows[s].append(st)
            for s, m in st.row.marks.items():
                if m == 0:
                    self.outsider_rows[s].append(st)
        self.gid: Dict[str, int] = {
            s: groups.group_index(s) for s in self.symbols
        }
        self.one_count: List[int] = [
            groups.group_size(g) for g in range(groups.n_groups)
        ]
        self.zero_count: List[int] = [0] * groups.n_groups

    # ------------------------------------------------------------------
    def overfull(self) -> bool:
        return any(v > self.cap for v in self.one_count)

    def admissible_toggle(self, s: str) -> bool:
        gid = self.gid[s]
        if self.column[s] == 1:
            return self.zero_count[gid] + 1 <= self.cap
        return self.one_count[gid] + 1 <= self.cap

    def toggle_gain(self, s: str) -> float:
        delta = -1 if self.column[s] == 1 else 1
        gain = 0.0
        for st in self.member_rows[s]:
            gain += st.gain(delta, 0)
        for st in self.outsider_rows[s]:
            gain += st.gain(0, delta)
        return gain

    def toggle(self, s: str) -> None:
        delta = -1 if self.column[s] == 1 else 1
        self.column[s] += delta
        gid = self.gid[s]
        self.one_count[gid] += delta
        self.zero_count[gid] -= delta
        for st in self.member_rows[s]:
            st.member_ones += delta
        for st in self.outsider_rows[s]:
            st.out_ones += delta

    def total_score(self) -> float:
        return sum(st.score() for st in self.states)

    # ------------------------------------------------------------------
    def make_valid(self, rng: Optional[random.Random] = None) -> None:
        """Flip 1 -> 0 inside overfull groups until the column is valid."""
        while self.overfull():
            best_s = None
            best_gain = float("-inf")
            for s in self.symbols:
                if self.column[s] != 1:
                    continue
                gid = self.gid[s]
                if self.one_count[gid] <= self.cap:
                    continue
                if self.zero_count[gid] + 1 > self.cap:
                    continue
                g = self.toggle_gain(s)
                if rng is not None:
                    g += rng.random() * 1e-6
                if g > best_gain:
                    best_gain = g
                    best_s = s
            if best_s is None:
                raise InvariantViolation(
                    "no admissible flip in an overfull group; the valid "
                    "partial encoding invariant was violated earlier"
                )
            self.toggle(best_s)

    def randomize(self, rng: random.Random) -> None:
        """Jump to a random valid column (seeded restart)."""
        for s in self.symbols:
            if rng.random() < 0.5 and self.admissible_toggle(s):
                self.toggle(s)
        self.make_valid(rng)

    def hill_climb(self, max_rounds: Optional[int] = None) -> None:
        """Steepest-ascent single toggles until a local optimum."""
        if max_rounds is None:
            max_rounds = 6 * len(self.symbols)
        for _ in range(max_rounds):
            best_s = None
            best_gain = 1e-9
            for s in self.symbols:
                if not self.admissible_toggle(s):
                    continue
                g = self.toggle_gain(s)
                if g > best_gain:
                    best_gain = g
                    best_s = s
            if best_s is None:
                break
            self.toggle(best_s)


def candidate_columns(
    matrix: ConstraintMatrix,
    groups: PrefixGroups,
    policy: Optional[WeightPolicy] = None,
    limit: int = 1,
    tracer=None,
) -> List[Dict[str, int]]:
    """Up to ``limit`` distinct high-scoring columns, best first.

    One candidate comes from the deterministic greedy construction,
    the rest from seeded random restarts; all are polished by the
    hill climber.  Does not mutate ``matrix``/``groups``.  ``tracer``
    (default: the module-level tracer) counts restarts and the seed
    dichotomies the winning column satisfies.
    """
    if policy is None:
        policy = WeightPolicy()
    tracer = resolve_tracer(tracer)
    remaining_after = groups.nv - groups.columns_done - 1
    beta = policy.future_discount * remaining_after / max(1, groups.nv)

    def build(
        seed: Optional[int],
    ) -> Tuple[float, Dict[str, int], _ColumnBuilder]:
        builder = _ColumnBuilder(matrix, groups, policy, beta)
        if seed is None:
            builder.make_valid()
        else:
            builder.randomize(random.Random(seed))
        builder.hill_climb()
        return builder.total_score(), dict(builder.column), builder

    scored: List[Tuple[float, Dict[str, int], _ColumnBuilder]] = [
        build(None)
    ]
    for r in range(policy.restarts):
        scored.append(build(1009 * (groups.columns_done + 1) + r))
    tracer.count("solve.restarts", policy.restarts)
    scored.sort(key=lambda pair: -pair[0])
    if scored:
        tracer.count(
            "solve.dichotomies_satisfied",
            sum(st.newly_satisfied() for st in scored[0][2].states),
        )
    result: List[Dict[str, int]] = []
    seen = set()
    for score, column, _builder in scored:
        key = tuple(column[s] for s in groups.symbols)
        # a column and its complement induce the same partition
        flipped = tuple(1 - b for b in key)
        if key in seen or flipped in seen:
            continue
        seen.add(key)
        if not groups.is_valid_column(column):
            raise InvariantViolation(
                "Solve() produced an invalid column; this indicates a "
                "bug in the admissibility bookkeeping"
            )
        result.append(column)
        if len(result) >= limit:
            break
    return result


def generate_column(
    matrix: ConstraintMatrix,
    groups: PrefixGroups,
    policy: Optional[WeightPolicy] = None,
) -> Dict[str, int]:
    """One Solve() pass; does not mutate ``matrix``/``groups``."""
    return candidate_columns(matrix, groups, policy, limit=1)[0]
