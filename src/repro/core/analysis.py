"""Diagnostics: explain a PICOLA run constraint by constraint.

``analyze_result`` turns a :class:`~repro.core.picola.PicolaResult`
into a structured report a user can act on: which constraints were
satisfied and by which columns, which were classified infeasible (and
why — capacity or an nv-compatibility conflict), what their guide
constraints achieved, and the Theorem I cost of every violated
constraint.  ``picola encode --analyze`` renders it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..encoding.codes import Encoding
from ..encoding.constraints import FaceConstraint
from ..encoding.matrix import ConstraintRow
from .classify import capacity_feasible, nv_compatible
from .guides import theorem1_cubes
from .picola import PicolaResult

__all__ = ["ConstraintDiagnosis", "RunAnalysis", "analyze_result"]


@dataclass
class ConstraintDiagnosis:
    constraint: FaceConstraint
    status: str  # "satisfied" | "violated" | "infeasible"
    reason: str
    intruders: Tuple[str, ...]
    participating_columns: Tuple[int, ...]
    theorem1_cubes: Optional[int]
    guide: Optional[FaceConstraint]

    def describe(self) -> str:
        members = ",".join(sorted(self.constraint.symbols))
        lines = [f"{{{members}}}: {self.status} ({self.reason})"]
        if self.intruders:
            lines.append(
                "  intruders: " + ", ".join(self.intruders)
            )
        if self.theorem1_cubes is not None:
            lines.append(
                f"  Theorem I implementation: {self.theorem1_cubes} "
                "cube(s)"
            )
        if self.guide is not None:
            gm = ",".join(sorted(self.guide.symbols))
            lines.append(f"  guide constraint: {{{gm}}}")
        return "\n".join(lines)


@dataclass
class RunAnalysis:
    result: PicolaResult
    diagnoses: List[ConstraintDiagnosis] = field(default_factory=list)

    @property
    def estimated_total_cubes(self) -> int:
        total = 0
        for d in self.diagnoses:
            if d.status == "satisfied":
                total += 1
            elif d.theorem1_cubes is not None:
                total += d.theorem1_cubes
            else:
                total += 1 + len(d.intruders)
        return total

    def render(self) -> str:
        parts = [self.result.summary(), ""]
        parts += [d.describe() for d in self.diagnoses]
        parts.append("")
        parts.append(
            f"estimated implementation: {self.estimated_total_cubes} "
            "product terms (Theorem I bound)"
        )
        return "\n".join(parts)


def _infeasibility_reason(
    row: ConstraintRow, result: PicolaResult
) -> str:
    nv = result.encoding.n_bits
    n = len(result.constraints.symbols)
    if not capacity_feasible(row, nv, n):
        min_dim = row.constraint.min_dimension()
        waste = (1 << max(min_dim, len(row.disagree_columns))) - len(
            row.members
        )
        spare = (1 << nv) - n
        if waste > spare:
            return (
                f"capacity: a dim-{min_dim} face wastes {waste} codes "
                f"but only {spare} are unused"
            )
        return "capacity: no room left to cut the remaining intruders"
    for other in result.matrix.rows:
        if other is row or other.infeasible or not other.satisfied():
            continue
        if not nv_compatible(row, other, nv, n):
            om = ",".join(sorted(other.members))
            return f"nv-incompatible with satisfied {{{om}}}"
    return "classified during encoding"


def analyze_result(result: PicolaResult) -> RunAnalysis:
    """Build the full diagnosis of one PICOLA run."""
    analysis = RunAnalysis(result)
    guides_by_parent = {
        g.parent: g for g in result.guides_added if g.parent
    }
    enc: Encoding = result.encoding
    for row in result.matrix.original_rows():
        members = sorted(row.members)
        intruders = tuple(enc.intruders(row.members))
        cubes = theorem1_cubes(enc, members, list(intruders))
        n_cubes = len(cubes) if cubes is not None else None
        if not intruders:
            diagnosis = ConstraintDiagnosis(
                constraint=row.constraint,
                status="satisfied",
                reason=(
                    "face "
                    + _face_string(enc, members)
                    + " excludes all other symbols"
                ),
                intruders=(),
                participating_columns=tuple(sorted(row.agree_columns)),
                theorem1_cubes=1,
                guide=None,
            )
        else:
            status = "infeasible" if row.infeasible else "violated"
            reason = (
                _infeasibility_reason(row, result)
                if row.infeasible
                else "left unsatisfied by the heuristic"
            )
            diagnosis = ConstraintDiagnosis(
                constraint=row.constraint,
                status=status,
                reason=reason,
                intruders=intruders,
                participating_columns=tuple(sorted(row.agree_columns)),
                theorem1_cubes=n_cubes,
                guide=guides_by_parent.get(row.members),
            )
        analysis.diagnoses.append(diagnosis)
    return analysis


def _face_string(enc: Encoding, members) -> str:
    mask, value = enc.face(members)
    nv = enc.n_bits
    return "".join(
        str((value >> (nv - 1 - b)) & 1)
        if (mask >> (nv - 1 - b)) & 1
        else "-"
        for b in range(nv)
    )
