"""The paper's contribution: PICOLA and its supporting theory."""

from .analysis import ConstraintDiagnosis, RunAnalysis, analyze_result
from .classify import capacity_feasible, classify, nv_compatible
from .guides import guide_constraint, implementation_cubes, theorem1_cubes
from .picola import PicolaOptions, PicolaResult, picola_encode
from .solve import PrefixGroups, generate_column
from .weights import PRESETS, WeightPolicy

__all__ = [
    "ConstraintDiagnosis",
    "RunAnalysis",
    "analyze_result",
    "capacity_feasible",
    "classify",
    "nv_compatible",
    "guide_constraint",
    "implementation_cubes",
    "theorem1_cubes",
    "PicolaOptions",
    "PicolaResult",
    "picola_encode",
    "PrefixGroups",
    "generate_column",
    "PRESETS",
    "WeightPolicy",
]
