"""Guide constraints and the Theorem I cube construction (Section 3.2).

Theorem I: let ``L`` be a face constraint with intruder set ``I``.  If
the codes of the intruders form a cube (``super(I)``) that intersects
no member code, then ``L`` is implementable with

    dim[super(L)] - dim[super(I)]

cubes.  The proof is constructive: let ``M`` be the bit positions
fixed in ``super(I)`` but free in ``super(L)``; for every ``m`` in
``M`` emit the cube obtained from ``super(I)`` by complementing ``m``
and freeing the remaining positions of ``M``.

Satisfying the *guide constraint* — the group constraint on ``I`` —
during the rest of the encoding is precisely what makes this
construction applicable, which is why PICOLA substitutes infeasible
constraints by their guides.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..encoding.codes import Encoding, face_of
from ..encoding.constraints import FaceConstraint
from ..encoding.matrix import ConstraintRow

__all__ = ["guide_constraint", "theorem1_cubes", "implementation_cubes"]


def guide_constraint(row: ConstraintRow) -> Optional[FaceConstraint]:
    """The guide constraint of an infeasible row (None when pointless).

    Guiding needs at least two intruders (a single symbol is always a
    0-cube on its own) and the guide must itself be a *proper* subset
    of the symbol universe to constrain anything.
    """
    intruders = row.intruders()
    if len(intruders) < 2:
        return None
    if len(intruders) > max(len(row.members), 8):
        # a guide on a huge intruder set (e.g. a constraint classified
        # infeasible before any column narrowed it) constrains nothing
        # useful; the infeasible row itself keeps steering instead
        return None
    return FaceConstraint(
        intruders,
        kind="guide",
        parent=row.members,
        weight=row.constraint.weight,
    )


def theorem1_cubes(
    encoding: Encoding,
    members: Sequence[str],
    intruders: Sequence[str],
) -> Optional[List[Tuple[int, int]]]:
    """The Theorem I cover of ``members`` as ``(mask, value)`` cubes.

    Returns None when the theorem's hypothesis fails (the intruders'
    supercube touches a member code).  Each returned cube is a face
    ``(fixed_mask, fixed_value)`` of the code space; together they
    cover every member code and exclude every intruder code.
    """
    if not intruders:
        mask, value = encoding.face(members)
        return [(mask, value)]
    nv = encoding.n_bits
    mask_l, value_l = encoding.face(members)
    mask_i, value_i = face_of(
        (encoding.code_of(s) for s in intruders), nv
    )
    # hypothesis: super(I) must not contain any member code
    for s in members:
        if not (encoding.code_of(s) ^ value_i) & mask_i:
            return None
    # M: positions fixed in super(I) but free in super(L)
    m_positions = mask_i & ~mask_l
    cubes: List[Tuple[int, int]] = []
    bits = m_positions
    while bits:
        bit = bits & -bits
        bits &= bits - 1
        # start from super(I), complement this literal, free the rest of M
        mask = (mask_i & ~m_positions) | bit
        value = (value_i ^ bit) & mask
        cubes.append((mask, value))
    return cubes


def implementation_cubes(
    encoding: Encoding, members: Sequence[str]
) -> Optional[List[Tuple[int, int]]]:
    """Theorem I applied to the *current* intruders of ``members``."""
    intruders = encoding.intruders(frozenset(members))
    return theorem1_cubes(encoding, members, intruders)
