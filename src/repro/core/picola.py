"""PICOLA: the Partial Input COLumn-based Algorithm (Section 3).

Pseudocode from the paper::

    PICOLA() {
        get_constraint_matrix();
        for each column {
            Update_constraints();   // Classify + add guide constraints
            Solve();                // generate one code column
        }
    }

:func:`picola_encode` is the public entry point; it returns a
:class:`PicolaResult` carrying the encoding, the final constraint
matrix (with the paper's mark notation), and per-constraint outcomes
(satisfied / infeasible+guided).

The driver keeps a small deterministic *beam* of partial encodings:
each level runs Update_constraints()/Solve() per beam state and keeps
the most promising children, which compensates for the myopia of
committing to a single column at a time.  ``beam_width=1`` recovers
the paper's single-pass shape exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..encoding.codes import Encoding
from ..encoding.constraints import ConstraintSet, FaceConstraint
from ..encoding.matrix import ConstraintMatrix, ConstraintRow
from ..obs import resolve_tracer
from ..runtime import Budget, InfeasibleError, InvalidSpecError, faults
from .classify import classify
from .guides import guide_constraint
from .solve import PrefixGroups, candidate_columns
from .weights import PRESETS, WeightPolicy

__all__ = ["PicolaOptions", "PicolaResult", "picola_encode"]


@dataclass(frozen=True)
class PicolaOptions:
    """Tuning knobs; the defaults are the paper's algorithm."""

    #: substitute infeasible constraints by their guide constraints
    use_guides: bool = True
    #: run Classify() before every column (False = only once, up
    #: front; the ablation of the paper's "dynamic detection" claim)
    dynamic_classify: bool = True
    #: dichotomy weight policy (see repro.core.weights.PRESETS)
    weights: Union[WeightPolicy, str] = "picola"
    #: partial encodings carried between columns (1 = pure greedy)
    beam_width: int = 4
    #: candidate columns considered per beam state per level
    beam_candidates: int = 3
    #: local-search repair of the finished encoding (see core.repair)
    final_repair: bool = True

    def weight_policy(self) -> WeightPolicy:
        if isinstance(self.weights, WeightPolicy):
            return self.weights
        return PRESETS[self.weights]


@dataclass
class _BeamState:
    matrix: ConstraintMatrix
    groups: PrefixGroups
    columns: List[Dict[str, int]]
    guides_added: List[FaceConstraint]

    def clone(self) -> "_BeamState":
        return _BeamState(
            matrix=self.matrix.clone(),
            groups=self.groups.clone(),
            columns=list(self.columns),
            guides_added=list(self.guides_added),
        )

    def score(self, policy: WeightPolicy) -> float:
        """Cumulative promise: satisfied rows plus mark progress."""
        total = 0.0
        for row in self.matrix.rows:
            w = row.constraint.weight
            if row.constraint.is_guide():
                w *= policy.guide_factor
            if row.infeasible:
                continue
            if row.satisfied():
                total += 2.0 * w
            else:
                total += w * row.satisfied_fraction()
        return total


@dataclass
class PicolaResult:
    """Outcome of one PICOLA run."""

    encoding: Encoding
    matrix: ConstraintMatrix
    constraints: ConstraintSet
    options: PicolaOptions
    guides_added: List[FaceConstraint] = field(default_factory=list)

    @property
    def satisfied(self) -> List[FaceConstraint]:
        return [
            r.constraint
            for r in self.matrix.original_rows()
            if not r.infeasible and r.satisfied()
        ]

    @property
    def infeasible(self) -> List[FaceConstraint]:
        return [
            r.constraint
            for r in self.matrix.original_rows()
            if r.infeasible
        ]

    @property
    def unsatisfied(self) -> List[FaceConstraint]:
        return [
            r.constraint
            for r in self.matrix.original_rows()
            if not r.infeasible and not r.satisfied()
        ]

    def summary(self) -> str:
        total = len(self.matrix.original_rows())
        return (
            f"{len(self.satisfied)}/{total} constraints satisfied, "
            f"{len(self.infeasible)} guided as infeasible, "
            f"nv={self.encoding.n_bits}"
        )


def _update_constraints(
    state: _BeamState, options: PicolaOptions, tracer=None
) -> None:
    """The paper's Update_constraints(): Classify + add guides.

    A row detected infeasible before the encoding narrowed its
    intruder set gets no guide yet (a guide on "everybody" constrains
    nothing); it is re-visited every column until the intruders form a
    set worth guiding.
    """
    tracer = resolve_tracer(tracer)
    classify(state.matrix, tracer=tracer)
    if not options.use_guides:
        return
    for row in state.matrix.rows:
        if not row.infeasible or row.guide_added:
            continue
        if row.constraint.is_guide():
            row.guide_added = True  # never guide a guide
            continue
        guide = guide_constraint(row)
        if guide is not None:
            row.guide_added = True
            state.matrix.add_constraint(guide)
            state.guides_added.append(guide)
            tracer.count("picola.guides_added")
            tracer.gauge(
                "picola.intruder_set", len(row.intruders())
            )


def picola_encode(
    symbols_or_set: Union[Sequence[str], ConstraintSet],
    constraints: Optional[Sequence[FaceConstraint]] = None,
    *,
    nv: Optional[int] = None,
    options: Optional[PicolaOptions] = None,
    budget: Optional[Budget] = None,
    tracer=None,
) -> PicolaResult:
    """Encode symbols under face constraints with minimum code length.

    Accepts either a prebuilt :class:`ConstraintSet` or
    ``(symbols, constraints)``.  ``nv`` defaults to ``ceil(log2 n)``
    — the minimum length; larger values are allowed (the algorithm
    generalizes) but the paper's problem is the minimum one.
    ``budget`` is a cooperative :class:`~repro.runtime.Budget` checked
    once per column per beam state; ``tracer`` is an optional
    :class:`~repro.obs.Tracer` (default: the module-level tracer)
    recording spans and counters at the same loop heads.
    """
    tracer = resolve_tracer(tracer)
    if isinstance(symbols_or_set, ConstraintSet):
        cset = symbols_or_set
        if constraints is not None:
            raise InvalidSpecError(
                "pass constraints inside the ConstraintSet, not both"
            )
    else:
        cset = ConstraintSet(symbols_or_set, constraints or ())
    if options is None:
        options = PicolaOptions()
    if options.beam_width < 1 or options.beam_candidates < 1:
        raise InvalidSpecError("beam_width and beam_candidates must be >= 1")
    policy = options.weight_policy()

    if nv is None:
        nv = cset.min_code_length()
    if (1 << nv) < cset.n_symbols:
        raise InfeasibleError(
            f"{nv} bits cannot distinguish {cset.n_symbols} symbols"
        )

    beam = [
        _BeamState(
            matrix=ConstraintMatrix(cset, nv),
            groups=PrefixGroups(list(cset.symbols), nv),
            columns=[],
            guides_added=[],
        )
    ]
    classified_once = False
    with tracer.span("picola/encode", symbols=cset.n_symbols, nv=nv):
        for j in range(nv):
            faults.trip("picola.column")
            children: List[Tuple[float, int, _BeamState]] = []
            with tracer.span("picola/column", col=j):
                tracer.count("picola.columns")
                for state in beam:
                    if budget is not None:
                        budget.tick(where="picola_encode")
                    tracer.count("picola.beam_states")
                    if options.dynamic_classify or not classified_once:
                        _update_constraints(state, options, tracer)
                    candidates = candidate_columns(
                        state.matrix, state.groups, policy,
                        limit=options.beam_candidates,
                        tracer=tracer,
                    )
                    for column in candidates:
                        child = state.clone()
                        child.matrix.record_column(column)
                        child.groups.apply_column(column)
                        child.columns.append(column)
                        children.append(
                            (child.score(policy), len(children), child)
                        )
                tracer.count("picola.beam_children", len(children))
            classified_once = True
            children.sort(key=lambda item: (-item[0], item[1]))
            beam = [
                child for _, _, child in children[: options.beam_width]
            ]

        best = beam[0]
        if options.dynamic_classify:
            for state in beam:
                # final classification
                _update_constraints(state, options, tracer)
        encoding = Encoding.from_columns(list(cset.symbols), best.columns)
        matrix = best.matrix
        if options.final_repair:
            from .repair import polish_encoding, satisfaction_cost_score

            # polish the strongest beam leaves and keep the best
            # repaired encoding by the satisfaction/cost objective
            with tracer.span("picola/repair"):
                best_score = None
                best_pair = None
                for state in beam[: min(3, len(beam))]:
                    if budget is not None:
                        budget.check(where="picola_repair")
                    candidate = Encoding.from_columns(
                        list(cset.symbols), state.columns
                    )
                    polished = polish_encoding(candidate, cset, policy)
                    score = satisfaction_cost_score(polished, cset)
                    if best_score is None or score > best_score:
                        best_score = score
                        best_pair = (polished, state)
                assert best_pair is not None
                polished, leaf = best_pair
                if polished.codes != encoding.codes:
                    best = leaf
                    encoding = polished
                    matrix = _replay_matrix(
                        cset, leaf.guides_added, encoding, nv, options
                    )
    if not encoding.is_injective():
        raise AssertionError(
            "PICOLA produced a non-injective encoding; the validity "
            "invariant is broken"
        )
    return PicolaResult(
        encoding=encoding,
        matrix=matrix,
        constraints=cset,
        options=options,
        guides_added=best.guides_added,
    )


def _replay_matrix(
    cset: ConstraintSet,
    guides: Sequence[FaceConstraint],
    encoding: Encoding,
    nv: int,
    options: PicolaOptions,
) -> ConstraintMatrix:
    """Rebuild a consistent constraint matrix for a repaired encoding."""
    matrix = ConstraintMatrix(cset, nv)
    for guide in guides:
        matrix.add_constraint(guide)
    for j in range(nv):
        if options.dynamic_classify:
            classify(matrix)
        matrix.record_column(encoding.column(j))
    if options.dynamic_classify:
        classify(matrix)
    return matrix
