"""Final repair: local search on the finished encoding.

The column generator commits to one column at a time; a cheap
post-pass over the complete encoding (swapping code pairs and moving
symbols to unused codes) recovers most of what that myopia loses.
The objective is the same weighted constraint-satisfaction measure
that drives the columns — satisfied faces first, then the fraction of
outsiders already excluded — so the pass never trades a satisfied
constraint for partial progress elsewhere.

This pass is an implementation liberty on top of the paper's
pseudocode (the paper's cost function is unpublished; see DESIGN.md);
``PicolaOptions(final_repair=False)`` disables it, and the ablation
bench measures its contribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..encoding.codes import Encoding, face_of
from ..encoding.constraints import ConstraintSet, FaceConstraint
from .weights import WeightPolicy

__all__ = ["polish_encoding", "satisfaction_cost_score"]

#: credit for excluding outsiders from a violated constraint's face
_PARTIAL = 0.3
#: weight of the Theorem I cost estimate relative to satisfaction
_COST = 0.12


def _constraint_score(
    members_idx: Sequence[int],
    codes: Sequence[int],
    nv: int,
    weight: float,
    member_mask: Sequence[bool],
) -> float:
    """Satisfaction first, estimated implementation cost as tie-break.

    A satisfied constraint scores full credit.  A violated one earns
    partial credit for every outsider already excluded from its face,
    minus a term proportional to its estimated cube cost: the paper's
    Theorem I bound ``dim[super(L)] - dim[super(I)]`` when the
    intruders' supercube avoids the members, a pessimistic
    per-intruder count otherwise.  Maximizing this both chases
    satisfied faces (NOVA's objective) and keeps violated constraints
    cheap to implement (PICOLA's).
    """
    mask, value = face_of((codes[i] for i in members_idx), nv)
    intruder_codes = [
        code
        for i, code in enumerate(codes)
        if not member_mask[i] and not (code ^ value) & mask
    ]
    outsiders = len(codes) - len(members_idx)
    if not intruder_codes:
        return weight * (1.0 - _COST)
    dim_l = nv - bin(mask).count("1")
    mask_i, value_i = face_of(intruder_codes, nv)
    hits_member = any(
        not (codes[i] ^ value_i) & mask_i for i in members_idx
    )
    if hits_member:
        estimate = min(1 + len(intruder_codes), len(members_idx))
    else:
        dim_i = nv - bin(mask_i).count("1")
        estimate = max(dim_l - dim_i, 1)
    partial = _PARTIAL * (1.0 - len(intruder_codes) / max(outsiders, 1))
    return weight * (partial - _COST * estimate)


def satisfaction_cost_score(
    encoding: Encoding, cset: ConstraintSet
) -> float:
    """Total :func:`_constraint_score` of an encoding (higher = better)."""
    symbols = list(encoding.symbols)
    index = {s: i for i, s in enumerate(symbols)}
    codes = [encoding.code_of(s) for s in symbols]
    total = 0.0
    for c in cset.nontrivial():
        members_idx = [index[s] for s in c.symbols]
        mask = [False] * len(symbols)
        for s in c.symbols:
            mask[index[s]] = True
        total += _constraint_score(
            members_idx, codes, encoding.n_bits, c.weight, mask
        )
    return total


def polish_encoding(
    encoding: Encoding,
    cset: ConstraintSet,
    policy: Optional[WeightPolicy] = None,
    max_sweeps: int = 4,
) -> Encoding:
    """Hill-climb over code swaps/moves; returns a (possibly) new
    encoding with at least the same weighted satisfaction score."""
    if policy is None:
        policy = WeightPolicy()
    symbols = list(encoding.symbols)
    index = {s: i for i, s in enumerate(symbols)}
    nv = encoding.n_bits
    codes: List[int] = [encoding.code_of(s) for s in symbols]
    constraints = cset.nontrivial()
    if not constraints:
        return encoding

    members_idx = [
        [index[s] for s in c.symbols] for c in constraints
    ]
    member_mask = []
    for c in constraints:
        mask = [False] * len(symbols)
        for s in c.symbols:
            mask[index[s]] = True
        member_mask.append(mask)
    weights = [c.weight for c in constraints]
    touching: List[List[int]] = [[] for _ in symbols]
    for k, idxs in enumerate(members_idx):
        for i in idxs:
            touching[i].append(k)

    def score_all() -> List[float]:
        return [
            _constraint_score(
                members_idx[k], codes, nv, weights[k], member_mask[k]
            )
            for k in range(len(constraints))
        ]

    scores = score_all()
    unused = [c for c in range(1 << nv) if c not in set(codes)]

    def affected(i: int, j: Optional[int], old_codes: Tuple[int, ...]
                 ) -> List[int]:
        """Constraints whose score can change under the move."""
        ks = set(touching[i])
        if j is not None:
            ks.update(touching[j])
        # constraints whose face currently contains a moved code can
        # gain/lose an intruder even when neither symbol is a member
        moved = set(old_codes)
        moved.add(codes[i])
        if j is not None:
            moved.add(codes[j])
        for k in range(len(constraints)):
            if k in ks:
                continue
            mask, value = face_of(
                (codes[m] for m in members_idx[k]), nv
            )
            if any(not (c ^ value) & mask for c in moved):
                ks.add(k)
        return sorted(ks)

    n = len(symbols)
    for _ in range(max_sweeps):
        improved = False
        # pair swaps where at least one side touches a constraint
        for i in range(n):
            for j in range(i + 1, n):
                if not touching[i] and not touching[j]:
                    continue
                old = (codes[i], codes[j])
                codes[i], codes[j] = codes[j], codes[i]
                ks = affected(i, j, old)
                delta = 0.0
                new_scores = {}
                for k in ks:
                    new_scores[k] = _constraint_score(
                        members_idx[k], codes, nv, weights[k],
                        member_mask[k],
                    )
                    delta += new_scores[k] - scores[k]
                if delta > 1e-9:
                    for k, v in new_scores.items():
                        scores[k] = v
                    improved = True
                else:
                    codes[i], codes[j] = old
        # moves to unused codes
        for i in range(n):
            if not touching[i]:
                continue
            for slot in range(len(unused)):
                old_code = codes[i]
                codes[i] = unused[slot]
                ks = affected(i, None, (old_code,))
                delta = 0.0
                new_scores = {}
                for k in ks:
                    new_scores[k] = _constraint_score(
                        members_idx[k], codes, nv, weights[k],
                        member_mask[k],
                    )
                    delta += new_scores[k] - scores[k]
                if delta > 1e-9:
                    unused[slot] = old_code
                    for k, v in new_scores.items():
                        scores[k] = v
                    improved = True
                else:
                    codes[i] = old_code
        if not improved:
            break
    return Encoding.from_code_list(symbols, codes, nv)
