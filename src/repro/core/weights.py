"""Dichotomy weighting policies for PICOLA's Solve() cost function.

The paper (Section 3.4) specifies the *family*: the cost of fixing a
bit to 0 is a weighted sum of the seed dichotomies the column would
satisfy, where each dichotomy's weight depends on

* the size of its face constraint,
* the constraint's type (original or guide),
* the code columns generated so far.

It does not publish the exact formula, so :class:`WeightPolicy` makes
the knobs explicit with defaults tuned on the benchmark suite; named
presets cover the ablation of Section 2's rationale (pure dichotomy
counting vs. constraint counting vs. the full PICOLA policy).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..encoding.matrix import ConstraintRow

__all__ = ["WeightPolicy", "PRESETS"]


@dataclass(frozen=True)
class WeightPolicy:
    """Weights used by Solve() when scoring candidate bit assignments."""

    #: weight multiplier for guide constraints (vs. 1.0 for originals)
    guide_factor: float = 0.6
    #: extra weight per fraction of already-satisfied dichotomies: rows
    #: close to full satisfaction are worth finishing
    progress_bonus: float = 1.0
    #: exponent of 1/|L|: small constraints are easier faces, and their
    #: single product term saves as much as a big one's
    size_exponent: float = 0.5
    #: penalty for breaking member agreement in the current column,
    #: scaled by the row's remaining unsatisfied dichotomies
    break_penalty: float = 1.0
    #: discount for outsiders a column keeps on the members' side:
    #: they are not separated now but a later column still can; the
    #: effective discount decays as columns run out
    future_discount: float = 0.7
    #: seeded random restarts per column (0 = pure greedy)
    restarts: int = 8
    #: weight multiplier for rows already classified infeasible: they
    #: can never be satisfied, but every dichotomy they still mark
    #: removes one intruder and so lowers their Theorem I cube cost
    infeasible_factor: float = 0.5

    def row_weight(self, row: ConstraintRow) -> float:
        """Weight of one constraint row under the current marks."""
        base = row.constraint.weight
        if row.constraint.is_guide():
            base *= self.guide_factor
        size = max(2, len(row.members))
        base *= size ** (-self.size_exponent)
        base *= 1.0 + self.progress_bonus * row.satisfied_fraction()
        return base


PRESETS: Dict[str, WeightPolicy] = {
    # the full PICOLA policy
    "picola": WeightPolicy(),
    # maximize the raw number of satisfied seed dichotomies
    # (the approach the paper argues is insufficient)
    "dichotomy_count": WeightPolicy(
        guide_factor=1.0,
        progress_bonus=0.0,
        size_exponent=0.0,
        break_penalty=0.0,
    ),
    # chase whole-constraint satisfaction: strongly favour rows that
    # are nearly done and punish breaking agreement hard
    "constraint_count": WeightPolicy(
        guide_factor=1.0,
        progress_bonus=4.0,
        size_exponent=0.0,
        break_penalty=4.0,
    ),
}
