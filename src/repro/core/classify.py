"""Classify(): dynamic detection of infeasible constraints.

Section 3.3 of the paper.  Before each code column is generated, every
still-unsatisfied constraint is checked against (a) the capacity of
the minimum-length code space and (b) *nv-compatibility* with each
already-satisfied constraint.  A constraint that fails is infeasible —
no completion of the partial encoding can satisfy it — and is
substituted by its guide constraint.

The nv-compatibility test is the paper's Theorem of Section 3.3.1:
two constraints can hold simultaneously in ``B^nv`` only if cube
dimensions ``d_A, d_B, d_AB`` exist with

    d_A + d_B - d_AB  <=  nv                      (dimension formula)

subject to Conditions I (a proper son needs a strictly smaller cube,
an equal son an equal one) and II (``dc(son) <= dc(father)``), and —
for disjoint constraints — the capacity test
``dc(L_A) + dc(L_B) <= dc(S)``.

All dimension lower bounds are *dynamic*: they take into account the
columns generated so far through the constraint-matrix marks (a column
in which members disagree forces the final supercube one dimension
larger).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..encoding.matrix import ConstraintMatrix, ConstraintRow
from ..obs import resolve_tracer

__all__ = ["classify", "nv_compatible", "capacity_feasible"]


def _father_dims_ok(
    size_f: int,
    size_son: int,
    dim_f: int,
    dim_meet: int,
    is_whole_father: bool,
) -> bool:
    """Conditions I and II for one father against the meet cube.

    ``is_whole_father`` marks the case where the father's symbol set
    IS the shared set (A subset of B): then the father's cube is the
    meet cube itself and the dimensions must agree.
    """
    if is_whole_father:
        return dim_f == dim_meet
    if dim_f <= dim_meet:
        return False  # Condition I: a proper subset needs less room
    # Condition II: dc(meet) <= dc(father)
    return (1 << dim_meet) - size_son <= (1 << dim_f) - size_f


def nv_compatible(
    row_a: ConstraintRow,
    row_b: ConstraintRow,
    nv: int,
    n_symbols: int,
) -> bool:
    """Can both constraints still be satisfied together in B^nv?

    The faces of two satisfied constraints intersect in a cube (the
    *meet*): it contains the shared symbols and possibly unused codes,
    so its dimension can exceed ``ceil(log2 |son|)``.  The test
    searches all consistent dimension assignments ``(d_meet, d_A,
    d_B)`` subject to Conditions I/II, the dimension formula
    ``d_A + d_B - d_meet <= nv``, and the unused-code capacity
    ``dc(A) + dc(B) - dc(meet) <= dc(S)``; the pair is incompatible
    only when no assignment works.  (Being exhaustive keeps the check
    *sound*: it never kills a satisfiable pair — property-tested
    against brute force in tests/test_theory_properties.py.)
    """
    members_a = row_a.members
    members_b = row_b.members
    son = members_a & members_b
    size_a, size_b, size_son = len(members_a), len(members_b), len(son)
    dim_a_min = max(row_a.dim_min(nv), (size_a - 1).bit_length())
    dim_b_min = max(row_b.dim_min(nv), (size_b - 1).bit_length())
    dc_total = (1 << nv) - n_symbols

    # option 1: disjoint faces (only possible with no shared symbols)
    if not son:
        for dim_a in range(dim_a_min, nv):
            for dim_b in range(dim_b_min, nv):
                dc_a = (1 << dim_a) - size_a
                dc_b = (1 << dim_b) - size_b
                if dc_a + dc_b <= dc_total:
                    return True

    # option 2: intersecting faces meeting in a cube of dim d_meet
    meet_min = (size_son - 1).bit_length() if size_son else 0
    for dim_meet in range(meet_min, nv + 1):
        if (1 << dim_meet) < size_son:
            continue
        for dim_a in range(dim_a_min, nv + 1):
            if not _father_dims_ok(
                size_a, size_son, dim_a, dim_meet, son == members_a
            ):
                continue
            for dim_b in range(dim_b_min, nv + 1):
                if not _father_dims_ok(
                    size_b, size_son, dim_b, dim_meet,
                    son == members_b,
                ):
                    continue
                if dim_a + dim_b - dim_meet > nv:
                    continue
                waste = (
                    ((1 << dim_a) - size_a)
                    + ((1 << dim_b) - size_b)
                    - ((1 << dim_meet) - size_son)
                )
                if 0 <= waste <= dc_total:
                    return True
    return False


def capacity_feasible(
    row: ConstraintRow, nv: int, n_symbols: int
) -> bool:
    """Single-constraint feasibility in B^nv given the current marks.

    The implementing cube wastes ``2^dim - |L|`` codes which must all
    be genuinely unused, and there must be enough not-yet-generated
    columns for the face to exclude its remaining intruders.
    """
    dim_min = row.dim_min(nv)
    if dim_min > nv:
        return False
    waste = (1 << dim_min) - len(row.members)
    if waste > (1 << nv) - n_symbols:
        return False
    remaining_columns = nv - len(row.agree_columns) - len(
        row.disagree_columns
    )
    if row.intruders() and remaining_columns <= 0:
        return False
    # dimension budget: each participating column shrinks the face by
    # one dimension, and the face must keep >= log2|L| free columns.
    # Once the budget is spent, remaining intruders can never be cut.
    allowed_agree = nv - row.constraint.min_dimension()
    if row.intruders() and len(row.agree_columns) >= allowed_agree:
        return False
    return True


def classify(
    matrix: ConstraintMatrix,
    tracer=None,
) -> List[ConstraintRow]:
    """Mark newly infeasible rows; return them (guides not yet added).

    Implements the paper's rule: a satisfied constraint freezes part
    of the code space, and every active constraint that is not
    nv-compatible with it — or that fails the capacity test on its
    own — can never be satisfied and should be guided instead.

    ``tracer`` (default: the module-level tracer) counts calls,
    pairwise compatibility checks and newly infeasible rows.
    """
    tracer = resolve_tracer(tracer)
    tracer.count("classify.calls")
    nv = matrix.nv
    n = len(matrix.symbols)
    satisfied = [r for r in matrix.active_rows() if r.satisfied()]
    newly_infeasible: List[ConstraintRow] = []
    pairs_checked = 0
    for row in matrix.active_rows():
        if row.satisfied():
            continue
        if not capacity_feasible(row, nv, n):
            row.infeasible = True
            newly_infeasible.append(row)
            continue
        for done in satisfied:
            if done is row:
                continue
            pairs_checked += 1
            if not nv_compatible(row, done, nv, n):
                row.infeasible = True
                newly_infeasible.append(row)
                break
    if pairs_checked:
        tracer.count("classify.pairs_checked", pairs_checked)
    if newly_infeasible:
        tracer.count("classify.infeasible", len(newly_infeasible))
    return newly_infeasible
