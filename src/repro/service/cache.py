"""The content-addressed result cache and its canonical request hash.

``cache_key(request)`` is a pure function of the request *content*:
a SHA-256 over a canonical JSON rendering in which

* the **symbol order is preserved** (it defines the row order of the
  constraint matrix and therefore the shape of the problem),
* the **constraint order is canonicalized** (two requests listing the
  same face constraints in different order describe the same problem
  and hit the same cache line),
* **option keys are sorted** (dict insertion order never leaks into
  the key),
* live-object options (:class:`~repro.fsm.Fsm`,
  :class:`~repro.core.PicolaOptions`) hash via their canonical wire
  form, so an in-process request and its HTTP twin share a key.

The digest uses no Python ``hash()`` anywhere, so keys are stable
across processes and ``PYTHONHASHSEED`` values — a daemon restarted
tomorrow re-serves today's corpus for free (given a persistent
deployment of the cache; the in-memory :class:`ResultCache` shipped
here is per-process).

Requests whose options cannot be canonicalized (an exotic live
object) are *uncacheable*: :func:`cache_key` returns ``None`` and the
dispatcher simply executes them every time.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..runtime import InvalidSpecError
from .request import EncodeRequest, EncodeResponse, _encode_option

__all__ = ["cache_key", "canonical_payload", "ResultCache"]


def canonical_payload(request: EncodeRequest) -> str:
    """The canonical JSON text hashed by :func:`cache_key`.

    Raises :class:`~repro.runtime.InvalidSpecError` when an option
    value has no canonical form (the request is then uncacheable).
    """
    constraints = sorted(
        (
            sorted(c.symbols),
            c.kind,
            sorted(c.parent) if c.parent is not None else None,
            repr(float(c.weight)),
        )
        for c in request.constraints
    )
    payload = {
        "v": 1,  # key-format version: bump on layout changes
        "symbols": list(request.symbols),
        "constraints": [
            {
                "symbols": symbols,
                "kind": kind,
                "parent": parent,
                "weight": weight,
            }
            for symbols, kind, parent, weight in constraints
        ],
        "solver": request.solver,
        "options": {
            key: _encode_option(value)
            for key, value in request.options.items()
        },
        "nv": request.nv,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(request: EncodeRequest) -> Optional[str]:
    """SHA-256 content address of the request, or ``None`` when the
    request is uncacheable.

    QoS fields (``timeout`` / ``max_nodes``) and the ``trace`` flag
    are deliberately *not* part of the key: they shape how long we
    are willing to search, not which problem is being solved, and a
    result computed under a generous budget is a perfectly good
    answer for the same problem asked with a tight one.
    """
    try:
        text = canonical_payload(request)
    except InvalidSpecError:
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """A bounded, thread-safe LRU of classified responses by key.

    Only ``ok`` and ``infeasible`` responses are stored — both are
    *final* verdicts about the problem.  ``timeout`` / ``budget`` /
    ``failed`` outcomes depend on the QoS of the run that produced
    them, so caching them would wrongly starve a later, more patient
    request.
    """

    _FINAL_STATUSES = ("ok", "infeasible")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise InvalidSpecError("cache capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, EncodeResponse]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def peek(self, key: Optional[str]) -> Optional[EncodeResponse]:
        """Uncounted lookup: no hit/miss accounting, no LRU refresh.

        The batcher uses this to decide what to schedule without
        disturbing the statistics the serial merge will produce.
        """
        if key is None:
            return None
        with self._lock:
            response = self._entries.get(key)
        if response is None:
            return None
        return response.with_cached(True)

    def get(self, key: Optional[str]) -> Optional[EncodeResponse]:
        """The cached response (marked ``cached=True``), or ``None``."""
        if key is None:
            return None
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return response.with_cached(True)

    def put(
        self, key: Optional[str], response: EncodeResponse
    ) -> bool:
        """Store a final response; returns whether it was stored."""
        if (
            key is None
            or self.capacity == 0
            or response.status not in self._FINAL_STATUSES
        ):
            return False
        stored = response.with_cached(False)
        with self._lock:
            self._entries[key] = stored
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }
