"""The request/response boundary: frozen, wire-serializable payloads.

Every encode — interactive ``repro.api.encode`` call, harness
``assign_states`` step, ``picola serve`` HTTP request — crosses this
boundary as an :class:`EncodeRequest` and comes back as an
:class:`EncodeResponse`.  Both are frozen dataclasses with a canonical
dict form (:meth:`to_dict` / :meth:`from_dict`), so the same payload
travels unchanged between the in-process facade, the process-pool
batcher and the JSON daemon.

Conventions:

* the *symbol order* is significant (it is the row order of the
  paper's constraint matrix); the *constraint order* and *option key
  order* are not — the content-addressed cache canonicalizes both
  (see :mod:`repro.service.cache`);
* QoS rides in the request: ``timeout`` (wall-clock seconds) and
  ``max_nodes`` map onto the cooperative
  :class:`~repro.runtime.Budget`/:class:`~repro.runtime.Deadline`
  runtime at dispatch;
* a response is *classified*, never an exception: ``status`` is one
  of ``ok`` / ``infeasible`` / ``timeout`` / ``budget`` / ``failed``
  (mirroring :mod:`repro.runtime.isolation`), with ``error`` /
  ``error_type`` carrying the diagnostic on the non-``ok`` statuses.

Options that are live Python objects (a :class:`~repro.fsm.Fsm` for
the mustang solver, a :class:`~repro.core.PicolaOptions`) are
supported in-process and encoded on the wire as tagged dicts
(``{"__kiss__": ...}`` / ``{"__picola_options__": {...}}``), so a
batch worker process or an HTTP client can express every request the
facade can.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from types import MappingProxyType
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..encoding.codes import Encoding
from ..encoding.constraints import ConstraintSet, FaceConstraint
from ..runtime import Budget, InvalidSpecError

__all__ = [
    "EncodeRequest",
    "EncodeResponse",
    "RESPONSE_STATUSES",
]

#: every status a classified response may carry
RESPONSE_STATUSES = (
    "ok", "infeasible", "timeout", "budget", "failed",
)


# ----------------------------------------------------------------------
# option-value wire codec (tagged dicts for the live-object options)
# ----------------------------------------------------------------------
_KISS_TAG = "__kiss__"
_PICOLA_OPTIONS_TAG = "__picola_options__"


def _encode_option(value: Any) -> Any:
    """JSON-safe form of one option value (raises on exotic types)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_encode_option(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_encode_option(v) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _encode_option(v) for k, v in value.items()}
    # live objects with a canonical text/dict form
    from ..fsm.machine import Fsm

    if isinstance(value, Fsm):
        from ..fsm.kiss import format_kiss

        return {_KISS_TAG: format_kiss(value)}
    from ..core import PicolaOptions

    if isinstance(value, PicolaOptions):
        if not isinstance(value.weights, str):
            raise InvalidSpecError(
                "PicolaOptions with a custom WeightPolicy object is "
                "not wire-serializable; use a preset name"
            )
        return {
            _PICOLA_OPTIONS_TAG: {
                "use_guides": value.use_guides,
                "dynamic_classify": value.dynamic_classify,
                "weights": value.weights,
                "beam_width": value.beam_width,
                "beam_candidates": value.beam_candidates,
                "final_repair": value.final_repair,
            }
        }
    raise InvalidSpecError(
        f"option value of type {type(value).__name__} is not "
        "wire-serializable"
    )


def _decode_option(value: Any) -> Any:
    """Inverse of :func:`_encode_option` (tagged dicts come alive)."""
    if isinstance(value, dict):
        if set(value) == {_KISS_TAG}:
            from ..fsm.kiss import parse_kiss

            return parse_kiss(value[_KISS_TAG], name="request-fsm")
        if set(value) == {_PICOLA_OPTIONS_TAG}:
            from ..core import PicolaOptions

            return PicolaOptions(**value[_PICOLA_OPTIONS_TAG])
        return {k: _decode_option(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_option(v) for v in value]
    return value


def _constraint_to_dict(constraint: FaceConstraint) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "symbols": sorted(constraint.symbols),
    }
    if constraint.kind != "original":
        payload["kind"] = constraint.kind
    if constraint.parent is not None:
        payload["parent"] = sorted(constraint.parent)
    if constraint.weight != 1.0:
        payload["weight"] = constraint.weight
    return payload


def _constraint_from_any(
    value: Union[FaceConstraint, Mapping[str, Any], Iterable[str]],
) -> FaceConstraint:
    if isinstance(value, FaceConstraint):
        return value
    if isinstance(value, Mapping):
        unknown = set(value) - {"symbols", "kind", "parent", "weight"}
        if unknown:
            raise InvalidSpecError(
                f"constraint has unknown keys {sorted(unknown)}"
            )
        return FaceConstraint(
            value["symbols"],
            kind=value.get("kind", "original"),
            parent=value.get("parent"),
            weight=value.get("weight", 1.0),
        )
    return FaceConstraint(value)


@dataclass(frozen=True)
class EncodeRequest:
    """One encode problem plus solver choice, options and QoS.

    Construct with :meth:`build` (accepts a
    :class:`~repro.encoding.ConstraintSet`, ``FaceConstraint``
    instances, plain symbol groups or wire dicts) or :meth:`from_dict`
    for the JSON wire format.  Instances are frozen; derive variants
    with :func:`dataclasses.replace`.
    """

    symbols: Tuple[str, ...]
    constraints: Tuple[FaceConstraint, ...] = ()
    solver: str = "picola"
    options: Mapping[str, Any] = field(default_factory=dict)
    nv: Optional[int] = None
    #: QoS: wall-clock limit in seconds (None = unlimited)
    timeout: Optional[float] = None
    #: QoS: cooperative node budget (None = unlimited)
    max_nodes: Optional[int] = None
    #: attach a per-request trace summary to the response
    trace: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "symbols", tuple(self.symbols))
        object.__setattr__(
            self,
            "constraints",
            tuple(
                _constraint_from_any(c) for c in self.constraints
            ),
        )
        object.__setattr__(
            self,
            "options",
            MappingProxyType(dict(self.options)),
        )
        if not self.symbols:
            raise InvalidSpecError("a request needs at least one symbol")
        if not self.solver or not isinstance(self.solver, str):
            raise InvalidSpecError("solver must be a non-empty name")
        if self.nv is not None and self.nv < 1:
            raise InvalidSpecError("nv must be >= 1")
        if self.timeout is not None and self.timeout < 0:
            raise InvalidSpecError("timeout must be >= 0 seconds")
        if self.max_nodes is not None and self.max_nodes < 0:
            raise InvalidSpecError("max_nodes must be >= 0")
        if "nv" in self.options and self.nv is not None:
            raise InvalidSpecError(
                "pass nv as the request field or in options, not both"
            )
        # validates symbol uniqueness and constraint membership early,
        # so malformed requests die at the boundary, not mid-dispatch
        self.constraint_set()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        symbols: Union[ConstraintSet, Sequence[str]],
        constraints: Optional[Iterable[Any]] = None,
        *,
        solver: str = "picola",
        options: Optional[Mapping[str, Any]] = None,
        nv: Optional[int] = None,
        timeout: Optional[float] = None,
        max_nodes: Optional[int] = None,
        trace: bool = False,
    ) -> "EncodeRequest":
        """The friendly constructor mirroring ``Solver.solve``."""
        if isinstance(symbols, ConstraintSet):
            if constraints is not None:
                raise InvalidSpecError(
                    "pass constraints inside the ConstraintSet, "
                    "not both"
                )
            cset = symbols
            symbols = cset.symbols
            constraints = tuple(cset.constraints)
        return cls(
            symbols=tuple(symbols),
            constraints=tuple(constraints or ()),
            solver=solver,
            options=dict(options or {}),
            nv=nv,
            timeout=timeout,
            max_nodes=max_nodes,
            trace=trace,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EncodeRequest":
        """Parse the JSON wire format (unknown keys are rejected)."""
        if not isinstance(payload, Mapping):
            raise InvalidSpecError(
                "request payload must be a JSON object"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise InvalidSpecError(
                f"request has unknown keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "symbols" not in payload:
            raise InvalidSpecError("request is missing 'symbols'")
        options = payload.get("options") or {}
        if not isinstance(options, Mapping):
            raise InvalidSpecError("'options' must be an object")
        return cls(
            symbols=tuple(payload["symbols"]),
            constraints=tuple(payload.get("constraints") or ()),
            solver=payload.get("solver", "picola"),
            options={
                str(k): _decode_option(v) for k, v in options.items()
            },
            nv=payload.get("nv"),
            timeout=payload.get("timeout"),
            max_nodes=payload.get("max_nodes"),
            trace=bool(payload.get("trace", False)),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON wire format (round-trips through
        :meth:`from_dict`; raises ``InvalidSpecError`` on options
        that cannot cross a process boundary)."""
        return {
            "symbols": list(self.symbols),
            "constraints": [
                _constraint_to_dict(c) for c in self.constraints
            ],
            "solver": self.solver,
            "options": {
                k: _encode_option(v) for k, v in self.options.items()
            },
            "nv": self.nv,
            "timeout": self.timeout,
            "max_nodes": self.max_nodes,
            "trace": self.trace,
        }

    # ------------------------------------------------------------------
    def constraint_set(self) -> ConstraintSet:
        """The problem as the solvers' native :class:`ConstraintSet`."""
        return ConstraintSet(self.symbols, self.constraints)

    def solver_options(self) -> Dict[str, Any]:
        """The options mapping handed to the registry solver."""
        options = dict(self.options)
        if self.nv is not None:
            options["nv"] = self.nv
        return options

    def make_budget(self) -> Optional[Budget]:
        """The request's QoS as a fresh cooperative :class:`Budget`."""
        if self.timeout is None and self.max_nodes is None:
            return None
        return Budget(max_nodes=self.max_nodes, seconds=self.timeout)


@dataclass(frozen=True)
class EncodeResponse:
    """The classified outcome of one :class:`EncodeRequest`.

    ``codes``/``n_bits`` carry the encoding on ``status == "ok"``
    (reconstruct the rich object with :meth:`encoding`); ``stats``
    mirrors :attr:`repro.solvers.EncodeResult.stats`.  ``cached``
    marks a response served from the content-addressed cache — it is
    *envelope metadata*: :meth:`payload_bytes` excludes it, so a
    cache hit re-serves byte-identical result bytes.
    """

    status: str
    solver: str
    cache_key: str
    symbols: Tuple[str, ...] = ()
    codes: Optional[Mapping[str, int]] = None
    n_bits: Optional[int] = None
    seconds: float = 0.0
    stats: Mapping[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    trace: Optional[Mapping[str, Any]] = None
    cached: bool = False

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise InvalidSpecError(
                f"bad response status {self.status!r}; "
                f"choose from {RESPONSE_STATUSES}"
            )
        object.__setattr__(self, "symbols", tuple(self.symbols))
        if self.codes is not None:
            object.__setattr__(
                self, "codes", MappingProxyType(dict(self.codes))
            )
        object.__setattr__(
            self, "stats", MappingProxyType(dict(self.stats))
        )
        if self.trace is not None:
            object.__setattr__(
                self, "trace", MappingProxyType(dict(self.trace))
            )

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def encoding(self) -> Encoding:
        """The result as a rich :class:`~repro.encoding.Encoding`."""
        if self.codes is None or self.n_bits is None:
            raise InvalidSpecError(
                f"response has no encoding (status={self.status!r}, "
                f"error={self.error!r})"
            )
        return Encoding(self.symbols, dict(self.codes), self.n_bits)

    def with_cached(self, cached: bool = True) -> "EncodeResponse":
        """A copy flagged as (not) served from the cache."""
        return replace(self, cached=cached)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The result payload (everything except the ``cached``
        envelope flag), JSON-safe and deterministic."""
        return {
            "status": self.status,
            "solver": self.solver,
            "cache_key": self.cache_key,
            "symbols": list(self.symbols),
            "codes": dict(self.codes) if self.codes is not None else None,
            "n_bits": self.n_bits,
            "seconds": self.seconds,
            "stats": {
                k: _encode_option(v) for k, v in self.stats.items()
            },
            "error": self.error,
            "error_type": self.error_type,
            "trace": dict(self.trace) if self.trace is not None else None,
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], *, cached: bool = False
    ) -> "EncodeResponse":
        known = {f.name for f in fields(cls)} - {"cached"}
        unknown = set(payload) - known
        if unknown:
            raise InvalidSpecError(
                f"response has unknown keys {sorted(unknown)}"
            )
        return cls(
            status=payload["status"],
            solver=payload["solver"],
            cache_key=payload["cache_key"],
            symbols=tuple(payload.get("symbols") or ()),
            codes=payload.get("codes"),
            n_bits=payload.get("n_bits"),
            seconds=payload.get("seconds", 0.0),
            stats=payload.get("stats") or {},
            error=payload.get("error"),
            error_type=payload.get("error_type"),
            trace=payload.get("trace"),
            cached=cached,
        )

    def payload_bytes(self) -> bytes:
        """Canonical JSON bytes of :meth:`to_dict` — the unit of the
        byte-identical cache-hit guarantee."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
