"""``picola serve`` — the stdlib HTTP/JSON encode daemon.

A :class:`ThreadingHTTPServer` front end over the service layer:

* ``POST /v1/encode``  — one :class:`EncodeRequest` as JSON; answers
  ``{"cached": bool, "result": {...}}`` where ``result`` is the
  canonical response payload.  A repeated identical request is served
  from the content-addressed cache **byte-identically** (``result``
  bytes are re-emitted verbatim; only the ``cached`` envelope flag
  flips).
* ``POST /v1/batch``   — ``{"requests": [...]}``; the batch runs
  through :func:`repro.service.batch.encode_many` on the process
  pool (``--jobs``), results in submission order.
* ``GET /healthz``     — liveness + version + solver menu.
* ``GET /v1/stats``    — cache/queue/counter snapshot.

QoS and robustness:

* per-request deadlines: the request's ``timeout``/``max_nodes``
  map onto the cooperative :class:`~repro.runtime.Budget` runtime;
  requests without a timeout inherit ``--default-timeout`` when set;
* **micro-batching**: handler threads enqueue onto a single batcher
  thread which drains up to ``batch_max`` requests (waiting at most
  ``batch_wait`` seconds for stragglers) and fans them through the
  parallel engine — concurrent clients fill batches automatically;
* **backpressure**: at most ``queue_limit`` requests may be queued
  or in flight; beyond that the daemon answers a classified
  ``429 {"error": {"type": "overloaded"}}`` instead of growing an
  unbounded queue;
* transport errors are JSON too: malformed payloads are ``400`` with
  the taxonomy class name, unknown paths ``404``; *solver* failures
  are not transport errors — they come back ``200`` with a classified
  non-``ok`` ``result.status``, exactly like the in-process facade.
"""

from __future__ import annotations

import json
import math
import queue
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..obs import resolve_tracer
from ..runtime import InvalidSpecError, ReproError
from ..solvers import list_solvers
from .batch import encode_many
from .cache import ResultCache
from .request import EncodeRequest, EncodeResponse

__all__ = ["ServerConfig", "ServiceState", "PicolaServer", "make_server", "serve"]

#: maximum request body the daemon will read (16 MiB)
_MAX_BODY = 16 << 20


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``picola serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: worker processes per batch (engine semantics: 0 = all cores)
    jobs: int = 1
    #: content-addressed result cache capacity (0 disables caching)
    cache_size: int = 1024
    #: max requests queued or in flight before 429s (>= 1)
    queue_limit: int = 64
    #: seconds the batcher waits to aggregate a batch
    batch_wait: float = 0.01
    #: max requests per micro-batch
    batch_max: int = 16
    #: timeout applied to requests that carry none (None = unlimited)
    default_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise InvalidSpecError("queue_limit must be >= 1")
        if self.batch_max < 1:
            raise InvalidSpecError("batch_max must be >= 1")
        if self.batch_wait < 0:
            raise InvalidSpecError("batch_wait must be >= 0")


class ServiceState:
    """Shared daemon state: cache, tracer, admission control."""

    def __init__(self, config: ServerConfig, tracer: Any = None) -> None:
        self.config = config
        self.cache = ResultCache(config.cache_size)
        self.tracer = resolve_tracer(tracer)
        self._lock = threading.Lock()
        self._in_flight = 0
        self.rejected = 0

    # -- admission control (the backpressure boundary) -----------------
    def try_acquire(self, n: int = 1) -> bool:
        """Claim ``n`` queue slots; ``False`` means shed the load."""
        with self._lock:
            if self._in_flight + n > self.config.queue_limit:
                self.rejected += n
                self.tracer.count("service.rejected", n)
                return False
            self._in_flight += n
            return True

    def release(self, n: int = 1) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - n)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def retry_after(self) -> int:
        """Seconds a shed client should wait before retrying.

        Derived from the actual backlog rather than hardcoded: the
        in-flight requests drain in batches of ``batch_max``, each
        batch aggregating for up to ``batch_wait`` seconds, so the
        queue needs roughly ``ceil(in_flight / batch_max) *
        batch_wait`` seconds to make room.  Clamped to >= 1 (the
        smallest useful Retry-After) and rounded up to whole seconds
        as the header requires.
        """
        config = self.config
        with self._lock:
            in_flight = self._in_flight
        batches = math.ceil(in_flight / config.batch_max)
        return max(1, math.ceil(batches * config.batch_wait))

    def stats(self) -> Dict[str, Any]:
        # one lock-consistent snapshot: in_flight and rejected move
        # together under admission control, so reading them piecewise
        # could show a queue that is simultaneously full and empty
        with self._lock:
            in_flight, rejected = self._in_flight, self.rejected
        snapshot: Dict[str, Any] = {
            "cache": self.cache.stats(),
            "queue": {
                "in_flight": in_flight,
                "limit": self.config.queue_limit,
                "rejected": rejected,
            },
        }
        if getattr(self.tracer, "enabled", False):
            snapshot["counters"] = self.tracer.counters()
        return snapshot

    def apply_qos(self, request: EncodeRequest) -> EncodeRequest:
        """Server-side QoS defaults for requests that carry none."""
        if (
            request.timeout is None
            and self.config.default_timeout is not None
        ):
            return replace(
                request, timeout=self.config.default_timeout
            )
        return request


class _Pending:
    """One queued request waiting for its batch to complete."""

    __slots__ = ("request", "event", "response", "error")

    def __init__(self, request: EncodeRequest) -> None:
        self.request = request
        self.event = threading.Event()
        self.response: Optional[EncodeResponse] = None
        self.error: Optional[str] = None


_STOP = object()


class _Batcher(threading.Thread):
    """The micro-batching loop: drain, group, fan out, answer."""

    def __init__(self, state: ServiceState) -> None:
        super().__init__(name="picola-serve-batcher", daemon=True)
        self.state = state
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._stopped = False

    def submit(self, request: EncodeRequest) -> _Pending:
        pending = _Pending(request)
        self._queue.put(pending)
        return pending

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self._queue.put(_STOP)

    def run(self) -> None:
        config = self.state.config
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch: List[_Pending] = [item]
            if config.batch_max > 1 and config.batch_wait > 0:
                deadline = time.monotonic() + config.batch_wait
                while len(batch) < config.batch_max:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        self._process(batch)
                        return
                    batch.append(nxt)
            self._process(batch)

    def _process(self, batch: List[_Pending]) -> None:
        try:
            responses = encode_many(
                [pending.request for pending in batch],
                jobs=self.state.config.jobs,
                cache=self.state.cache,
                tracer=self.state.tracer,
            )
            for pending, response in zip(batch, responses):
                pending.response = response
        except Exception as exc:  # repro: noqa[RPA003] -- the daemon must answer 500 and keep serving, not die with a waiting client
            for pending in batch:
                pending.error = f"{type(exc).__name__}: {exc}"
        finally:
            for pending in batch:
                pending.event.set()


def _envelope(response: EncodeResponse) -> bytes:
    """The encode answer: cached flag spliced around the canonical
    result bytes, so a cache hit re-serves the stored payload
    byte-for-byte."""
    flag = b"true" if response.cached else b"false"
    return (
        b'{"cached":' + flag + b',"result":'
        + response.payload_bytes() + b"}"
    )


class _Handler(BaseHTTPRequestHandler):
    """Route table of the daemon; one instance per connection."""

    protocol_version = "HTTP/1.1"

    # these are set by make_server on the server object
    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    @property
    def batcher(self) -> _Batcher:
        return self.server.batcher  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # the CLI owns stdout; tracing owns diagnostics

    def _send_bytes(
        self, code: int, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        self._send_bytes(
            code,
            json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode("utf-8"),
        )

    def _send_error_json(
        self,
        code: int,
        error_type: str,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(
            {
                "error": {
                    "type": error_type,
                    "message": message,
                    "status": code,
                }
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        self._send_bytes(code, body, headers)

    def _read_payload(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise InvalidSpecError("request body is empty")
        if length > _MAX_BODY:
            raise InvalidSpecError(
                f"request body exceeds {_MAX_BODY} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidSpecError(f"invalid JSON: {exc}") from exc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path in ("/healthz", "/health"):
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": _version(),
                    "solvers": list(list_solvers()),
                },
            )
        elif self.path == "/v1/stats":
            self._send_json(200, self.state.stats())
        else:
            self._send_error_json(
                404, "NotFound", f"unknown path {self.path!r}"
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/v1/encode":
            self._handle_encode()
        elif self.path == "/v1/batch":
            self._handle_batch()
        else:
            self._send_error_json(
                404, "NotFound", f"unknown path {self.path!r}"
            )

    def _handle_encode(self) -> None:
        try:
            request = self.state.apply_qos(
                EncodeRequest.from_dict(self._read_payload())
            )
        except ReproError as exc:
            self._send_error_json(400, type(exc).__name__, str(exc))
            return
        if not self.state.try_acquire():
            self._send_error_json(
                429,
                "overloaded",
                "queue limit reached; retry later",
                {"Retry-After": str(self.state.retry_after())},
            )
            return
        try:
            pending = self.batcher.submit(request)
            pending.event.wait()
        finally:
            self.state.release()
        if pending.response is None:
            self._send_error_json(
                500, "internal", pending.error or "batcher failed"
            )
            return
        self._send_bytes(200, _envelope(pending.response))

    def _handle_batch(self) -> None:
        try:
            payload = self._read_payload()
            if (
                not isinstance(payload, dict)
                or not isinstance(payload.get("requests"), list)
            ):
                raise InvalidSpecError(
                    "batch payload must be "
                    '{"requests": [<request>, ...]}'
                )
            requests = [
                self.state.apply_qos(EncodeRequest.from_dict(entry))
                for entry in payload["requests"]
            ]
        except ReproError as exc:
            self._send_error_json(400, type(exc).__name__, str(exc))
            return
        if not requests:
            self._send_json(200, {"results": []})
            return
        if not self.state.try_acquire(len(requests)):
            self._send_error_json(
                429,
                "overloaded",
                f"batch of {len(requests)} exceeds free queue slots",
                {"Retry-After": str(self.state.retry_after())},
            )
            return
        try:
            pendings = [
                self.batcher.submit(request) for request in requests
            ]
            for pending in pendings:
                pending.event.wait()
        finally:
            self.state.release(len(requests))
        failed = [p for p in pendings if p.response is None]
        if failed:
            self._send_error_json(
                500, "internal", failed[0].error or "batcher failed"
            )
            return
        body = (
            b'{"results":['
            + b",".join(_envelope(p.response) for p in pendings)
            + b"]}"
        )
        self._send_bytes(200, body)


def _version() -> str:
    from .. import __version__

    return __version__


class PicolaServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server plus service state."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServerConfig, tracer: Any = None) -> None:
        super().__init__((config.host, config.port), _Handler)
        self.state = ServiceState(config, tracer)
        self.batcher = _Batcher(self.state)
        self.batcher.start()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        self.batcher.stop()
        super().server_close()
        self.batcher.join(timeout=5.0)


def make_server(
    config: Optional[ServerConfig] = None, *, tracer: Any = None
) -> PicolaServer:
    """Build (and bind) the daemon without starting the serve loop;
    ``port=0`` binds an ephemeral port (see ``server.url``)."""
    return PicolaServer(config or ServerConfig(), tracer)


def serve(
    config: Optional[ServerConfig] = None, *, tracer: Any = None
) -> int:
    """Run the daemon until interrupted; returns the exit code."""
    server = make_server(config, tracer=tracer)
    print(f"picola serve listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("picola serve: shutting down", flush=True)
    finally:
        server.server_close()
    return 0
