"""Micro-batching: fan a group of requests through the parallel engine.

:func:`encode_many` is the batch twin of
:func:`repro.service.dispatch.execute`: it takes N requests and
returns N responses **identical to serial one-at-a-time dispatch**
(modulo wall-clock seconds), while solving independent cache misses
concurrently on the :mod:`repro.harness.parallel` process pool.

The equivalence is structural, not hoped-for: the parallel path ends
with exactly the serial merge loop — walk the requests in submission
order, consult the cache like the serial path would, and only fall
back to the pre-computed worker result where the serial path would
have solved.  Requests whose options cannot cross a process boundary
(an exotic live object) degrade the whole batch to the in-process
serial path, mirroring the engine's degrade-to-serial contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..harness.parallel import Unit, resolve_jobs, run_units
from ..obs import resolve_tracer
from ..runtime import InvalidSpecError
from .cache import ResultCache, cache_key
from .dispatch import execute, solve_request
from .request import EncodeRequest, EncodeResponse

__all__ = ["encode_many"]


def _batch_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side unit: revive the request, solve, ship the dict.

    Runs in a pool process; caching happens in the parent (workers
    share no memory), so the worker solves cache-less.  It uses the
    solve-only entry (not :func:`execute`) so the service-level
    request/hit/miss accounting stays in the parent merge — adopted
    worker counters would otherwise double-count every request.
    """
    request = EncodeRequest.from_dict(payload)
    return solve_request(request).to_dict()


def _failed_response(
    request: EncodeRequest,
    key: Optional[str],
    status: str,
    error: Optional[str],
) -> EncodeResponse:
    if status not in ("timeout", "budget"):
        status = "failed"
    return EncodeResponse(
        status=status,
        solver=request.solver,
        cache_key=key or "",
        symbols=request.symbols,
        error=error or "worker failed",
        error_type="WorkerError",
    )


def encode_many(
    requests: Sequence[EncodeRequest],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    tracer: Any = None,
) -> List[EncodeResponse]:
    """Serve a batch of requests; order of results matches input.

    ``jobs`` has the engine-wide semantics (``1`` serial, ``0`` all
    cores, ``N`` a fixed pool).  With a shared ``cache``, duplicate
    requests inside one batch are solved once and the rest served as
    cache hits, exactly as a serial loop over ``execute`` would.
    """
    requests = list(requests)
    tracer = resolve_tracer(tracer)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(requests) <= 1:
        return [
            execute(request, cache=cache, tracer=tracer)
            for request in requests
        ]

    keys = [cache_key(request) for request in requests]

    # schedule everything the cache cannot answer right now; the
    # serial merge below re-checks, so over-scheduling a duplicate
    # costs work, never correctness
    pending: List[int] = []
    for i, key in enumerate(keys):
        if cache is None or cache.peek(key) is None:
            pending.append(i)

    try:
        units = [
            Unit(
                key=f"service/request-{i}",
                fn=_batch_worker,
                args=(requests[i].to_dict(),),
            )
            for i in pending
        ]
    except InvalidSpecError:
        # unserializable options: degrade to the in-process path
        return [
            execute(request, cache=cache, tracer=tracer)
            for request in requests
        ]

    solved: Dict[int, EncodeResponse] = {}
    for i, outcome in zip(
        pending, run_units(units, jobs=n_jobs, tracer=tracer)
    ):
        if outcome.ok:
            solved[i] = EncodeResponse.from_dict(outcome.value)
        else:
            solved[i] = _failed_response(
                requests[i], keys[i], outcome.status, outcome.error
            )

    # the serial merge: submission order, cache consulted exactly as
    # a one-at-a-time loop would; service-level accounting lives here
    # (and only here), so batch counters match the serial path even
    # when a duplicate was speculatively over-scheduled
    responses: List[EncodeResponse] = []
    for i, (request, key) in enumerate(zip(requests, keys)):
        tracer.count("service.requests")
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            tracer.count("service.cache.hits")
            responses.append(hit)
            continue
        if cache is not None:
            tracer.count("service.cache.misses")
        response = solved.get(i)
        if response is None:
            # evicted between peek and merge: solve inline like serial
            response = solve_request(request, tracer=tracer)
        if cache is not None:
            cache.put(key, response)
        responses.append(response)
    return responses
