"""Encoding-as-a-service: the request/response layer of the repro.

Everything that wants an encoding — the CLI, ``assign_states``, the
``repro.api`` facade, the ``picola serve`` daemon — builds an
:class:`EncodeRequest`, hands it to :func:`execute` (or
:func:`encode_many` for a batch), and receives an
:class:`EncodeResponse`.  One dispatch path means budgets, tracing,
caching and failure classification cannot drift between interactive
and batch use.

Layout:

* :mod:`repro.service.request`  — the frozen request/response types
  and their wire codec;
* :mod:`repro.service.cache`    — the content-addressed result cache
  (:func:`cache_key`, :class:`ResultCache`);
* :mod:`repro.service.dispatch` — :func:`execute`, the single
  request-to-response code path;
* :mod:`repro.service.batch`    — :func:`encode_many`, batch dispatch
  with serial-equivalent results;
* :mod:`repro.service.server`   — the ``picola serve`` HTTP/JSON
  daemon (:class:`ServerConfig`, :func:`make_server`, :func:`serve`).
"""

from .batch import encode_many
from .cache import ResultCache, cache_key, canonical_payload
from .dispatch import REQUEST_SPAN, SOLVE_SPAN, execute
from .request import EncodeRequest, EncodeResponse
from .server import PicolaServer, ServerConfig, make_server, serve

__all__ = [
    "EncodeRequest",
    "EncodeResponse",
    "ResultCache",
    "cache_key",
    "canonical_payload",
    "execute",
    "encode_many",
    "REQUEST_SPAN",
    "SOLVE_SPAN",
    "PicolaServer",
    "ServerConfig",
    "make_server",
    "serve",
]
