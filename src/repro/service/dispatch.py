"""Request execution: one code path from request to response.

:func:`execute` is the *only* place in the tree where an
:class:`~repro.service.EncodeRequest` meets the solver registry —
the CLI, the ``repro.api`` facade, ``assign_states`` and the
``picola serve`` daemon all funnel through it, so budgets, tracing,
caching and failure classification behave identically for batch and
interactive use.

Observability contract (asserted by ``tests/test_service.py``):

* every request bumps the ``service.requests`` counter and runs
  under a ``service/request`` span (its duration feeds the tracer's
  per-name latency histogram);
* a cache hit bumps ``service.cache.hits`` and emits **no**
  ``service/solve`` span — the solver never runs;
* a miss bumps ``service.cache.misses`` and wraps the registry call
  in a ``service/solve`` span;
* classified failures bump ``service.errors``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..obs import MemorySink, Tracer, resolve_tracer
from ..runtime import Budget, InfeasibleError, ReproError
from ..runtime.isolation import classify_failure
from ..solvers import EncodeResult, get_solver
from .cache import ResultCache, cache_key
from .request import EncodeRequest, EncodeResponse, _encode_option

__all__ = ["execute", "solve_request", "REQUEST_SPAN", "SOLVE_SPAN"]

#: span wrapping every request (cache hits included)
REQUEST_SPAN = "service/request"
#: span wrapping the registry solve (never emitted on a cache hit)
SOLVE_SPAN = "service/solve"


def _safe_stats(stats: Dict[str, Any]) -> Dict[str, Any]:
    """Solver stats restricted to wire-safe values."""
    out: Dict[str, Any] = {}
    for key, value in stats.items():
        try:
            out[key] = _encode_option(value)
        except ReproError:
            continue  # live objects stay solver-internal
    return out


def _response_from_result(
    request: EncodeRequest,
    key: Optional[str],
    result: EncodeResult,
    trace: Optional[Dict[str, Any]],
) -> EncodeResponse:
    encoding = result.encoding
    return EncodeResponse(
        status="ok",
        solver=result.solver,
        cache_key=key or "",
        symbols=encoding.symbols,
        codes=dict(encoding.codes),
        n_bits=encoding.n_bits,
        seconds=result.seconds,
        stats=_safe_stats(dict(result.stats)),
        trace=trace,
    )


def _response_from_error(
    request: EncodeRequest,
    key: Optional[str],
    exc: BaseException,
    trace: Optional[Dict[str, Any]],
) -> EncodeResponse:
    if isinstance(exc, InfeasibleError):
        status, message = "infeasible", str(exc)
    else:
        status, message = classify_failure(exc)
    return EncodeResponse(
        status=status,
        solver=request.solver,
        cache_key=key or "",
        symbols=request.symbols,
        error=message,
        error_type=type(exc).__name__,
        trace=trace,
    )


def _trace_summary(tracer: Tracer) -> Dict[str, Any]:
    return {
        "counters": tracer.counters(),
        "timings": {
            name: hist.to_dict()
            for name, hist in tracer.timings().items()
        },
    }


def _solve(
    request: EncodeRequest,
    key: Optional[str],
    budget: Optional[Budget],
    tracer: Any,
    classify: bool,
) -> EncodeResponse:
    """Run the registry solver; classify failures unless told not to."""
    if budget is None:
        budget = request.make_budget()
    # per-request tracing: the solve runs under a private tracer whose
    # aggregates ride back in the response; its events are adopted
    # into the caller's live tracer so --trace/--profile stay whole
    sink: Optional[MemorySink] = None
    request_tracer: Optional[Tracer] = None
    solve_tracer = tracer
    if request.trace:
        sink = MemorySink()
        request_tracer = Tracer(sink)
        solve_tracer = request_tracer
    trace: Optional[Dict[str, Any]] = None
    try:
        with tracer.span(SOLVE_SPAN, solver=request.solver):
            solver = get_solver(request.solver)
            result = solver.solve(
                request.constraint_set(),
                options=request.solver_options(),
                budget=budget,
                tracer=solve_tracer,
            )
    except (ReproError, KeyError, TypeError) as exc:
        # KeyError: unknown solver name; TypeError: unknown option
        # keys — both are classified, like every solver failure
        tracer.count("service.errors")
        if not classify:
            raise
        if request_tracer is not None and sink is not None:
            trace = _trace_summary(request_tracer)
            _adopt(tracer, sink, request_tracer)
        return _response_from_error(request, key, exc, trace)
    if request_tracer is not None and sink is not None:
        trace = _trace_summary(request_tracer)
        _adopt(tracer, sink, request_tracer)
    return _response_from_result(request, key, result, trace)


def _adopt(tracer: Any, sink: MemorySink, private: Tracer) -> None:
    if getattr(tracer, "enabled", False):
        tracer.adopt(
            sink.spans,
            counters=private.counters(),
            gauges=private.gauges(),
        )


def solve_request(
    request: EncodeRequest,
    *,
    budget: Optional[Budget] = None,
    tracer: Any = None,
    classify: bool = True,
) -> EncodeResponse:
    """The solve-only entry: registry dispatch and classification
    *without* the service accounting (no ``service.requests`` /
    hit/miss counters, no ``service/request`` span).

    The batch workers use this so that the parent-side merge in
    :func:`repro.service.batch.encode_many` stays the single place
    service-level counters are bumped — adopted worker counters would
    otherwise double-count every request.
    """
    tracer = resolve_tracer(tracer)
    return _solve(
        request, cache_key(request), budget, tracer, classify
    )


def execute(
    request: EncodeRequest,
    *,
    cache: Optional[ResultCache] = None,
    budget: Optional[Budget] = None,
    tracer: Any = None,
    classify: bool = True,
) -> EncodeResponse:
    """Serve one request: cache lookup, registry solve, classification.

    ``budget`` overrides the request's declarative QoS with an
    externally shared :class:`~repro.runtime.Budget` (the harness
    does this so an encode and its espresso step split one
    allowance).  With ``classify=False`` solver failures propagate as
    exceptions instead of becoming non-``ok`` responses — the
    harness' per-benchmark fault isolation wants the raw error.
    """
    tracer = resolve_tracer(tracer)
    tracer.count("service.requests")
    key = cache_key(request)
    with tracer.span(
        REQUEST_SPAN,
        solver=request.solver,
        symbols=len(request.symbols),
    ):
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                tracer.count("service.cache.hits")
                return hit
            tracer.count("service.cache.misses")
        response = _solve(request, key, budget, tracer, classify)
        if cache is not None:
            cache.put(key, response)
    return response
