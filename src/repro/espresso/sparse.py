"""MAKE_SPARSE: literal/connection reduction after minimization.

ESPRESSO's final pass: with the cube count settled, reduce the number
of PLA connections.  Two dual steps:

* the *output part* is lowered — a cube drops an output value when the
  rest of the cover already implements that output over the cube
  (fewer OR-plane contacts);
* the *input parts* are raised — a literal is removed when the grown
  cube still avoids the off-set (fewer AND-plane contacts).

Both steps preserve cover semantics exactly; only the wiring density
changes.  ``make_sparse`` works on any multi-valued space where the
last part plays the output role (lowering is applied to it, raising
to the rest).

The working covers stay packed (:mod:`repro.cubes.bulk`): containment
checks go through the packed tautology seam and off-set avoidance is a
single ``intersects_any`` kernel call per attempted raise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cubes import Space
from ..cubes.bulk import active_kernel
from ..cubes.complement import complement_packed
from ..cubes.tautology import cover_contains_cube_packed

__all__ = ["make_sparse", "lower_outputs", "raise_inputs"]

#: lint marker: this module is a bulk-kernel hot path (RPA008)
__bulk_kernel__ = True


def lower_outputs(
    space: Space,
    cover: List[int],
    dcset: Sequence[int] = (),
) -> List[int]:
    """Drop redundant output values from each cube (last part)."""
    kernel = active_kernel()
    part = space.num_parts - 1
    result = kernel.pack(space, cover)
    dc = kernel.pack(space, dcset)
    for idx in range(kernel.length(result)):
        cube = kernel.row(space, result, idx)
        field = space.field(cube, part)
        for value in range(space.part_sizes[part]):
            bit = 1 << value
            if not field & bit or field == bit:
                continue  # not asserted, or last remaining value
            # the cube restricted to this output value
            shrunk = space.with_field(cube, part, bit)
            rest = kernel.concat(
                space, kernel.delete_row(space, result, idx), dc
            )
            if cover_contains_cube_packed(space, kernel, rest, shrunk):
                field = field & ~bit
                cube = space.with_field(cube, part, field)
        result = kernel.with_row(space, result, idx, cube)
    keep = kernel.admits_rows(space, result, space.part_masks[part])
    return kernel.unpack(space, kernel.select(space, result, keep))


def raise_inputs(
    space: Space,
    cover: List[int],
    off: Optional[Sequence[int]] = None,
    dcset: Sequence[int] = (),
) -> List[int]:
    """Remove input literals while the cube avoids the off-set."""
    kernel = active_kernel()
    if off is None:
        off_packed = complement_packed(
            space,
            kernel,
            kernel.pack(space, list(cover) + list(dcset)),
        )
    else:
        off_packed = kernel.pack(space, off)
    output_mask = space.part_masks[space.num_parts - 1]
    result: List[int] = []
    packed = kernel.pack(space, cover)
    for idx in range(kernel.length(packed)):
        cube = kernel.row(space, packed, idx)
        free = (space.universe & ~cube) & ~output_mask
        while free:
            bit = free & -free
            free &= free - 1
            grown = cube | bit
            if not kernel.intersects_any(space, off_packed, grown):
                cube = grown
        result.append(cube)
    return result


def make_sparse(
    space: Space,
    cover: List[int],
    dcset: Sequence[int] = (),
    *,
    off: Optional[Sequence[int]] = None,
) -> List[int]:
    """ESPRESSO's make-sparse: lower outputs, then raise inputs."""
    lowered = lower_outputs(space, cover, dcset)
    return raise_inputs(space, lowered, off, dcset)
