"""MAKE_SPARSE: literal/connection reduction after minimization.

ESPRESSO's final pass: with the cube count settled, reduce the number
of PLA connections.  Two dual steps:

* the *output part* is lowered — a cube drops an output value when the
  rest of the cover already implements that output over the cube
  (fewer OR-plane contacts);
* the *input parts* are raised — a literal is removed when the grown
  cube still avoids the off-set (fewer AND-plane contacts).

Both steps preserve cover semantics exactly; only the wiring density
changes.  ``make_sparse`` works on any multi-valued space where the
last part plays the output role (lowering is applied to it, raising
to the rest).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cubes import Space, complement, cover_contains_cube

__all__ = ["make_sparse", "lower_outputs", "raise_inputs"]


def lower_outputs(
    space: Space,
    cover: List[int],
    dcset: Sequence[int] = (),
) -> List[int]:
    """Drop redundant output values from each cube (last part)."""
    part = space.num_parts - 1
    mask = space.part_masks[part]
    offset = space.offsets[part]
    result = list(cover)
    for idx in range(len(result)):
        cube = result[idx]
        field = space.field(cube, part)
        for value in range(space.part_sizes[part]):
            bit = 1 << value
            if not field & bit or field == bit:
                continue  # not asserted, or last remaining value
            candidate_field = field & ~bit
            shrunk = space.with_field(cube, part, bit)
            # the cube restricted to this output value
            rest = (
                result[:idx]
                + result[idx + 1 :]
                + list(dcset)
            )
            if cover_contains_cube(space, rest, shrunk):
                field = candidate_field
                cube = space.with_field(cube, part, field)
        result[idx] = cube
    return [c for c in result if space.field(c, part)]


def raise_inputs(
    space: Space,
    cover: List[int],
    off: Optional[Sequence[int]] = None,
    dcset: Sequence[int] = (),
) -> List[int]:
    """Remove input literals while the cube avoids the off-set."""
    if off is None:
        off = complement(space, list(cover) + list(dcset))
    result = []
    for cube in cover:
        free = (space.universe & ~cube) & ~space.part_masks[
            space.num_parts - 1
        ]
        while free:
            bit = free & -free
            free &= free - 1
            grown = cube | bit
            if not any(_intersects(space, grown, c) for c in off):
                cube = grown
        result.append(cube)
    return result


def _intersects(space: Space, a: int, b: int) -> bool:
    c = a & b
    for mask in space.part_masks:
        if not c & mask:
            return False
    return True


def make_sparse(
    space: Space,
    cover: List[int],
    dcset: Sequence[int] = (),
    *,
    off: Optional[Sequence[int]] = None,
) -> List[int]:
    """ESPRESSO's make-sparse: lower outputs, then raise inputs."""
    lowered = lower_outputs(space, cover, dcset)
    return raise_inputs(space, lowered, off, dcset)
