"""EXPAND: grow each cube into a prime implicant against the off-set.

Each cube is expanded one position at a time.  A raise is *feasible*
when the grown cube still avoids every off-set cube; among feasible
raises the one covering the most other on-set cubes (then the most
popular column) is taken, which is the essence of ESPRESSO's
covering-directed expansion without the full blocking/covering matrix
machinery.

Feasibility and scoring are whole-cover kernel calls on the packed
off-set/on-set matrices (:mod:`repro.cubes.bulk`): per raise round,
``blocked_raises`` folds the *critical* off rows (exactly one blocking
part) into one blocked-bit mask, and ``best_raise`` scores every
candidate bit against all remaining on-set rows at once.  The results
are bit-identical to the historical incremental per-cube bookkeeping:
recomputing the blocking parts against the grown cube each round gives
the same critical set the incremental updates maintained.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cubes import Space
from ..cubes.bulk import active_kernel
from ..obs import resolve_tracer

__all__ = ["expand", "expand_cube"]

#: lint marker: this module is a bulk-kernel hot path (RPA008)
__bulk_kernel__ = True


def expand_cube(
    space: Space,
    cube: int,
    off: Sequence[int],
    others: Sequence[int] = (),
) -> int:
    """Expand ``cube`` to a prime implicant of the complement of ``off``.

    ``others`` (remaining on-set cubes) only steer the raise order.
    """
    kernel = active_kernel()
    return _expand_cube_packed(
        space,
        kernel,
        cube,
        kernel.pack(space, off),
        kernel.pack(space, others),
    )


def _expand_cube_packed(space: Space, kernel, cube: int, off, others) -> int:
    free_bits = space.universe & ~cube
    while free_bits:
        candidates = free_bits & ~kernel.blocked_raises(space, off, cube)
        best_bit = kernel.best_raise(space, others, cube, candidates)
        if not best_bit:
            break
        cube |= best_bit
        free_bits &= ~best_bit
    return cube


def expand(
    space: Space,
    onset: List[int],
    off: Sequence[int],
    tracer=None,
) -> List[int]:
    """Expand every cube of ``onset``; drop cubes covered along the way.

    Cubes are processed smallest-first (ascending weight), the standard
    ESPRESSO order: small cubes benefit most from expansion and their
    primes tend to cover the larger ones.  ``tracer`` counts the cubes
    this pass visits (``espresso.expand.cubes``).
    """
    resolve_tracer(tracer).count("espresso.expand.cubes", len(onset))
    kernel = active_kernel()
    onset_packed = kernel.pack(space, onset)
    off_packed = kernel.pack(space, off)
    weights = kernel.popcounts(space, onset_packed)
    order = sorted(range(len(onset)), key=weights.__getitem__)
    covered = [False] * len(onset)
    primes: List[int] = []
    for idx in order:
        if covered[idx]:
            continue
        others = kernel.gather(
            space,
            onset_packed,
            [j for j in order if j != idx and not covered[j]],
        )
        prime = _expand_cube_packed(
            space, kernel, kernel.row(space, onset_packed, idx),
            off_packed, others,
        )
        swallowed = kernel.contained_rows(space, onset_packed, prime)
        for j in order:
            if j != idx and not covered[j] and swallowed[j]:
                covered[j] = True
        primes.append(prime)
    # a later prime can swallow an earlier one
    primes_packed = kernel.pack(space, primes)
    keep = kernel.dedup_keep_mask(space, primes_packed)
    return kernel.unpack(space, kernel.select(space, primes_packed, keep))
