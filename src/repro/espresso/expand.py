"""EXPAND: grow each cube into a prime implicant against the off-set.

Each cube is expanded one position at a time.  A raise is *feasible*
when the grown cube still avoids every off-set cube; among feasible
raises the one covering the most other on-set cubes (then the most
popular column) is taken, which is the essence of ESPRESSO's
covering-directed expansion without the full blocking/covering matrix
machinery.

Feasibility is tracked incrementally: for every off-set cube we keep
the set of parts where it currently has empty intersection with the
cube being expanded (its *blocking parts*).  An on-set cube never
intersects the off-set, so that set is non-empty; raising position
``(part, value)`` is blocked exactly by off-cubes whose only blocking
part is ``part`` and which admit ``value`` there.  This turns the
inner feasibility test into a dictionary lookup.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..cubes import Space, contains
from ..obs import resolve_tracer

__all__ = ["expand", "expand_cube"]


def expand_cube(
    space: Space,
    cube: int,
    off: Sequence[int],
    others: Sequence[int] = (),
) -> int:
    """Expand ``cube`` to a prime implicant of the complement of ``off``.

    ``others`` (remaining on-set cubes) only steer the raise order.
    """
    masks = space.part_masks
    n_parts = space.num_parts

    # blocking parts of each off cube relative to the current cube
    blocking: List[Set[int]] = []
    for c in off:
        meet = c & cube
        parts = {p for p in range(n_parts) if not meet & masks[p]}
        blocking.append(parts)

    # off-cubes at distance one, indexed by their single blocking part
    critical: Dict[int, List[int]] = {}
    for idx, parts in enumerate(blocking):
        if len(parts) == 1:
            critical.setdefault(next(iter(parts)), []).append(idx)

    free_bits = space.universe & ~cube
    bit_part = {}
    for part in range(n_parts):
        for value in range(space.part_sizes[part]):
            bit_part[1 << (part * 0 + space.position(part, value))] = part

    while free_bits:
        best_bit = 0
        best_key: Tuple[int, int] = (-1, -1)
        bits = free_bits
        while bits:
            bit = bits & -bits
            bits &= bits - 1
            part = bit_part[bit]
            if any(off[i] & bit for i in critical.get(part, ())):
                continue  # raising this value hits an off cube
            grown = cube | bit
            covered = 0
            column = 0
            for o in others:
                if o & bit:
                    column += 1
                if not o & ~grown:
                    covered += 1
            key = (covered, column)
            if key > best_key:
                best_key = key
                best_bit = bit
        if not best_bit:
            break
        part = bit_part[best_bit]
        cube |= best_bit
        free_bits &= ~best_bit
        # raising a value in `part` may unblock off-cubes there
        for idx, parts in enumerate(blocking):
            if part in parts and off[idx] & best_bit:
                parts.discard(part)
                if len(parts) == 1:
                    critical.setdefault(next(iter(parts)), []).append(idx)
    return cube


def expand(
    space: Space,
    onset: List[int],
    off: Sequence[int],
    tracer=None,
) -> List[int]:
    """Expand every cube of ``onset``; drop cubes covered along the way.

    Cubes are processed smallest-first (ascending weight), the standard
    ESPRESSO order: small cubes benefit most from expansion and their
    primes tend to cover the larger ones.  ``tracer`` counts the cubes
    this pass visits (``espresso.expand.cubes``).
    """
    resolve_tracer(tracer).count("espresso.expand.cubes", len(onset))
    order = sorted(range(len(onset)), key=lambda i: bin(onset[i]).count("1"))
    covered = [False] * len(onset)
    result: List[int] = []
    for idx in order:
        if covered[idx]:
            continue
        others = [onset[j] for j in order if j != idx and not covered[j]]
        prime = expand_cube(space, onset[idx], off, others)
        for j in order:
            if j != idx and not covered[j] and contains(prime, onset[j]):
                covered[j] = True
        result.append(prime)
    # a later prime can swallow an earlier one
    out: List[int] = []
    for i, c in enumerate(result):
        if any(
            contains(d, c) and (d != c or j < i)
            for j, d in enumerate(result)
            if j != i
        ):
            continue
        out.append(c)
    return out
