"""REDUCE: shrink each cube to the smallest cube doing its unique work.

The classic SCCC computation: the reduction of cube ``c`` against the
rest of the cover ``G`` is

    c' = c  AND  supercube( complement( (G cofactor c) ) )

i.e. the smallest cube containing the part of ``c`` that no other cube
(nor the don't-care set) covers.  Reduced cubes give the following
EXPAND pass room to move to a *different* prime, which is how the
espresso loop escapes local minima.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cubes import Space, complement, supercube
from ..obs import resolve_tracer

__all__ = ["reduce_cover", "reduce_cube"]


def _intersects(space: Space, a: int, b: int) -> bool:
    c = a & b
    for mask in space.part_masks:
        if not c & mask:
            return False
    return True


def reduce_cube(
    space: Space,
    cube: int,
    rest: Sequence[int],
) -> int:
    """Smallest cube covering the minterms of ``cube`` unique to it.

    Returns 0 when ``rest`` covers ``cube`` entirely (caller decides
    what to do; :func:`reduce_cover` keeps such cubes untouched and
    leaves their removal to IRREDUNDANT).
    """
    lifted = space.universe & ~cube
    cofactored = [c | lifted for c in rest if _intersects(space, c, cube)]
    comp = complement(space, cofactored)
    if not comp:
        return 0
    return cube & supercube(comp)


def reduce_cover(
    space: Space,
    onset: List[int],
    dcset: Sequence[int] = (),
    tracer=None,
) -> List[int]:
    """Reduce every cube in place against the current partial result.

    Cubes are processed largest-first (ESPRESSO's order): reducing the
    big primes first gives the small ones the most freedom afterwards.
    Reduction is *sequential* — each reduction sees the already-reduced
    versions of earlier cubes — which preserves the cover's coverage.
    ``tracer`` counts the cubes visited (``espresso.reduce.cubes``).
    """
    resolve_tracer(tracer).count("espresso.reduce.cubes", len(onset))
    order = sorted(
        range(len(onset)),
        key=lambda i: bin(onset[i]).count("1"),
        reverse=True,
    )
    cubes = list(onset)
    for idx in order:
        rest = [cubes[j] for j in range(len(cubes)) if j != idx]
        reduced = reduce_cube(space, cubes[idx], rest + list(dcset))
        if reduced:
            cubes[idx] = reduced
    return cubes
