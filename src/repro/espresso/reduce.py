"""REDUCE: shrink each cube to the smallest cube doing its unique work.

The classic SCCC computation: the reduction of cube ``c`` against the
rest of the cover ``G`` is

    c' = c  AND  supercube( complement( (G cofactor c) ) )

i.e. the smallest cube containing the part of ``c`` that no other cube
(nor the don't-care set) covers.  Reduced cubes give the following
EXPAND pass room to move to a *different* prime, which is how the
espresso loop escapes local minima.

The pass stays on packed word-matrix covers throughout
(:mod:`repro.cubes.bulk`): the cofactor-against-pivot, the recursive
complement and the supercube fold are each one kernel call, and the
working cover is updated row-wise between reductions.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cubes import Space
from ..cubes.bulk import active_kernel
from ..cubes.complement import complement_packed
from ..obs import resolve_tracer

__all__ = ["reduce_cover", "reduce_cube"]

#: lint marker: this module is a bulk-kernel hot path (RPA008)
__bulk_kernel__ = True


def reduce_cube(
    space: Space,
    cube: int,
    rest: Sequence[int],
) -> int:
    """Smallest cube covering the minterms of ``cube`` unique to it.

    Returns 0 when ``rest`` covers ``cube`` entirely (caller decides
    what to do; :func:`reduce_cover` keeps such cubes untouched and
    leaves their removal to IRREDUNDANT).
    """
    kernel = active_kernel()
    return _reduce_cube_packed(
        space, kernel, cube, kernel.pack(space, rest)
    )


def _reduce_cube_packed(space: Space, kernel, cube: int, rest) -> int:
    cofactored = kernel.cofactor_cube(space, rest, cube)
    comp = complement_packed(space, kernel, cofactored)
    if not kernel.length(comp):
        return 0
    return cube & kernel.or_fold(space, comp)


def reduce_cover(
    space: Space,
    onset: List[int],
    dcset: Sequence[int] = (),
    tracer=None,
) -> List[int]:
    """Reduce every cube in place against the current partial result.

    Cubes are processed largest-first (ESPRESSO's order): reducing the
    big primes first gives the small ones the most freedom afterwards.
    Reduction is *sequential* — each reduction sees the already-reduced
    versions of earlier cubes — which preserves the cover's coverage.
    ``tracer`` counts the cubes visited (``espresso.reduce.cubes``).
    """
    resolve_tracer(tracer).count("espresso.reduce.cubes", len(onset))
    kernel = active_kernel()
    cubes = kernel.pack(space, onset)
    dc = kernel.pack(space, dcset)
    weights = kernel.popcounts(space, cubes)
    order = sorted(
        range(len(onset)), key=weights.__getitem__, reverse=True
    )
    for idx in order:
        rest = kernel.concat(
            space, kernel.delete_row(space, cubes, idx), dc
        )
        reduced = _reduce_cube_packed(
            space, kernel, kernel.row(space, cubes, idx), rest
        )
        if reduced:
            cubes = kernel.with_row(space, cubes, idx, reduced)
    return kernel.unpack(space, cubes)
