"""The ESPRESSO main loop.

``espresso(space, onset, dcset)`` runs the classic fixed point

    EXPAND -> IRREDUNDANT -> [ESSENTIALS] -> { REDUCE -> EXPAND ->
    IRREDUNDANT } until the cost stops improving -> [LASTGASP]

over covers represented as lists of int cubes in any multi-valued
space.  Cost is (number of cubes, number of asserted positions), the
same lexicographic objective ESPRESSO uses (cube count first, then
literals).

``espresso_pla`` is the convenience entry point for :class:`Pla`
objects (multi-output functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cubes import Space, absorb, complement, contains, cover_contains_cube
from ..obs import resolve_tracer
from ..runtime import Budget, faults
from .expand import expand, expand_cube
from .irredundant import irredundant, relatively_essential
from .pla import Pla
from .reduce import reduce_cover, reduce_cube

__all__ = ["espresso", "espresso_pla", "EspressoStats", "cover_cost"]


@dataclass
class EspressoStats:
    """Run statistics of one espresso() invocation."""

    iterations: int = 0
    initial_terms: int = 0
    final_terms: int = 0
    essential_terms: int = 0
    lastgasp_improved: bool = False


def cover_cost(space: Space, cover: Sequence[int]) -> Tuple[int, int]:
    """(cube count, asserted positions) — lexicographic minimization goal.

    "Asserted positions" counts the zero bits of each cube: fewer set
    bits means a larger cube, so we count *missing* bits as cost.
    """
    literals = sum(
        space.width - bin(cube).count("1") for cube in cover
    )
    return (len(cover), literals)


def espresso(
    space: Space,
    onset: Sequence[int],
    dcset: Sequence[int] = (),
    *,
    use_essentials: bool = True,
    use_lastgasp: bool = True,
    max_iterations: int = 20,
    stats: Optional[EspressoStats] = None,
    budget: Optional[Budget] = None,
    tracer=None,
) -> List[int]:
    """Heuristically minimize ``onset`` with don't-cares ``dcset``.

    Returns a new cover with the same coverage over the care set,
    typically with (near-)minimal cube count.  ``budget`` is a
    cooperative deadline/counter checked once per improvement
    iteration (the passes themselves are not interrupted); ``tracer``
    (default: the module-level tracer) records an
    ``espresso/minimize`` span, per-iteration counters and
    cubes-after-pass gauges at the same seam.
    """
    if stats is None:
        stats = EspressoStats()
    tracer = resolve_tracer(tracer)
    dc = list(dcset)
    cover = absorb(list(onset))
    stats.initial_terms = len(cover)
    if not cover:
        stats.final_terms = 0
        return []
    with tracer.span(
        "espresso/minimize", terms=len(cover), width=space.width
    ):
        off = complement(space, cover + dc)

        cover = expand(space, cover, off, tracer=tracer)
        cover = irredundant(space, cover, dc, tracer=tracer)

        essentials: List[int] = []
        if use_essentials:
            essentials, rest = relatively_essential(space, cover, dc)
            # keep the truly load-bearing primes fixed; they act as
            # extra don't-cares for the rest of the optimization
            if essentials and rest:
                cover = rest
                dc = dc + essentials
            else:
                essentials = []
        stats.essential_terms = len(essentials)

        best = cover_cost(space, cover)
        while stats.iterations < max_iterations:
            faults.trip("espresso.iteration")
            if budget is not None:
                budget.tick(where="espresso")
            tracer.count("espresso.iterations")
            stats.iterations += 1
            cover = reduce_cover(space, cover, dc, tracer=tracer)
            cover = expand(space, cover, off, tracer=tracer)
            tracer.gauge("espresso.cubes_after_expand", len(cover))
            cover = irredundant(space, cover, dc, tracer=tracer)
            tracer.gauge(
                "espresso.cubes_after_irredundant", len(cover)
            )
            cost = cover_cost(space, cover)
            if cost >= best:
                break
            best = cost

        if use_lastgasp:
            with tracer.span("espresso/lastgasp"):
                improved = _lastgasp(space, cover, dc, off)
            if improved is not None:
                cover = improved
                stats.lastgasp_improved = True

        cover = essentials + cover
        cover = irredundant(space, cover, list(dcset), tracer=tracer)
    stats.final_terms = len(cover)
    return cover


def _lastgasp(
    space: Space,
    cover: List[int],
    dc: Sequence[int],
    off: Sequence[int],
) -> Optional[List[int]]:
    """ESPRESSO's LASTGASP: maximally reduce each cube independently,
    expand the reductions trying to cover *two* or more of them, and
    accept the result only if it lowers the cost."""
    reduced: List[int] = []
    for i, cube in enumerate(cover):
        rest = [c for j, c in enumerate(cover) if j != i]
        small = reduce_cube(space, cube, rest + list(dc))
        if small:
            reduced.append(small)
    if not reduced:
        return None
    candidates: List[int] = []
    for i, cube in enumerate(reduced):
        prime = expand_cube(space, cube, off, reduced)
        covers = sum(1 for r in reduced if contains(prime, r))
        if covers >= 2:
            candidates.append(prime)
    if not candidates:
        return None
    trial = irredundant(space, absorb(cover + candidates), list(dc))
    if cover_cost(space, trial) < cover_cost(space, cover):
        return trial
    return None


def espresso_pla(pla: Pla, **kwargs) -> Pla:
    """Minimize a multi-output :class:`Pla`; returns a new Pla."""
    stats = kwargs.pop("stats", None)
    minimized = espresso(
        pla.space, pla.onset, pla.dcset, stats=stats, **kwargs
    )
    result = pla.copy()
    result.onset = minimized
    return result
