"""A from-scratch ESPRESSO-style two-level logic minimizer.

* :func:`espresso` — the heuristic EXPAND/IRREDUNDANT/REDUCE loop over
  covers in any multi-valued space.
* :func:`espresso_pla` — convenience wrapper for multi-output
  :class:`Pla` functions.
* :func:`exact_minimize` — Quine–McCluskey exact minimization for
  small functions (ground truth in tests).
* :class:`Pla`, :func:`parse_pla`, :func:`format_pla` — espresso file
  format support.
"""

from .exact import ExactLimitError, all_primes, exact_minimize
from .functions import CLASSICS, adrn, majority, rdn, sqrn, xorn
from .expand import expand, expand_cube
from .irredundant import irredundant, relatively_essential
from .minimize import EspressoStats, cover_cost, espresso, espresso_pla
from .pla import Pla, format_pla, parse_pla
from .reduce import reduce_cover, reduce_cube
from .sparse import lower_outputs, make_sparse, raise_inputs
from .verify import (
    VerificationError,
    cover_in_range,
    covers_equal,
    verify_minimization,
    verify_pla_minimization,
)

__all__ = [
    "ExactLimitError",
    "all_primes",
    "exact_minimize",
    "CLASSICS",
    "adrn",
    "majority",
    "rdn",
    "sqrn",
    "xorn",
    "expand",
    "expand_cube",
    "irredundant",
    "relatively_essential",
    "EspressoStats",
    "cover_cost",
    "espresso",
    "espresso_pla",
    "Pla",
    "format_pla",
    "parse_pla",
    "reduce_cover",
    "reduce_cube",
    "lower_outputs",
    "make_sparse",
    "raise_inputs",
    "VerificationError",
    "cover_in_range",
    "covers_equal",
    "verify_minimization",
    "verify_pla_minimization",
]
