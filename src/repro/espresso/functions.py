"""Generators for the classic two-level benchmark functions.

The espresso literature evaluates minimizers on a standard family of
arithmetic PLAs (rd53, rd73, xor5, adr4, sqr4, majority, ...).  Those
functions are pure mathematics, so rather than shipping the MCNC
files we synthesize them exactly:

* ``rdn(n)``  — the "rd" counters: n inputs, ceil(log2(n+1)) outputs
  encoding the number of ones (rd53 = rdn(5), rd73 = rdn(7));
* ``xorn(n)`` — n-input parity (xor5 = xorn(5)); its minimum SOP is
  exactly ``2^(n-1)`` terms, a sharp optimality probe;
* ``adrn(n)`` — the n+n-bit ripple adder's truth table (adr4 =
  adrn(4));
* ``sqrn(n)`` — the n-bit squarer (sqr6 = sqrn(6));
* ``majority(n)`` — the n-input majority vote.

Each returns a fully specified :class:`Pla` built from the on-set
minterms.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .pla import Pla

__all__ = ["rdn", "xorn", "adrn", "sqrn", "majority", "CLASSICS"]


def _from_truth_table(
    n_inputs: int,
    n_outputs: int,
    func: Callable[[int], int],
    name: str,
) -> Pla:
    """Build a PLA from output-word function over input integers."""
    pla = Pla(n_inputs, n_outputs)
    space = pla.space
    for x in range(1 << n_inputs):
        word = func(x)
        if not word:
            continue
        values = [(x >> (n_inputs - 1 - b)) & 1 for b in range(n_inputs)]
        fields = [0b10 if v else 0b01 for v in values]
        fields.append(word)
        pla.onset.append(space.make_cube(fields))
    pla.input_labels = [f"x{i}" for i in range(n_inputs)]
    pla.output_labels = [f"{name}{o}" for o in range(n_outputs)]
    return pla


def rdn(n: int) -> Pla:
    """The rd-series counter: outputs = popcount of the inputs."""
    n_out = max(1, n.bit_length())

    def func(x: int) -> int:
        return bin(x).count("1")

    return _from_truth_table(n, n_out, func, "s")


def xorn(n: int) -> Pla:
    """n-input parity; minimal SOP has exactly 2^(n-1) terms."""

    def func(x: int) -> int:
        return bin(x).count("1") & 1

    return _from_truth_table(n, 1, func, "p")


def adrn(n: int) -> Pla:
    """n-bit + n-bit adder: 2n inputs, n+1 outputs."""

    def func(x: int) -> int:
        a = x >> n
        b = x & ((1 << n) - 1)
        return a + b

    return _from_truth_table(2 * n, n + 1, func, "sum")


def sqrn(n: int) -> Pla:
    """n-bit squarer: n inputs, 2n outputs."""

    def func(x: int) -> int:
        return x * x

    return _from_truth_table(n, 2 * n, func, "q")


def majority(n: int) -> Pla:
    """Majority vote of n inputs (n odd for a strict majority)."""

    def func(x: int) -> int:
        return 1 if bin(x).count("1") * 2 > n else 0

    return _from_truth_table(n, 1, func, "m")


#: the classic instances by their literature names, with the minimized
#: product-term counts espresso is known to reach on them (used as
#: regression bounds by the benches; exact optimality is only asserted
#: where theory pins it, e.g. parity)
CLASSICS: Dict[str, Sequence] = {
    "rd53": (lambda: rdn(5), 31),
    "rd73": (lambda: rdn(7), 127),
    "xor5": (lambda: xorn(5), 16),
    "adr4": (lambda: adrn(4), 75),
    "sqr4": (lambda: sqrn(4), 12),
    "maj5": (lambda: majority(5), 10),
}
