"""PLA (programmable logic array) containers and espresso-format I/O.

A :class:`Pla` bundles an on-set and a don't-care set over a space of
binary inputs plus one multi-output part, which is exactly the
ESPRESSO ``.type fr`` view of a multi-output Boolean function.  The
minimizer itself is representation-agnostic (it works on any
:class:`~repro.cubes.space.Space`); this module is the bridge to files
and to the FSM substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cubes import Space, absorb, complement, contains
from ..cubes.bulk import active_kernel
from ..runtime import InvalidSpecError, ParseError

__all__ = ["Pla", "parse_pla", "format_pla"]

#: .i/.o ceiling for parsed files — beyond this the Space constructor
#: alone takes unbounded time/memory, so a corrupt header must fail
#: as a ParseError instead of wedging the process
MAX_PARSED_WIDTH = 10**6


@dataclass
class Pla:
    """A multi-output two-level function: on-set F and don't-care set D.

    ``space`` has ``n_inputs`` binary parts followed by one output part
    of size ``n_outputs`` (size 1 for single-output functions).
    """

    n_inputs: int
    n_outputs: int
    onset: List[int] = field(default_factory=list)
    dcset: List[int] = field(default_factory=list)
    input_labels: Optional[List[str]] = None
    output_labels: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.n_inputs < 0 or self.n_outputs < 1:
            raise InvalidSpecError("need n_inputs >= 0 and n_outputs >= 1")
        self.space = Space.binary(self.n_inputs, self.n_outputs)

    # ------------------------------------------------------------------
    def num_terms(self) -> int:
        return len(self.onset)

    def literal_count(self) -> int:
        """Input literals asserted across the on-set (area proxy).

        One bulk ``nonfull_counts`` call: a literal is a non-full
        input field, so the count is the sum over input parts.
        """
        kernel = active_kernel()
        counts = kernel.nonfull_counts(
            self.space, kernel.pack(self.space, self.onset)
        )
        return sum(counts[: self.n_inputs])

    def gate_area(self) -> int:
        """Crude PLA area model: terms x (2*inputs + outputs)."""
        return self.num_terms() * (2 * self.n_inputs + self.n_outputs)

    def add_term(self, inputs: str, outputs: str) -> None:
        """Append a cube given input chars ``01-`` and output chars ``01``."""
        self.onset.append(self.space.parse_cube(inputs + " " + outputs))

    # ------------------------------------------------------------------
    def off_set(self) -> List[int]:
        """Complement of F | D in the full multi-output space."""
        return complement(self.space, self.onset + self.dcset)

    def eval_minterm(self, input_values: Sequence[int]) -> List[int]:
        """Output vector (0/1 per output, -1 for don't care) at a vertex."""
        result = []
        for out in range(self.n_outputs):
            values = list(input_values) + [out]
            m = self.space.minterm(values)
            if any(contains(c, m) for c in self.onset):
                result.append(1)
            elif any(contains(c, m) for c in self.dcset):
                result.append(-1)
            else:
                result.append(0)
        return result

    def copy(self) -> "Pla":
        return Pla(
            self.n_inputs,
            self.n_outputs,
            list(self.onset),
            list(self.dcset),
            list(self.input_labels) if self.input_labels else None,
            list(self.output_labels) if self.output_labels else None,
        )

    def __repr__(self) -> str:
        return (
            f"Pla(i={self.n_inputs}, o={self.n_outputs}, "
            f"p={len(self.onset)}, dc={len(self.dcset)})"
        )


def parse_pla(text: str) -> Pla:
    """Parse an espresso-format PLA (``.type f`` or ``.type fr``/``fd``).

    Output characters: ``1`` on-set, ``0`` off-set (implicit for fr),
    ``-``/``~``/``2`` don't-care.
    """
    n_inputs = n_outputs = None
    input_labels = output_labels = None
    rows: List[Tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key in (".i", ".o"):
                if len(parts) < 2:
                    raise ParseError(
                        f"directive {key} needs an argument: {line!r}"
                    )
                try:
                    if key == ".i":
                        n_inputs = int(parts[1])
                    else:
                        n_outputs = int(parts[1])
                except ValueError as exc:
                    raise ParseError(
                        f"bad directive argument: {line!r}"
                    ) from exc
            elif key == ".ilb":
                input_labels = parts[1:]
            elif key == ".ob":
                output_labels = parts[1:]
            else:
                continue  # tolerate unknown dot-directives
        else:
            chunks = line.split()
            if len(chunks) == 1:
                if n_inputs is None:
                    raise ParseError(".i must precede cube rows")
                in_part, out_part = chunks[0][:n_inputs], chunks[0][n_inputs:]
            else:
                in_part = "".join(chunks[:-1])
                out_part = chunks[-1]
            rows.append((in_part, out_part))
    if n_inputs is None or n_outputs is None:
        raise ParseError("PLA missing .i or .o header")
    if n_inputs < 0 or n_outputs < 1:
        raise ParseError(
            f"bad PLA shape .i {n_inputs} .o {n_outputs} "
            "(need .i >= 0 and .o >= 1)"
        )
    if n_inputs > MAX_PARSED_WIDTH or n_outputs > MAX_PARSED_WIDTH:
        raise ParseError(
            f"PLA header .i {n_inputs} .o {n_outputs} exceeds the "
            f"parser ceiling of {MAX_PARSED_WIDTH}"
        )
    try:
        pla = Pla(n_inputs, n_outputs, input_labels=input_labels,
                  output_labels=output_labels)
    except InvalidSpecError as exc:
        # a malformed *file* is a parse failure, whatever the
        # container-level validation calls it
        raise ParseError(str(exc)) from exc
    for in_part, out_part in rows:
        if len(in_part) != n_inputs or len(out_part) != n_outputs:
            raise ParseError(f"row width mismatch: {in_part} {out_part}")
        base = _parse_inputs(pla.space, in_part)
        on_field = 0
        dc_field = 0
        for out, char in enumerate(out_part):
            if char == "1":
                on_field |= 1 << out
            elif char in "-~2":
                dc_field |= 1 << out
            elif char == "0":
                pass
            else:
                raise ParseError(f"bad output char {char!r}")
        out_mask_part = pla.space.num_parts - 1
        if on_field:
            pla.onset.append(
                pla.space.with_field(base, out_mask_part, on_field)
            )
        if dc_field:
            pla.dcset.append(
                pla.space.with_field(base, out_mask_part, dc_field)
            )
    return pla


def _parse_inputs(space: Space, chars: str) -> int:
    cube = 0
    for part, char in enumerate(chars):
        try:
            f = {"0": 0b01, "1": 0b10, "-": 0b11, "2": 0b11, "~": 0b11}[char]
        except KeyError:
            raise ParseError(f"bad input char {char!r}")
        cube |= f << space.offsets[part]
    return cube


def format_pla(pla: Pla, pla_type: str = "fr") -> str:
    """Render a :class:`Pla` in espresso file format."""
    lines = [f".i {pla.n_inputs}", f".o {pla.n_outputs}"]
    if pla.input_labels:
        lines.append(".ilb " + " ".join(pla.input_labels))
    if pla.output_labels:
        lines.append(".ob " + " ".join(pla.output_labels))
    lines.append(f".type {pla_type}")
    rows: List[str] = []
    for cube in pla.onset:
        rows.append(_format_row(pla, cube, "1"))
    if pla_type in ("fr", "fd"):
        for cube in pla.dcset:
            rows.append(_format_row(pla, cube, "-"))
    lines.append(f".p {len(rows)}")
    lines.extend(rows)
    lines.append(".e")
    return "\n".join(lines) + "\n"


def _format_row(pla: Pla, cube: int, on_char: str) -> str:
    space = pla.space
    chars = []
    for part in range(pla.n_inputs):
        f = space.field(cube, part)
        chars.append({0b01: "0", 0b10: "1", 0b11: "-"}.get(f, "~"))
    out_field = space.field(cube, space.num_parts - 1)
    out_chars = "".join(
        on_char if out_field & (1 << o) else "0" for o in range(pla.n_outputs)
    )
    return "".join(chars) + " " + out_chars
