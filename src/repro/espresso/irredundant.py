"""IRREDUNDANT: drop cubes covered by the rest of the cover.

A cube is *relatively essential* when removing it uncovers part of the
on-set; everything else is redundant relative to the current cover and
is removed greedily (largest cubes are kept preferentially, mirroring
ESPRESSO's minimal irredundant-cover heuristic).

Containment checks run on packed word-matrix covers via the tautology
seam (:func:`repro.cubes.tautology.cover_contains_cube_packed`); the
working cover is kept packed and shrunk row-wise as redundant cubes
are dropped.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..cubes import Space
from ..cubes.bulk import active_kernel
from ..cubes.tautology import cover_contains_cube_packed
from ..obs import resolve_tracer

__all__ = ["irredundant", "relatively_essential"]

#: lint marker: this module is a bulk-kernel hot path (RPA008)
__bulk_kernel__ = True


def relatively_essential(
    space: Space,
    onset: Sequence[int],
    dcset: Sequence[int] = (),
) -> Tuple[List[int], List[int]]:
    """Split the cover into (relatively essential, redundant) cubes."""
    kernel = active_kernel()
    packed = kernel.pack(space, onset)
    dc = kernel.pack(space, dcset)
    essential: List[int] = []
    redundant: List[int] = []
    for idx in range(kernel.length(packed)):
        rest = kernel.concat(
            space, kernel.delete_row(space, packed, idx), dc
        )
        cube = kernel.row(space, packed, idx)
        if cover_contains_cube_packed(space, kernel, rest, cube):
            redundant.append(cube)
        else:
            essential.append(cube)
    return essential, redundant


def irredundant(
    space: Space,
    onset: List[int],
    dcset: Sequence[int] = (),
    tracer=None,
) -> List[int]:
    """A subset of ``onset`` with the same coverage and no redundant cube.

    Smallest redundant cubes are dropped first so large primes survive.
    ``tracer`` counts the cubes visited (``espresso.irredundant.cubes``).
    """
    resolve_tracer(tracer).count(
        "espresso.irredundant.cubes", len(onset)
    )
    kernel = active_kernel()
    packed = kernel.pack(space, onset)
    weights = kernel.popcounts(space, packed)
    order = sorted(range(len(onset)), key=weights.__getitem__)
    keep = kernel.gather(space, packed, order)
    dc = kernel.pack(space, dcset)
    i = 0
    while i < kernel.length(keep):
        rest = kernel.concat(
            space, kernel.delete_row(space, keep, i), dc
        )
        cube = kernel.row(space, keep, i)
        if cover_contains_cube_packed(space, kernel, rest, cube):
            keep = kernel.delete_row(space, keep, i)
        else:
            i += 1
    return kernel.unpack(space, keep)
