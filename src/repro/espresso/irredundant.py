"""IRREDUNDANT: drop cubes covered by the rest of the cover.

A cube is *relatively essential* when removing it uncovers part of the
on-set; everything else is redundant relative to the current cover and
is removed greedily (largest cubes are kept preferentially, mirroring
ESPRESSO's minimal irredundant-cover heuristic).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..cubes import Space, cover_contains_cube
from ..obs import resolve_tracer

__all__ = ["irredundant", "relatively_essential"]


def relatively_essential(
    space: Space,
    onset: Sequence[int],
    dcset: Sequence[int] = (),
) -> Tuple[List[int], List[int]]:
    """Split the cover into (relatively essential, redundant) cubes."""
    essential: List[int] = []
    redundant: List[int] = []
    for i, cube in enumerate(onset):
        rest = [c for j, c in enumerate(onset) if j != i]
        if cover_contains_cube(space, rest + list(dcset), cube):
            redundant.append(cube)
        else:
            essential.append(cube)
    return essential, redundant


def irredundant(
    space: Space,
    onset: List[int],
    dcset: Sequence[int] = (),
    tracer=None,
) -> List[int]:
    """A subset of ``onset`` with the same coverage and no redundant cube.

    Smallest redundant cubes are dropped first so large primes survive.
    ``tracer`` counts the cubes visited (``espresso.irredundant.cubes``).
    """
    resolve_tracer(tracer).count(
        "espresso.irredundant.cubes", len(onset)
    )
    keep = sorted(onset, key=lambda c: bin(c).count("1"))
    i = 0
    while i < len(keep):
        cube = keep[i]
        rest = keep[:i] + keep[i + 1 :]
        if cover_contains_cube(space, rest + list(dcset), cube):
            keep.pop(i)
        else:
            i += 1
    return keep
