"""Cover verification: the minimizer's safety net.

ESPRESSO ships a ``-Dverify`` mode; this is ours.  All checks are
exact (tautology-based), work on any multi-valued space, and are used
by the test-suite and by callers that want hard guarantees after a
minimization run.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..cubes import (
    Space,
    complement,
    cover_contains_cube,
    intersect,
    tautology,
)
from .pla import Pla

__all__ = [
    "covers_equal",
    "cover_in_range",
    "verify_minimization",
    "VerificationError",
]


class VerificationError(AssertionError):
    """A minimized cover is not equivalent to its specification."""


def covers_equal(
    space: Space, f: Sequence[int], g: Sequence[int]
) -> bool:
    """Set equality of two covers (mutual containment)."""
    return all(cover_contains_cube(space, g, c) for c in f) and all(
        cover_contains_cube(space, f, c) for c in g
    )


def cover_in_range(
    space: Space,
    cover: Sequence[int],
    onset: Sequence[int],
    dcset: Sequence[int] = (),
) -> Tuple[bool, str]:
    """Is ``cover`` a legal implementation of (onset, dcset)?

    Legal means: covers every on-set minterm outside the don't-care
    set, and never covers an off-set minterm.  Returns (ok, reason).
    """
    care = list(onset) + list(dcset)
    for cube in cover:
        if not cover_contains_cube(space, care, cube):
            return False, (
                f"cube {space.format_cube(cube)} reaches the off-set"
            )
    full = list(cover) + list(dcset)
    for cube in onset:
        if not cover_contains_cube(space, full, cube):
            return False, (
                f"on-set cube {space.format_cube(cube)} not covered"
            )
    return True, "ok"


def verify_minimization(
    space: Space,
    minimized: Sequence[int],
    onset: Sequence[int],
    dcset: Sequence[int] = (),
) -> None:
    """Raise :class:`VerificationError` unless ``minimized`` is a
    legal implementation of the (onset, dcset) specification."""
    ok, reason = cover_in_range(space, minimized, onset, dcset)
    if not ok:
        raise VerificationError(reason)


def verify_pla_minimization(original: Pla, minimized: Pla) -> None:
    """PLA-level convenience wrapper for :func:`verify_minimization`."""
    if original.space != minimized.space:
        raise VerificationError("PLA shapes differ")
    verify_minimization(
        original.space,
        minimized.onset,
        original.onset,
        original.dcset,
    )
