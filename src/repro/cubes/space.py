"""Positional-cube spaces.

A :class:`Space` describes the layout of a multi-valued Boolean space in
*positional cube notation*, the representation used by ESPRESSO-MV and by
all face-embedding machinery in this package.

The space is a sequence of *parts*.  Each part is a (multi-valued)
variable with ``k`` possible values and owns ``k`` contiguous bit
positions.  A *cube* is a single Python integer: bit ``offset(p) + v`` is
set when the cube admits value ``v`` of part ``p``.  A binary variable is
simply a part of size two, with bit 0 encoding the literal ``x'`` (value
0) and bit 1 the literal ``x`` (value 1); ``11`` is the don't-care
literal ``-``.

Representing cubes as ints makes the core operations single machine
operations on arbitrary-precision integers:

* intersection        -> ``a & b`` (void if any part field becomes 0)
* supercube           -> ``a | b``
* containment a <= b  -> ``a & ~b == 0``
* cofactor wrt p      -> ``a | (universe & ~p)``

which is what keeps the pure-Python minimizer usable on benchmark-sized
problems.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..runtime import InvalidSpecError, ParseError

__all__ = ["Space"]


class Space:
    """Layout of a positional-cube space.

    Parameters
    ----------
    part_sizes:
        Number of values (bit positions) of each part, in order.  Binary
        variables are parts of size 2.
    labels:
        Optional human-readable name per part (used only for rendering).
    """

    __slots__ = (
        "part_sizes",
        "labels",
        "offsets",
        "part_masks",
        "universe",
        "width",
    )

    def __init__(
        self,
        part_sizes: Sequence[int],
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        if not part_sizes:
            raise InvalidSpecError("a space needs at least one part")
        if any(size < 1 for size in part_sizes):
            raise InvalidSpecError("every part needs at least one value")
        if labels is not None and len(labels) != len(part_sizes):
            raise InvalidSpecError("labels must match part_sizes in length")
        self.part_sizes: Tuple[int, ...] = tuple(part_sizes)
        if labels is None:
            labels = [f"p{i}" for i in range(len(part_sizes))]
        self.labels: Tuple[str, ...] = tuple(labels)
        offsets: List[int] = []
        masks: List[int] = []
        offset = 0
        for size in self.part_sizes:
            offsets.append(offset)
            masks.append(((1 << size) - 1) << offset)
            offset += size
        self.offsets: Tuple[int, ...] = tuple(offsets)
        self.part_masks: Tuple[int, ...] = tuple(masks)
        self.width: int = offset
        self.universe: int = (1 << offset) - 1

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def binary(cls, n_inputs: int, n_outputs: int = 0) -> "Space":
        """Space of ``n_inputs`` binary variables plus an optional output
        part of size ``n_outputs`` (the ESPRESSO multi-output encoding)."""
        if n_inputs < 0 or n_outputs < 0:
            raise InvalidSpecError("negative part counts")
        sizes = [2] * n_inputs
        labels = [f"x{i}" for i in range(n_inputs)]
        if n_outputs:
            sizes.append(n_outputs)
            labels.append("out")
        if not sizes:
            raise InvalidSpecError("empty space")
        return cls(sizes, labels)

    @property
    def num_parts(self) -> int:
        return len(self.part_sizes)

    @property
    def has_output_part(self) -> bool:
        """True when the last part is labelled 'out'.

        Advisory for rendering/parsing only; the set-algebra kernel
        treats all parts uniformly.
        """
        return self.labels[-1] == "out"

    def _is_output_part(self, part: int) -> bool:
        return part == len(self.part_sizes) - 1 and self.has_output_part

    # ------------------------------------------------------------------
    # field access
    # ------------------------------------------------------------------
    def field(self, cube: int, part: int) -> int:
        """The (unshifted) bit field of ``part`` inside ``cube``."""
        return (cube & self.part_masks[part]) >> self.offsets[part]

    def with_field(self, cube: int, part: int, field: int) -> int:
        """``cube`` with the field of ``part`` replaced by ``field``."""
        if field >> self.part_sizes[part]:
            raise InvalidSpecError("field wider than part")
        return (cube & ~self.part_masks[part]) | (field << self.offsets[part])

    def position(self, part: int, value: int) -> int:
        """Global bit index of ``value`` within ``part``."""
        if not 0 <= value < self.part_sizes[part]:
            raise InvalidSpecError("value out of range for part")
        return self.offsets[part] + value

    def literal(self, part: int, value: int) -> int:
        """Cube asserting ``part == value`` and leaving all else free."""
        return self.universe & ~self.part_masks[part] | (
            1 << self.position(part, value)
        )

    def make_cube(self, fields: Sequence[int]) -> int:
        """Build a cube from one field per part."""
        if len(fields) != self.num_parts:
            raise InvalidSpecError("need one field per part")
        cube = 0
        for part, field in enumerate(fields):
            if field >> self.part_sizes[part]:
                raise InvalidSpecError(f"field {field:#x} too wide for part {part}")
            cube |= field << self.offsets[part]
        return cube

    def fields(self, cube: int) -> List[int]:
        """All part fields of ``cube``."""
        return [self.field(cube, part) for part in range(self.num_parts)]

    def minterm(self, values: Sequence[int]) -> int:
        """The 0-cube selecting exactly one value per part."""
        if len(values) != self.num_parts:
            raise InvalidSpecError("need one value per part")
        cube = 0
        for part, value in enumerate(values):
            cube |= 1 << self.position(part, value)
        return cube

    def num_minterms(self) -> int:
        result = 1
        for size in self.part_sizes:
            result *= size
        return result

    def iter_minterms(self) -> Iterator[int]:
        """Every 0-cube of the space, in lexicographic value order."""
        values = [0] * self.num_parts
        while True:
            yield self.minterm(values)
            part = self.num_parts - 1
            while part >= 0:
                values[part] += 1
                if values[part] < self.part_sizes[part]:
                    break
                values[part] = 0
                part -= 1
            if part < 0:
                return

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def format_cube(self, cube: int) -> str:
        """Human/PLA-style rendering.

        Binary parts print as ``0``, ``1``, ``-`` (or ``~`` for a void
        field); larger parts print their raw bit pattern, highest value
        first, separated by spaces.
        """
        chunks: List[str] = []
        for part, size in enumerate(self.part_sizes):
            field = self.field(cube, part)
            if size == 2 and not self._is_output_part(part):
                chunks.append({0: "~", 1: "0", 2: "1", 3: "-"}[field])
            else:
                bits = "".join(
                    "1" if field & (1 << value) else "0"
                    for value in range(size)
                )
                chunks.append(bits)
        # group consecutive binary columns together, separate MV parts
        out: List[str] = []
        run = ""
        for part, chunk in enumerate(chunks):
            if self.part_sizes[part] == 2 and not self._is_output_part(part):
                run += chunk
            else:
                if run:
                    out.append(run)
                    run = ""
                out.append(chunk)
        if run:
            out.append(run)
        return " ".join(out)

    def parse_cube(self, text: str) -> int:
        """Inverse of :meth:`format_cube` (spaces optional)."""
        flat = text.replace(" ", "")
        cube = 0
        pos = 0
        for part, size in enumerate(self.part_sizes):
            if size == 2 and not self._is_output_part(part):
                if pos >= len(flat):
                    raise ParseError(f"cube string too short: {text!r}")
                char = flat[pos]
                try:
                    field = {"~": 0, "0": 1, "1": 2, "-": 3, "2": 3}[char]
                except KeyError:
                    raise ParseError(f"bad literal {char!r} in {text!r}")
                pos += 1
            else:
                bits = flat[pos : pos + size]
                if len(bits) != size or set(bits) - {"0", "1"}:
                    raise ParseError(f"bad MV field in {text!r}")
                field = 0
                for value, bit in enumerate(bits):
                    if bit == "1":
                        field |= 1 << value
                pos += size
            cube |= field << self.offsets[part]
        if pos != len(flat):
            raise ParseError(f"cube string too long: {text!r}")
        return cube

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Space) and self.part_sizes == other.part_sizes

    def __hash__(self) -> int:
        return hash(self.part_sizes)

    def __repr__(self) -> str:
        return f"Space(parts={list(self.part_sizes)})"
