"""Positional-cube algebra: the multi-valued kernel under everything.

Public surface:

* :class:`Space` — part layout of a (multi-valued) Boolean space.
* :class:`Cover` — list of cubes + space, with set semantics.
* the free functions in :mod:`repro.cubes.cube` for single-cube math.
"""

from .complement import complement
from .cover import Cover
from .cube import (
    absorb,
    active_parts,
    consensus,
    contains,
    cofactor,
    cube_complement,
    cube_size,
    distance,
    free_part_count,
    intersect,
    is_void,
    sharp,
    strictly_contains,
    supercube,
)
from .space import Space
from .tautology import cover_contains_cube, tautology

__all__ = [
    "Space",
    "Cover",
    "absorb",
    "complement",
    "tautology",
    "cover_contains_cube",
    "active_parts",
    "consensus",
    "contains",
    "cofactor",
    "cube_complement",
    "cube_size",
    "distance",
    "free_part_count",
    "intersect",
    "is_void",
    "sharp",
    "strictly_contains",
    "supercube",
]
