"""Primitive operations on single cubes.

All functions operate on plain ints relative to a :class:`~repro.cubes.space.Space`.
They are deliberately free functions (not methods on a Cube object) so hot
loops can work on lists of ints without wrapper allocation.
"""

from __future__ import annotations

from typing import Iterable, List

from .space import Space

__all__ = [
    "absorb",
    "is_void",
    "intersect",
    "contains",
    "strictly_contains",
    "supercube",
    "cofactor",
    "distance",
    "consensus",
    "cube_complement",
    "free_part_count",
    "cube_size",
    "active_parts",
    "sharp",
]


def _popcount(x: int) -> int:
    return bin(x).count("1")


def absorb(cover: List[int]) -> List[int]:
    """Remove cubes contained in another cube of the cover (in place).

    Sorting by descending popcount means a cube can only be absorbed by
    an earlier one, giving a single quadratic pass with early exits.
    Containment is pure bitwise subset, so no :class:`Space` is needed;
    the bulk kernels replicate this result exactly
    (``kernel.absorb``) for packed covers.
    """
    cover.sort(key=_popcount, reverse=True)
    result: List[int] = []
    for cube in cover:
        for big in result:
            if not cube & ~big:
                break
        else:
            result.append(cube)
    return result


def is_void(space: Space, cube: int) -> bool:
    """True when the cube denotes the empty set (some part field is 0)."""
    for mask in space.part_masks:
        if not cube & mask:
            return True
    return False


def intersect(space: Space, a: int, b: int) -> int:
    """Intersection, or 0 when void.

    (0 is itself a void cube under :func:`is_void`, so callers may also
    just AND and test.)
    """
    c = a & b
    for mask in space.part_masks:
        if not c & mask:
            return 0
    return c


def contains(a: int, b: int) -> bool:
    """True when cube ``a`` contains cube ``b`` (b's set is a subset)."""
    return not b & ~a


def strictly_contains(a: int, b: int) -> bool:
    return a != b and not b & ~a


def supercube(cubes: Iterable[int]) -> int:
    """Smallest cube containing every cube in ``cubes`` (0 if empty)."""
    result = 0
    for cube in cubes:
        result |= cube
    return result


def cofactor(space: Space, cube: int, p: int) -> int:
    """The ESPRESSO cofactor of ``cube`` with respect to cube ``p``.

    Only meaningful when the two cubes intersect; callers filter first.
    """
    return cube | (space.universe & ~p)


def distance(space: Space, a: int, b: int) -> int:
    """Number of parts in which ``a`` and ``b`` have empty intersection."""
    c = a & b
    count = 0
    for mask in space.part_masks:
        if not c & mask:
            count += 1
    return count


def consensus(space: Space, a: int, b: int) -> int:
    """Consensus of two cubes, or 0 when they are distance >= 2 apart.

    At distance 0 the consensus is the intersection; at distance 1 it is
    the cube agreeing with ``a & b`` everywhere except the conflicting
    part, which is raised to ``a | b``.
    """
    c = a & b
    conflict = -1
    for part, mask in enumerate(space.part_masks):
        if not c & mask:
            if conflict >= 0:
                return 0
            conflict = part
    if conflict < 0:
        return c
    mask = space.part_masks[conflict]
    return (c & ~mask) | ((a | b) & mask)


def cube_complement(space: Space, cube: int) -> List[int]:
    """Complement of a single cube as a list of cubes (De Morgan)."""
    result: List[int] = []
    universe = space.universe
    for mask in space.part_masks:
        missing = mask & ~cube
        if missing:
            result.append((universe & ~mask) | missing)
    return result


def free_part_count(space: Space, cube: int) -> int:
    """Number of parts whose field is completely free (all values)."""
    count = 0
    for mask in space.part_masks:
        if cube & mask == mask:
            count += 1
    return count


def active_parts(space: Space, cube: int) -> List[int]:
    """Parts in which the cube actually asserts something (not full)."""
    return [
        part
        for part, mask in enumerate(space.part_masks)
        if cube & mask != mask
    ]


def cube_size(space: Space, cube: int) -> int:
    """Number of minterms contained in the cube."""
    size = 1
    for mask in space.part_masks:
        size *= bin(cube & mask).count("1")
    return size


def sharp(space: Space, a: int, b: int) -> List[int]:
    """The sharp product ``a # b``: cubes covering ``a`` minus ``b``.

    Returns the disjoint-sharp decomposition (cubes are pairwise
    disjoint).
    """
    if not intersect(space, a, b):
        return [a]
    result: List[int] = []
    rest = a
    for part, mask in enumerate(space.part_masks):
        outside = rest & mask & ~b
        if outside:
            piece = (rest & ~mask) | outside
            result.append(piece)
            rest = (rest & ~mask) | (rest & mask & b)
    return result
