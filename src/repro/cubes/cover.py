"""A convenience wrapper bundling a list of cubes with their space.

Hot paths inside the minimizer work on bare ``List[int]``; :class:`Cover`
is the friendly public face used by examples, tests and the higher-level
encoding code.  Set-level operations (intersection, union, absorption,
minterm counting) route through the packed word-matrix kernel
(:mod:`repro.cubes.bulk`).

Comparison caching: ``__eq__``/``__hash__`` compare a *canonical*
sorted tuple that is computed lazily and cached, and ``__contains__``
uses a lazily-built membership set.  The cube list handed out by
:attr:`cubes` is a :class:`_CubeList` whose mutating methods notify
the owning cover, so every mutation path — :meth:`add`, assigning
:attr:`cubes`, and the historical in-place styles
(``cover.cubes.append(...)``, ``cover.cubes.sort()``,
``cover.cubes[0] = ...``) — invalidates both caches exactly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..runtime import InvalidSpecError
from . import cube as _cube
from .bulk import active_kernel
from .complement import complement
from .cube import absorb
from .space import Space
from .tautology import cover_contains_cube, tautology

__all__ = ["Cover"]


class _CubeList(list):
    """A ``list`` that invalidates its owning :class:`Cover`'s caches.

    Handing callers the real, mutable cube list is part of the
    historical API, so instead of returning a defensive copy every
    mutating ``list`` method notifies the owner — same-length edits
    (``cover.cubes[0] = x``, ``sort()``, a ``pop()`` followed by an
    ``append()``) invalidate the caches just like ``append()`` does.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "Cover", iterable: Iterable[int] = ()) -> None:
        super().__init__(iterable)
        self._owner = owner


def _mutator(name: str):
    method = getattr(list, name)

    def call(self, *args, **kwargs):
        # _owner may be unset mid-unpickle, when items are appended
        # before the slot state is restored
        owner = getattr(self, "_owner", None)
        if owner is not None:
            owner._invalidate()
        return method(self, *args, **kwargs)

    call.__name__ = name
    call.__qualname__ = f"_CubeList.{name}"
    return call


for _name in (
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "__setitem__",
    "__delitem__",
    "__iadd__",
    "__imul__",
):
    setattr(_CubeList, _name, _mutator(_name))
del _name


class Cover:
    """An ordered collection of cubes over a :class:`Space`."""

    __slots__ = ("space", "_cubes", "_canon", "_members")

    def __init__(self, space: Space, cubes: Optional[Iterable[int]] = None):
        self.space = space
        self._cubes: _CubeList = _CubeList(self, cubes or ())
        self._canon: Optional[Tuple[int, ...]] = None
        self._members: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, space: Space, rows: Iterable[str]) -> "Cover":
        return cls(space, [space.parse_cube(row) for row in rows])

    @classmethod
    def universe(cls, space: Space) -> "Cover":
        return cls(space, [space.universe])

    @classmethod
    def empty(cls, space: Space) -> "Cover":
        return cls(space, [])

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def cubes(self) -> "_CubeList":
        return self._cubes

    @cubes.setter
    def cubes(self, value: Iterable[int]) -> None:
        self._cubes = _CubeList(self, value)
        self._invalidate()

    def _invalidate(self) -> None:
        self._canon = None
        self._members = None

    def _canonical(self) -> Tuple[int, ...]:
        """Sorted cube tuple, cached until the cube list mutates."""
        canon = self._canon
        if canon is None:
            canon = self._canon = tuple(sorted(self._cubes))
        return canon

    def __len__(self) -> int:
        return len(self._cubes)

    def __iter__(self) -> Iterator[int]:
        return iter(self._cubes)

    def __contains__(self, cube: int) -> bool:
        members = self._members
        if members is None:
            members = self._members = frozenset(self._cubes)
        return cube in members

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return (
            self.space == other.space
            and self._canonical() == other._canonical()
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash((self.space, self._canonical()))

    def add(self, cube: int) -> None:
        self._cubes.append(cube)  # _CubeList.append invalidates

    def copy(self) -> "Cover":
        return Cover(self.space, self._cubes)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def is_tautology(self) -> bool:
        return tautology(self.space, self._cubes)

    def contains_cube(self, cube: int) -> bool:
        return cover_contains_cube(self.space, self._cubes, cube)

    def contains_cover(self, other: "Cover") -> bool:
        self._check_space(other)
        return all(self.contains_cube(c) for c in other._cubes)

    def equivalent(self, other: "Cover") -> bool:
        self._check_space(other)
        if self._canonical() == other._canonical():
            return True  # syntactically identical: skip the semantics
        return self.contains_cover(other) and other.contains_cover(self)

    def covers_minterm(self, minterm: int) -> bool:
        return any(_cube.contains(c, minterm) for c in self._cubes)

    def complemented(self) -> "Cover":
        return Cover(self.space, complement(self.space, self._cubes))

    def absorbed(self) -> "Cover":
        return Cover(self.space, absorb(list(self._cubes)))

    def intersected(self, other: "Cover") -> "Cover":
        self._check_space(other)
        kernel = active_kernel()
        meets = kernel.cross_intersect(
            self.space,
            kernel.pack(self.space, self._cubes),
            kernel.pack(self.space, other._cubes),
        )
        return Cover(
            self.space,
            kernel.unpack(self.space, kernel.absorb(self.space, meets)),
        )

    def union(self, other: "Cover") -> "Cover":
        self._check_space(other)
        kernel = active_kernel()
        merged = kernel.absorb(
            self.space,
            kernel.pack(self.space, self._cubes + other._cubes),
        )
        return Cover(self.space, kernel.unpack(self.space, merged))

    def difference(self, other: "Cover") -> "Cover":
        """Set difference via intersection with the complement."""
        self._check_space(other)
        return self.intersected(other.complemented())

    def _check_space(self, other: "Cover") -> None:
        if self.space != other.space:
            raise InvalidSpecError("covers live in different spaces")

    # operator sugar
    def __or__(self, other: "Cover") -> "Cover":
        return self.union(other)

    def __and__(self, other: "Cover") -> "Cover":
        return self.intersected(other)

    def __sub__(self, other: "Cover") -> "Cover":
        return self.difference(other)

    def __invert__(self) -> "Cover":
        return self.complemented()

    def supercube(self) -> int:
        return _cube.supercube(self._cubes)

    def minterm_count(self) -> int:
        """Number of distinct minterms covered (exact, via disjoint sharp)."""
        kernel = active_kernel()
        return kernel.minterm_count(
            self.space, kernel.pack(self.space, self._cubes)
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        rows = ", ".join(self.space.format_cube(c) for c in self._cubes[:6])
        extra = (
            "" if len(self._cubes) <= 6 else f", ... {len(self._cubes)} total"
        )
        return f"Cover([{rows}{extra}])"
