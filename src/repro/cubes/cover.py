"""A convenience wrapper bundling a list of cubes with their space.

Hot paths inside the minimizer work on bare ``List[int]``; :class:`Cover`
is the friendly public face used by examples, tests and the higher-level
encoding code.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ..runtime import InvalidSpecError
from . import cube as _cube
from .complement import absorb, complement
from .space import Space
from .tautology import cover_contains_cube, tautology

__all__ = ["Cover"]


class Cover:
    """An ordered collection of cubes over a :class:`Space`."""

    __slots__ = ("space", "cubes")

    def __init__(self, space: Space, cubes: Optional[Iterable[int]] = None):
        self.space = space
        self.cubes: List[int] = list(cubes or [])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, space: Space, rows: Iterable[str]) -> "Cover":
        return cls(space, [space.parse_cube(row) for row in rows])

    @classmethod
    def universe(cls, space: Space) -> "Cover":
        return cls(space, [space.universe])

    @classmethod
    def empty(cls, space: Space) -> "Cover":
        return cls(space, [])

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cubes)

    def __contains__(self, cube: int) -> bool:
        return cube in self.cubes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return self.space == other.space and sorted(self.cubes) == sorted(
            other.cubes
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash((self.space, tuple(sorted(self.cubes))))

    def add(self, cube: int) -> None:
        self.cubes.append(cube)

    def copy(self) -> "Cover":
        return Cover(self.space, self.cubes)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def is_tautology(self) -> bool:
        return tautology(self.space, self.cubes)

    def contains_cube(self, cube: int) -> bool:
        return cover_contains_cube(self.space, self.cubes, cube)

    def contains_cover(self, other: "Cover") -> bool:
        self._check_space(other)
        return all(self.contains_cube(c) for c in other.cubes)

    def equivalent(self, other: "Cover") -> bool:
        return self.contains_cover(other) and other.contains_cover(self)

    def covers_minterm(self, minterm: int) -> bool:
        return any(_cube.contains(c, minterm) for c in self.cubes)

    def complemented(self) -> "Cover":
        return Cover(self.space, complement(self.space, self.cubes))

    def absorbed(self) -> "Cover":
        return Cover(self.space, absorb(list(self.cubes)))

    def intersected(self, other: "Cover") -> "Cover":
        self._check_space(other)
        result: List[int] = []
        for a in self.cubes:
            for b in other.cubes:
                c = _cube.intersect(self.space, a, b)
                if c:
                    result.append(c)
        return Cover(self.space, absorb(result))

    def union(self, other: "Cover") -> "Cover":
        self._check_space(other)
        return Cover(self.space, absorb(self.cubes + other.cubes))

    def difference(self, other: "Cover") -> "Cover":
        """Set difference via intersection with the complement."""
        self._check_space(other)
        return self.intersected(other.complemented())

    def _check_space(self, other: "Cover") -> None:
        if self.space != other.space:
            raise InvalidSpecError("covers live in different spaces")

    # operator sugar
    def __or__(self, other: "Cover") -> "Cover":
        return self.union(other)

    def __and__(self, other: "Cover") -> "Cover":
        return self.intersected(other)

    def __sub__(self, other: "Cover") -> "Cover":
        return self.difference(other)

    def __invert__(self) -> "Cover":
        return self.complemented()

    def supercube(self) -> int:
        return _cube.supercube(self.cubes)

    def minterm_count(self) -> int:
        """Number of distinct minterms covered (exact, via disjoint sharp)."""
        disjoint: List[int] = []
        for cube in self.cubes:
            pieces = [cube]
            for seen in disjoint:
                nxt: List[int] = []
                for piece in pieces:
                    nxt.extend(_cube.sharp(self.space, piece, seen))
                pieces = nxt
                if not pieces:
                    break
            disjoint.extend(pieces)
        return sum(_cube.cube_size(self.space, c) for c in disjoint)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        rows = ", ".join(self.space.format_cube(c) for c in self.cubes[:6])
        extra = "" if len(self.cubes) <= 6 else f", ... {len(self.cubes)} total"
        return f"Cover([{rows}{extra}])"
