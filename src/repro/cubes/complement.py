"""Cover complementation via the unate recursive paradigm.

``complement(space, cover)`` returns a cover of the set of minterms NOT
covered by ``cover``.  The recursion is the classic one:

    ~f  =  OR over values v of the splitting part:  (x = v) & ~(f | x=v)

with base cases for the empty cover (universe), a universe row (empty)
and a single cube (De Morgan).  Results are absorbed (single-cube
containment) on the way up to keep intermediate covers small.

The recursion runs entirely on packed word-matrix covers
(:mod:`repro.cubes.bulk`): branch cofactors, the per-value selector
AND, absorption and the part merge are all single bulk-kernel calls.
Conversion to/from the legacy int-list form happens only at the public
boundary.  ``absorb`` (re-exported from :mod:`repro.cubes.cube`) keeps
its historical list-of-ints signature.
"""

from __future__ import annotations

from typing import List, Sequence

from .bulk import active_kernel
from .cube import absorb, cube_complement
from .space import Space

__all__ = ["complement", "absorb"]

#: lint marker: this module is a bulk-kernel hot path (RPA008)
__bulk_kernel__ = True

#: full absorption is quadratic; above this many intermediate cubes we
#: keep only the cheap merge (redundant cubes are harmless to callers,
#: they just cost a little extra work downstream)
_ABSORB_LIMIT = 256


def complement(space: Space, cover: Sequence[int]) -> List[int]:
    """Cover of the complement of ``cover``."""
    kernel = active_kernel()
    return kernel.unpack(
        space, complement_packed(space, kernel, kernel.pack(space, cover))
    )


def complement_packed(space: Space, kernel, packed):
    """Complement of an already-packed cover, staying packed (internal
    seam shared with the espresso REDUCE pass)."""
    universe = space.universe
    n = kernel.length(packed)
    if not n:
        return kernel.single(space, universe)
    _, has_universe = kernel.union_info(space, packed)
    if has_universe:
        return kernel.empty(space)
    if n == 1:
        return kernel.pack(
            space, cube_complement(space, kernel.row(space, packed, 0))
        )

    part = kernel.binate_part(space, packed)
    mask = space.part_masks[part]
    offset = space.offsets[part]
    result = kernel.empty(space)
    for value in range(space.part_sizes[part]):
        branch = kernel.cofactor_value(space, packed, part, value)
        selector = (universe & ~mask) | (1 << (offset + value))
        pieces = kernel.and_rows(
            space, complement_packed(space, kernel, branch), selector
        )
        result = kernel.concat(space, result, pieces)
    if kernel.length(result) <= _ABSORB_LIMIT:
        result = kernel.absorb(space, result)
    return kernel.merge_part(space, result, part)
