"""Cover complementation via the unate recursive paradigm.

``complement(space, cover)`` returns a cover of the set of minterms NOT
covered by ``cover``.  The recursion is the classic one:

    ~f  =  OR over values v of the splitting part:  (x = v) & ~(f | x=v)

with base cases for the empty cover (universe), a universe row (empty)
and a single cube (De Morgan).  Results are absorbed (single-cube
containment) on the way up to keep intermediate covers small.
"""

from __future__ import annotations

from typing import List, Sequence

from .cube import cube_complement
from .space import Space

__all__ = ["complement", "absorb"]


def absorb(cover: List[int]) -> List[int]:
    """Remove cubes contained in another cube of the cover (in place).

    Sorting by descending popcount means a cube can only be absorbed by
    an earlier one, giving a single quadratic pass with early exits.
    """
    cover.sort(key=_popcount, reverse=True)
    result: List[int] = []
    for cube in cover:
        for big in result:
            if not cube & ~big:
                break
        else:
            result.append(cube)
    return result


def _popcount(x: int) -> int:
    return bin(x).count("1")


def _select_binate_part(space: Space, cover: Sequence[int]) -> int:
    best_part = 0
    best_score = -1
    for part, mask in enumerate(space.part_masks):
        score = 0
        for cube in cover:
            if cube & mask != mask:
                score += 1
        if score > best_score:
            best_score = score
            best_part = part
    return best_part


def complement(space: Space, cover: Sequence[int]) -> List[int]:
    """Cover of the complement of ``cover``."""
    universe = space.universe
    if not cover:
        return [universe]
    for cube in cover:
        if cube == universe:
            return []
    if len(cover) == 1:
        return cube_complement(space, cover[0])

    part = _select_binate_part(space, cover)
    mask = space.part_masks[part]
    offset = space.offsets[part]
    result: List[int] = []
    for value in range(space.part_sizes[part]):
        bit = 1 << (offset + value)
        branch = [cube | mask for cube in cover if cube & bit]
        selector = (universe & ~mask) | bit
        for piece in complement(space, branch):
            result.append(piece & selector)
    # full absorption is quadratic; on huge intermediate covers we keep
    # only the cheap merge (redundant cubes are harmless to callers,
    # they just cost a little extra work downstream)
    if len(result) <= 256:
        result = absorb(result)
    return _merge_part(space, part, result)


def _merge_part(space: Space, part: int, cover: List[int]) -> List[int]:
    """Merge cubes identical outside ``part`` by OR-ing their fields.

    This undoes the fragmentation introduced by splitting on ``part``
    and often collapses the 2+ branches back into single cubes.
    """
    mask = space.part_masks[part]
    merged = {}
    for cube in cover:
        key = cube & ~mask
        merged[key] = merged.get(key, 0) | (cube & mask)
    return [key | field for key, field in merged.items()]
