"""Tautology checking via the unate recursive paradigm.

``tautology(space, cover)`` decides whether a cover (list of int cubes)
covers every minterm of the space.  The recursion cofactors against each
value of the most *binate* part; cheap necessary/sufficient tests prune
the vast majority of calls:

* a universe cube in the cover  -> tautology,
* an empty cover                -> not a tautology,
* a part value admitted by no cube -> not a tautology (that column of
  the positional matrix is all zero, so minterms taking that value are
  uncovered),
* a unate cover                 -> tautology iff it contains the
  universe cube (Unate Covering theorem).

The same routine powers cover containment: ``F`` contains a cube ``c``
iff the cofactor of ``F`` against ``c`` is a tautology.
"""

from __future__ import annotations

from typing import List, Sequence

from .space import Space

__all__ = ["tautology", "cover_contains_cube"]


def _select_binate_part(space: Space, cover: Sequence[int]) -> int:
    """Part appearing non-full in the largest number of cubes.

    Ties break toward the part whose most-popular missing value splits
    the cover most evenly, which keeps the recursion shallow.
    """
    best_part = -1
    best_score = -1
    for part, mask in enumerate(space.part_masks):
        score = 0
        for cube in cover:
            if cube & mask != mask:
                score += 1
        if score > best_score:
            best_score = score
            best_part = part
    return best_part


def _is_unate(space: Space, cover: Sequence[int]) -> bool:
    """True when, in every part, all non-full fields are identical.

    For binary parts this is exactly single-polarity (unate) appearance;
    for multi-valued parts it is a sufficient condition under which the
    unate tautology theorem still applies.
    """
    for mask in space.part_masks:
        seen = -1
        for cube in cover:
            field = cube & mask
            if field != mask:
                if seen < 0:
                    seen = field
                elif field != seen:
                    return False
    return True


def tautology(space: Space, cover: Sequence[int]) -> bool:
    """Does ``cover`` cover every minterm of ``space``?"""
    universe = space.universe
    stack: List[List[int]] = [list(cover)]
    while stack:
        cur = stack.pop()
        if not cur:
            return False
        union = 0
        found_universe = False
        for cube in cur:
            union |= cube
            if cube == universe:
                found_universe = True
                break
        if found_universe:
            continue
        if union != universe:
            return False  # some column is empty
        if _is_unate(space, cur):
            return False  # unate without a universe row
        part = _select_binate_part(space, cur)
        mask = space.part_masks[part]
        not_mask = universe & ~mask
        offset = space.offsets[part]
        for value in range(space.part_sizes[part]):
            bit = 1 << (offset + value)
            branch: List[int] = []
            for cube in cur:
                if cube & bit:
                    # cofactor: this part raised to full
                    branch.append(cube | mask)
            stack.append(branch)
    return True


def cover_contains_cube(space: Space, cover: Sequence[int], cube: int) -> bool:
    """True when the union of ``cover`` contains every minterm of ``cube``."""
    if not cube:
        return True
    lifted = space.universe & ~cube
    cof = [c | lifted for c in cover if _intersects(space, c, cube)]
    return tautology(space, cof)


def _intersects(space: Space, a: int, b: int) -> bool:
    c = a & b
    for mask in space.part_masks:
        if not c & mask:
            return False
    return True
