"""Tautology checking via the unate recursive paradigm.

``tautology(space, cover)`` decides whether a cover (list of int cubes)
covers every minterm of the space.  The recursion cofactors against each
value of the most *binate* part; cheap necessary/sufficient tests prune
the vast majority of calls:

* a universe cube in the cover  -> tautology,
* an empty cover                -> not a tautology,
* a part value admitted by no cube -> not a tautology (that column of
  the positional matrix is all zero, so minterms taking that value are
  uncovered),
* a unate cover                 -> tautology iff it contains the
  universe cube (Unate Covering theorem).

The same routine powers cover containment: ``F`` contains a cube ``c``
iff the cofactor of ``F`` against ``c`` is a tautology.

The per-node work (union folds, unateness, binate selection, value
cofactors) runs on the packed word-matrix kernel
(:mod:`repro.cubes.bulk`); covers are packed once at the public
boundary and stay packed down the whole recursion.
"""

from __future__ import annotations

from typing import List, Sequence

from .bulk import active_kernel
from .space import Space

__all__ = ["tautology", "cover_contains_cube"]

#: lint marker: this module is a bulk-kernel hot path (RPA008) — no
#: per-cube Python loops over covers, no Cube/Cover wrapper allocation
__bulk_kernel__ = True


def tautology(space: Space, cover: Sequence[int]) -> bool:
    """Does ``cover`` cover every minterm of ``space``?"""
    kernel = active_kernel()
    return tautology_packed(space, kernel, kernel.pack(space, cover))


def tautology_packed(space: Space, kernel, packed) -> bool:
    """Tautology check over an already-packed cover (internal seam for
    the espresso passes, which keep covers packed across calls)."""
    universe = space.universe
    stack: List[object] = [packed]
    while stack:
        cur = stack.pop()
        if not kernel.length(cur):
            return False
        union, has_universe = kernel.union_info(space, cur)
        if has_universe:
            continue
        if union != universe:
            return False  # some column is empty
        if kernel.is_unate(space, cur):
            return False  # unate without a universe row
        part = kernel.binate_part(space, cur)
        for value in range(space.part_sizes[part]):
            stack.append(kernel.cofactor_value(space, cur, part, value))
    return True


def cover_contains_cube(space: Space, cover: Sequence[int], cube: int) -> bool:
    """True when the union of ``cover`` contains every minterm of ``cube``."""
    kernel = active_kernel()
    return cover_contains_cube_packed(
        space, kernel, kernel.pack(space, cover), cube
    )


def cover_contains_cube_packed(space: Space, kernel, packed, cube: int) -> bool:
    """Packed-cover containment: pack once, reuse across many cubes."""
    if not cube:
        return True
    return tautology_packed(
        space, kernel, kernel.cofactor_cube(space, packed, cube)
    )
