"""Packed word-matrix covers: the columnar bulk cube kernel.

A *packed cover* is a whole cover held as a matrix of fixed-width
machine words — each cube one row of 64-bit limbs over the
:class:`~repro.cubes.space.Space` layout — manipulated through bulk,
whole-cover primitives (containment matrices, supercube folds,
cofactors against a pivot, single-call absorption, bulk minterm
counting).  Two interchangeable backends implement one interface:

* ``python`` — pure-Python int rows, always available
  (:class:`~repro.cubes.bulk.pybackend.PythonKernel`);
* ``numpy``  — uint64 limb matrices, selected automatically at import
  when numpy >= 2.0 is importable (``np.bitwise_count`` is required)
  (:class:`~repro.cubes.bulk.npbackend.NumpyKernel`).

Selection is overridable with the environment variable
``REPRO_KERNEL=python|numpy`` (checked once at import; requesting an
unavailable backend raises) and, for tests, in-process via
:func:`set_kernel`/:func:`use_kernel`.

Both backends are bit-exact: solver output is byte-identical whichever
one is active.  The differential suite in
``tests/test_bulk_kernel.py`` pins this down primitive by primitive.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

from ...runtime import InvalidSpecError
from .pybackend import PythonKernel, bit_count

__all__ = [
    "active_kernel",
    "available_kernels",
    "bit_count",
    "get_kernel",
    "set_kernel",
    "use_kernel",
]

_KERNELS: Dict[str, object] = {"python": PythonKernel()}

try:
    from .npbackend import NumpyKernel
except ImportError:  # numpy missing or < 2.0: pure-Python fallback
    NumpyKernel = None  # type: ignore[assignment,misc]
else:
    _KERNELS["numpy"] = NumpyKernel()


def available_kernels() -> Tuple[str, ...]:
    """Names of the backends importable in this environment."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str):
    """The backend instance registered under ``name``."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise InvalidSpecError(
            f"unknown cube kernel {name!r}; available: "
            f"{', '.join(available_kernels())} "
            "(the numpy backend needs numpy >= 2.0 importable)"
        ) from None


_requested = os.environ.get("REPRO_KERNEL", "").strip().lower()
_active = (
    get_kernel(_requested)
    if _requested
    else _KERNELS.get("numpy", _KERNELS["python"])
)


def active_kernel():
    """The backend the algorithm layer is currently routed through."""
    return _active


def set_kernel(name: str) -> str:
    """Switch the active backend; returns the previous backend name."""
    global _active
    previous = _active.name
    _active = get_kernel(name)
    return previous


@contextmanager
def use_kernel(name: str) -> Iterator[object]:
    """Temporarily switch backends (differential tests use this)."""
    previous = set_kernel(name)
    try:
        yield _active
    finally:
        set_kernel(previous)
