"""Numpy bulk kernel: packed covers with an adaptive vectorized path.

A packed cover is a :class:`_Packed` handle holding the cover in up to
two interchangeable forms, materialized lazily and cached:

* ``ints`` — the legacy list of python-int cubes;
* ``rows`` — a ``(rows, limbs)`` uint64 matrix, each cube one row of
  64-bit limbs in little-endian limb order (limb ``k`` holds raw
  positional-cube bits ``64k .. 64k+63`` of the
  :class:`~repro.cubes.space.Space` layout).

Every primitive dispatches on cover size: below the cutoffs it runs
the exact scalar loops of
:class:`~repro.cubes.bulk.pybackend.PythonKernel` (numpy's per-call
overhead loses badly on the small sub-covers that dominate the unate
recursion), above them it runs whole-matrix broadcast bitwise ops at C
speed.  Because both paths are bit-exact replicas of the legacy
per-cube loops, the dispatch is invisible to callers — only the
throughput changes.  ``BENCH_kernel.json`` records the crossover win.

Per-space layout tables (universe limbs, per-part mask limbs) are
cached keyed by ``part_sizes`` — two spaces with equal part sizes share
one layout, exactly mirroring ``Space.__eq__``.  Tie-breaking in the
vectorized paths uses ``argmax`` (first maximum) and ``kind="stable"``
argsorts to reproduce the legacy loop orders.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

if not hasattr(np, "bitwise_count"):  # numpy < 2.0
    raise ImportError(
        "the numpy cube-kernel backend needs numpy >= 2.0 "
        "(np.bitwise_count); with an older numpy the pure-Python "
        "backend is used instead"
    )

from ..space import Space
from .pybackend import PythonKernel

__all__ = ["NumpyKernel"]

_MASK64 = (1 << 64) - 1

#: rows-squared-times-limbs budget above which pairwise containment
#: matrices are computed in row blocks instead of one allocation
_BLOCK_ROWS = 512

#: default dispatch cutoffs: linear-cost primitives vectorize above
#: LINEAR rows, quadratic ones (absorption, dedup, cross products)
#: already win earlier and use QUAD
_LINEAR_CUTOFF = 64
_QUAD_CUTOFF = 24


def _to_limbs(value: int, nlimbs: int) -> np.ndarray:
    return np.array(
        [(value >> (64 * k)) & _MASK64 for k in range(nlimbs)],
        dtype=np.uint64,
    )


def _from_limbs(row) -> int:
    value = 0
    for limb in reversed(row):
        value = (value << 64) | int(limb)
    return value


class _Layout:
    """Cached per-space limb tables."""

    __slots__ = ("nlimbs", "nparts", "universe", "part_masks")

    def __init__(self, space: Space) -> None:
        self.nlimbs = max(1, (space.width + 63) // 64)
        self.nparts = len(space.part_sizes)
        self.universe = _to_limbs(space.universe, self.nlimbs)
        self.part_masks = np.stack(
            [_to_limbs(m, self.nlimbs) for m in space.part_masks]
        )


_LAYOUTS: Dict[Tuple[int, ...], _Layout] = {}


def _layout(space: Space) -> _Layout:
    key = space.part_sizes
    layout = _LAYOUTS.get(key)
    if layout is None:
        if len(_LAYOUTS) > 128:  # unbounded-growth guard
            _LAYOUTS.clear()
        layout = _LAYOUTS[key] = _Layout(space)
    return layout


class _Packed:
    """A cover held lazily as int cubes and/or a uint64 limb matrix.

    Both forms are cached on the handle, so a cover repeatedly hit by
    vectorized primitives converts once; covers never touched by the
    fast path never allocate an array at all.
    """

    __slots__ = ("_ints", "_rows", "nlimbs")

    def __init__(
        self,
        nlimbs: int,
        ints: Optional[List[int]] = None,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        self._ints = ints
        self._rows = rows
        self.nlimbs = nlimbs

    def __len__(self) -> int:
        if self._ints is not None:
            return len(self._ints)
        return self._rows.shape[0]

    def ints(self) -> List[int]:
        if self._ints is None:
            rows = self._rows
            if self.nlimbs == 1:
                self._ints = [int(v) for v in rows[:, 0].tolist()]
            else:
                self._ints = [_from_limbs(row) for row in rows.tolist()]
        return self._ints

    def rows(self) -> np.ndarray:
        if self._rows is None:
            ints = self._ints
            if self.nlimbs == 1:
                self._rows = np.array(ints, dtype=np.uint64).reshape(-1, 1)
            else:
                self._rows = np.array(
                    [
                        [(c >> (64 * k)) & _MASK64 for k in range(self.nlimbs)]
                        for c in ints
                    ],
                    dtype=np.uint64,
                ).reshape(len(ints), self.nlimbs)
        return self._rows


class NumpyKernel:
    """Bulk cover primitives with size-adaptive numpy dispatch."""

    name = "numpy"

    def __init__(
        self,
        linear_cutoff: int = _LINEAR_CUTOFF,
        quad_cutoff: int = _QUAD_CUTOFF,
    ) -> None:
        self._py = PythonKernel()
        self._linear = linear_cutoff
        self._quad = quad_cutoff

    # -- conversion boundary -------------------------------------------
    def pack(self, space: Space, cubes) -> _Packed:
        return _Packed(_layout(space).nlimbs, ints=list(cubes))

    def unpack(self, space: Space, packed: _Packed) -> List[int]:
        return list(packed.ints())

    # -- structural ----------------------------------------------------
    def length(self, packed: _Packed) -> int:
        return len(packed)

    def row(self, space: Space, packed: _Packed, i: int) -> int:
        if packed._ints is not None:
            return packed._ints[i]
        return _from_limbs(packed._rows[i])

    def empty(self, space: Space) -> _Packed:
        return _Packed(_layout(space).nlimbs, ints=[])

    def single(self, space: Space, cube: int) -> _Packed:
        return _Packed(_layout(space).nlimbs, ints=[cube])

    def concat(self, space: Space, a: _Packed, b: _Packed) -> _Packed:
        nlimbs = a.nlimbs
        if not len(a):
            return b
        if not len(b):
            return a
        if a._ints is not None and b._ints is not None:
            return _Packed(nlimbs, ints=a._ints + b._ints)
        return _Packed(
            nlimbs, rows=np.concatenate([a.rows(), b.rows()], axis=0)
        )

    def gather(self, space: Space, packed: _Packed, indices) -> _Packed:
        if packed._ints is not None:
            return _Packed(
                packed.nlimbs, ints=self._py.gather(space, packed._ints, indices)
            )
        return _Packed(
            packed.nlimbs,
            rows=packed._rows[np.asarray(list(indices), dtype=np.intp)],
        )

    def delete_row(self, space: Space, packed: _Packed, i: int) -> _Packed:
        if packed._ints is not None:
            return _Packed(
                packed.nlimbs, ints=self._py.delete_row(space, packed._ints, i)
            )
        return _Packed(packed.nlimbs, rows=np.delete(packed._rows, i, axis=0))

    def with_row(
        self, space: Space, packed: _Packed, i: int, cube: int
    ) -> _Packed:
        if packed._ints is not None:
            return _Packed(
                packed.nlimbs,
                ints=self._py.with_row(space, packed._ints, i, cube),
            )
        out = packed._rows.copy()
        out[i] = _to_limbs(cube, packed.nlimbs)
        return _Packed(packed.nlimbs, rows=out)

    def select(self, space: Space, packed: _Packed, mask) -> _Packed:
        if packed._ints is not None:
            return _Packed(
                packed.nlimbs, ints=self._py.select(space, packed._ints, mask)
            )
        return _Packed(
            packed.nlimbs, rows=packed._rows[np.asarray(mask, dtype=bool)]
        )

    # -- whole-cover folds ---------------------------------------------
    def or_fold(self, space: Space, packed: _Packed) -> int:
        if len(packed) < self._linear:
            return self._py.or_fold(space, packed.ints())
        return _from_limbs(np.bitwise_or.reduce(packed.rows(), axis=0))

    def union_info(self, space: Space, packed: _Packed) -> Tuple[int, bool]:
        if len(packed) < self._linear:
            return self._py.union_info(space, packed.ints())
        layout = _layout(space)
        rows = packed.rows()
        union = np.bitwise_or.reduce(rows, axis=0)
        has_universe = bool(
            (rows == layout.universe[None, :]).all(axis=1).any()
        )
        return _from_limbs(union), has_universe

    def popcounts(self, space: Space, packed: _Packed) -> List[int]:
        if len(packed) < self._linear:
            return self._py.popcounts(space, packed.ints())
        return (
            np.bitwise_count(packed.rows())
            .sum(axis=1, dtype=np.int64)
            .tolist()
        )

    def _nonfull_matrix(self, layout: _Layout, rows: np.ndarray):
        """(rows, parts) bool: field of part p in row r is not full."""
        fields = rows[:, None, :] & layout.part_masks[None, :, :]
        return ~(fields == layout.part_masks[None, :, :]).all(axis=2)

    def nonfull_counts(self, space: Space, packed: _Packed) -> List[int]:
        if len(packed) < self._linear:
            return self._py.nonfull_counts(space, packed.ints())
        layout = _layout(space)
        return (
            self._nonfull_matrix(layout, packed.rows())
            .sum(axis=0, dtype=np.int64)
            .tolist()
        )

    def is_unate(self, space: Space, packed: _Packed) -> bool:
        # the scalar loop's early exit usually beats vectorization
        return self._py.is_unate(space, packed.ints())

    def binate_part(self, space: Space, packed: _Packed) -> int:
        counts = self.nonfull_counts(space, packed)
        best_part = -1
        best_score = -1
        for part, score in enumerate(counts):
            if score > best_score:
                best_score = score
                best_part = part
        return best_part

    # -- row masks -----------------------------------------------------
    def _nonvoid(self, layout: _Layout, rows: np.ndarray) -> np.ndarray:
        """(rows,) bool: every part field of the row is non-empty."""
        if not rows.shape[0]:
            return np.zeros(0, dtype=bool)
        hits = rows[:, None, :] & layout.part_masks[None, :, :]
        return hits.any(axis=2).all(axis=1)

    def void_mask(self, space: Space, packed: _Packed):
        if len(packed) < self._linear:
            return self._py.void_mask(space, packed.ints())
        return ~self._nonvoid(_layout(space), packed.rows())

    def contains_rows(self, space: Space, packed: _Packed, cube: int):
        if len(packed) < self._linear:
            return self._py.contains_rows(space, packed.ints(), cube)
        limbs = _to_limbs(cube, packed.nlimbs)
        return ((limbs[None, :] & ~packed.rows()) == 0).all(axis=1)

    def contained_rows(self, space: Space, packed: _Packed, cube: int):
        if len(packed) < self._linear:
            return self._py.contained_rows(space, packed.ints(), cube)
        limbs = _to_limbs(cube, packed.nlimbs)
        return ((packed.rows() & ~limbs[None, :]) == 0).all(axis=1)

    def admits_rows(self, space: Space, packed: _Packed, cube: int):
        if len(packed) < self._linear:
            return self._py.admits_rows(space, packed.ints(), cube)
        limbs = _to_limbs(cube, packed.nlimbs)
        return ((packed.rows() & limbs[None, :]) != 0).any(axis=1)

    def intersects_any(
        self, space: Space, packed: _Packed, cube: int
    ) -> bool:
        if len(packed) < self._linear:
            return self._py.intersects_any(space, packed.ints(), cube)
        layout = _layout(space)
        limbs = _to_limbs(cube, layout.nlimbs)
        return bool(
            self._nonvoid(layout, packed.rows() & limbs[None, :]).any()
        )

    # -- cofactor / restriction ----------------------------------------
    def cofactor_value(
        self, space: Space, packed: _Packed, part: int, value: int
    ) -> _Packed:
        if len(packed) < self._linear:
            return _Packed(
                packed.nlimbs,
                ints=self._py.cofactor_value(
                    space, packed.ints(), part, value
                ),
            )
        layout = _layout(space)
        pos = space.offsets[part] + value
        limb, bit = pos // 64, np.uint64(1 << (pos % 64))
        rows = packed.rows()
        keep = (rows[:, limb] & bit) != 0
        return _Packed(
            packed.nlimbs,
            rows=rows[keep] | layout.part_masks[part][None, :],
        )

    def cofactor_cube(
        self, space: Space, packed: _Packed, pivot: int
    ) -> _Packed:
        if len(packed) < self._linear:
            return _Packed(
                packed.nlimbs,
                ints=self._py.cofactor_cube(space, packed.ints(), pivot),
            )
        layout = _layout(space)
        pivot_limbs = _to_limbs(pivot, layout.nlimbs)
        rows = packed.rows()
        keep = self._nonvoid(layout, rows & pivot_limbs[None, :])
        lifted = layout.universe & ~pivot_limbs
        return _Packed(packed.nlimbs, rows=rows[keep] | lifted[None, :])

    def and_rows(self, space: Space, packed: _Packed, cube: int) -> _Packed:
        if len(packed) < self._linear:
            return _Packed(
                packed.nlimbs,
                ints=self._py.and_rows(space, packed.ints(), cube),
            )
        limbs = _to_limbs(cube, packed.nlimbs)
        return _Packed(packed.nlimbs, rows=packed.rows() & limbs[None, :])

    # -- cover surgery -------------------------------------------------
    def merge_part(
        self, space: Space, packed: _Packed, part: int
    ) -> _Packed:
        n = len(packed)
        if n < self._linear:
            return _Packed(
                packed.nlimbs,
                ints=self._py.merge_part(space, packed.ints(), part),
            )
        layout = _layout(space)
        part_mask = layout.part_masks[part]
        rows = packed.rows()
        keys = rows & ~part_mask[None, :]
        fields = rows & part_mask[None, :]
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        acc = np.zeros_like(uniq)
        np.bitwise_or.at(acc, inverse, fields)
        # restore first-occurrence order (np.unique sorts its output)
        first = np.full(uniq.shape[0], n, dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(n, dtype=np.int64))
        order = np.argsort(first, kind="stable")
        return _Packed(packed.nlimbs, rows=(uniq | acc)[order])

    def _containment(
        self, sub_rows: np.ndarray, sup_rows: np.ndarray
    ) -> np.ndarray:
        """(len(sub), len(sup)) bool: sub_i ⊆ sup_j, block-computed."""
        n, m = sub_rows.shape[0], sup_rows.shape[0]
        out = np.zeros((n, m), dtype=bool)
        for lo in range(0, n, _BLOCK_ROWS):
            hi = min(lo + _BLOCK_ROWS, n)
            meet = sub_rows[lo:hi, None, :] & ~sup_rows[None, :, :]
            out[lo:hi] = (meet == 0).all(axis=2)
        return out

    def absorb(self, space: Space, packed: _Packed) -> _Packed:
        n = len(packed)
        if n < self._quad:
            return _Packed(
                packed.nlimbs, ints=self._py.absorb(space, packed.ints())
            )
        rows = packed.rows()
        weights = np.bitwise_count(rows).sum(axis=1, dtype=np.int64)
        order = np.argsort(-weights, kind="stable")
        rows = rows[order]
        contained = self._containment(rows, rows)
        earlier = np.tril(np.ones((n, n), dtype=bool), k=-1)
        drop = (contained & earlier).any(axis=1)
        return _Packed(packed.nlimbs, rows=rows[~drop])

    def dedup_keep_mask(self, space: Space, packed: _Packed):
        n = len(packed)
        if n < self._quad:
            return self._py.dedup_keep_mask(space, packed.ints())
        rows = packed.rows()
        contained = self._containment(rows, rows)
        equal = contained & contained.T  # mutual containment = equality
        idx = np.arange(n)
        offdiag = idx[None, :] != idx[:, None]
        earlier = idx[None, :] < idx[:, None]
        drop = (contained & offdiag & (~equal | earlier)).any(axis=1)
        return ~drop

    def cross_intersect(
        self, space: Space, a: _Packed, b: _Packed
    ) -> _Packed:
        if len(a) * len(b) < self._quad * self._quad:
            return _Packed(
                a.nlimbs,
                ints=self._py.cross_intersect(space, a.ints(), b.ints()),
            )
        layout = _layout(space)
        meets = (a.rows()[:, None, :] & b.rows()[None, :, :]).reshape(
            len(a) * len(b), layout.nlimbs
        )
        return _Packed(a.nlimbs, rows=meets[self._nonvoid(layout, meets)])

    # -- counting ------------------------------------------------------
    def _sharp_many(
        self, layout: _Layout, pieces: np.ndarray, seen: np.ndarray
    ) -> np.ndarray:
        """Disjoint sharp of every piece row against the cube ``seen``
        (limb vector); pieces not meeting ``seen`` pass through."""
        meets = self._nonvoid(layout, pieces & seen[None, :])
        passthrough = pieces[~meets]
        rest = pieces[meets]
        out = [passthrough]
        for part_mask in layout.part_masks:
            outside = rest & part_mask[None, :] & ~seen[None, :]
            has = (outside != 0).any(axis=1)
            if has.any():
                out.append(
                    (rest[has] & ~part_mask[None, :]) | outside[has]
                )
            rest = (rest & ~part_mask[None, :]) | (
                rest & part_mask[None, :] & seen[None, :]
            )
        return np.concatenate(out, axis=0)

    def minterm_count(self, space: Space, packed: _Packed) -> int:
        if len(packed) < self._linear:
            return self._py.minterm_count(space, packed.ints())
        layout = _layout(space)
        all_rows = packed.rows()
        disjoint = np.zeros((0, layout.nlimbs), dtype=np.uint64)
        for i in range(all_rows.shape[0]):
            pieces = all_rows[i : i + 1]
            for j in range(disjoint.shape[0]):
                if not pieces.shape[0]:
                    break
                pieces = self._sharp_many(layout, pieces, disjoint[j])
            if pieces.shape[0]:
                disjoint = np.concatenate([disjoint, pieces], axis=0)
        if not disjoint.shape[0]:
            return 0
        fields = disjoint[:, None, :] & layout.part_masks[None, :, :]
        sizes = np.bitwise_count(fields).sum(axis=2, dtype=np.int64)
        total = 0
        for per_part in sizes.tolist():  # python ints: no overflow
            size = 1
            for count in per_part:
                size *= count
            total += size
        return total

    # -- EXPAND support ------------------------------------------------
    def blocked_raises(self, space: Space, off: _Packed, cube: int) -> int:
        if len(off) < self._linear:
            return self._py.blocked_raises(space, off.ints(), cube)
        layout = _layout(space)
        cube_limbs = _to_limbs(cube, layout.nlimbs)
        rows = off.rows()
        meets = rows & cube_limbs[None, :]
        part_hit = (
            (meets[:, None, :] & layout.part_masks[None, :, :])
            .any(axis=2)
        )
        blocking = ~part_hit
        critical = blocking.sum(axis=1) == 1
        if not critical.any():
            return 0
        crit_rows = rows[critical]
        parts = np.argmax(blocking[critical], axis=1)
        admitted = crit_rows & layout.part_masks[parts]
        return _from_limbs(np.bitwise_or.reduce(admitted, axis=0))

    def best_raise(
        self, space: Space, others: _Packed, cube: int, candidates: int
    ) -> int:
        if not candidates:
            return 0
        if len(others) < self._linear:
            return self._py.best_raise(space, others.ints(), cube, candidates)
        layout = _layout(space)
        positions = []
        bits = candidates
        while bits:
            bit = bits & -bits
            bits &= bits - 1
            positions.append(bit.bit_length() - 1)
        n_cand = len(positions)
        cand = np.zeros((n_cand, layout.nlimbs), dtype=np.uint64)
        for i, pos in enumerate(positions):
            cand[i, pos // 64] = np.uint64(1 << (pos % 64))
        rows = others.rows()
        n_others = rows.shape[0]
        cube_limbs = _to_limbs(cube, layout.nlimbs)
        grown = cube_limbs[None, :] | cand
        outside = rows[None, :, :] & ~grown[:, None, :]
        covered = (outside == 0).all(axis=2).sum(axis=1, dtype=np.int64)
        column = (
            ((rows[None, :, :] & cand[:, None, :]) != 0)
            .any(axis=2)
            .sum(axis=1, dtype=np.int64)
        )
        # lexicographic (covered, column) max, first (lowest bit) wins
        score = covered * np.int64(n_others + 1) + column
        return 1 << positions[int(np.argmax(score))]
