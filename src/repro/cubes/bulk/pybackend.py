"""Pure-Python bulk kernel: a packed cover is a list of int rows.

This backend carries the *interface contract* for every kernel (the
numpy backend in :mod:`repro.cubes.bulk.npbackend` mirrors it limb for
limb).  A *packed cover* is an opaque, immutable-by-convention value:
algorithm code must only manipulate it through kernel primitives and
convert to/from ``List[int]`` cubes with :meth:`pack`/:meth:`unpack`
at the ``Cover`` boundary.

Row *masks* (boolean selections returned by the ``*_rows`` primitives)
are indexable sequences of truthy values aligned with the packed rows;
feed them back to :meth:`select`.

Every primitive is defined so that, composed as the algorithm layer
does, it reproduces the legacy per-cube int loops **exactly** —
including tie-breaking (first strict maximum), stable sort orders and
the greedy absorption result — which is what keeps solver output
byte-identical across backends.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..cube import cube_size as _cube_size
from ..cube import sharp as _sharp
from ..space import Space

__all__ = ["PythonKernel", "bit_count"]

try:  # Python >= 3.10
    bit_count = int.bit_count
except AttributeError:  # pragma: no cover - py3.9 fallback

    def bit_count(x: int) -> int:
        return bin(x).count("1")


class PythonKernel:
    """Bulk cover primitives over plain ``List[int]`` packed covers."""

    name = "python"

    # -- conversion boundary -------------------------------------------
    def pack(self, space: Space, cubes: Sequence[int]) -> List[int]:
        """Packed form of a cube list (row order preserved)."""
        return list(cubes)

    def unpack(self, space: Space, packed: List[int]) -> List[int]:
        """Back to a plain cube list (row order preserved)."""
        return list(packed)

    # -- structural ----------------------------------------------------
    def length(self, packed: List[int]) -> int:
        return len(packed)

    def row(self, space: Space, packed: List[int], i: int) -> int:
        """Row ``i`` as a legacy int cube."""
        return packed[i]

    def empty(self, space: Space) -> List[int]:
        return []

    def single(self, space: Space, cube: int) -> List[int]:
        return [cube]

    def concat(self, space: Space, a: List[int], b: List[int]) -> List[int]:
        return list(a) + list(b)

    def gather(
        self, space: Space, packed: List[int], indices: Sequence[int]
    ) -> List[int]:
        """Rows at ``indices``, in that order (fancy indexing)."""
        return [packed[i] for i in indices]

    def delete_row(self, space: Space, packed: List[int], i: int) -> List[int]:
        return packed[:i] + packed[i + 1 :]

    def with_row(
        self, space: Space, packed: List[int], i: int, cube: int
    ) -> List[int]:
        out = list(packed)
        out[i] = cube
        return out

    def select(self, space: Space, packed: List[int], mask) -> List[int]:
        """Rows whose mask entry is truthy, original order preserved."""
        return [c for c, keep in zip(packed, mask) if keep]

    # -- whole-cover folds ---------------------------------------------
    def or_fold(self, space: Space, packed: List[int]) -> int:
        """Supercube fold: OR of all rows (0 for an empty cover)."""
        out = 0
        for c in packed:
            out |= c
        return out

    def union_info(self, space: Space, packed: List[int]) -> Tuple[int, bool]:
        """``(or_fold, has_universe_row)`` in one pass."""
        universe = space.universe
        union = 0
        found = False
        for c in packed:
            union |= c
            if c == universe:
                found = True
                break
        return union, found

    def popcounts(self, space: Space, packed: List[int]) -> List[int]:
        """Per-row popcount (the cube *weight* used for sort orders)."""
        return [bit_count(c) for c in packed]

    def nonfull_counts(self, space: Space, packed: List[int]) -> List[int]:
        """Per part: number of rows whose field is not full."""
        counts = []
        for mask in space.part_masks:
            n = 0
            for c in packed:
                if c & mask != mask:
                    n += 1
            counts.append(n)
        return counts

    def is_unate(self, space: Space, packed: List[int]) -> bool:
        """True when, per part, all non-full fields are identical."""
        for mask in space.part_masks:
            seen = -1
            for c in packed:
                field = c & mask
                if field != mask:
                    if seen < 0:
                        seen = field
                    elif field != seen:
                        return False
        return True

    def binate_part(self, space: Space, packed: List[int]) -> int:
        """Part non-full in the most rows; first part wins ties."""
        best_part = -1
        best_score = -1
        for part, score in enumerate(self.nonfull_counts(space, packed)):
            if score > best_score:
                best_score = score
                best_part = part
        return best_part

    # -- row masks -----------------------------------------------------
    def void_mask(self, space: Space, packed: List[int]) -> List[bool]:
        """Per row: is some part field empty (the cube denotes {})?"""
        masks = space.part_masks
        out = []
        for c in packed:
            void = False
            for m in masks:
                if not c & m:
                    void = True
                    break
            out.append(void)
        return out

    def contains_rows(
        self, space: Space, packed: List[int], cube: int
    ) -> List[bool]:
        """Per row: does the row contain ``cube`` (row ⊇ cube)?"""
        return [not cube & ~c for c in packed]

    def contained_rows(
        self, space: Space, packed: List[int], cube: int
    ) -> List[bool]:
        """Per row: is the row contained in ``cube`` (row ⊆ cube)?"""
        return [not c & ~cube for c in packed]

    def admits_rows(
        self, space: Space, packed: List[int], cube: int
    ) -> List[bool]:
        """Per row: does the row share any raw bit with ``cube``?"""
        return [bool(c & cube) for c in packed]

    def intersects_any(
        self, space: Space, packed: List[int], cube: int
    ) -> bool:
        """True when some row has a non-void meet with ``cube``."""
        masks = space.part_masks
        for c in packed:
            meet = c & cube
            for m in masks:
                if not meet & m:
                    break
            else:
                return True
        return False

    # -- cofactor / restriction ----------------------------------------
    def cofactor_value(
        self, space: Space, packed: List[int], part: int, value: int
    ) -> List[int]:
        """Cofactor against value ``value`` of ``part``: keep rows
        admitting the value and raise their ``part`` field to full."""
        mask = space.part_masks[part]
        bit = 1 << (space.offsets[part] + value)
        return [c | mask for c in packed if c & bit]

    def cofactor_cube(
        self, space: Space, packed: List[int], pivot: int
    ) -> List[int]:
        """ESPRESSO cofactor against a pivot cube: rows with a void
        meet are dropped, the rest are lifted outside the pivot."""
        lifted = space.universe & ~pivot
        masks = space.part_masks
        out = []
        for c in packed:
            meet = c & pivot
            for m in masks:
                if not meet & m:
                    break
            else:
                out.append(c | lifted)
        return out

    def and_rows(self, space: Space, packed: List[int], cube: int) -> List[int]:
        """AND every row with ``cube`` (rows may become void)."""
        return [c & cube for c in packed]

    # -- cover surgery -------------------------------------------------
    def merge_part(
        self, space: Space, packed: List[int], part: int
    ) -> List[int]:
        """Merge rows identical outside ``part`` by OR-ing the fields;
        output order is first occurrence of each outside-key."""
        mask = space.part_masks[part]
        merged = {}
        for c in packed:
            key = c & ~mask
            merged[key] = merged.get(key, 0) | (c & mask)
        return [key | field for key, field in merged.items()]

    def absorb(self, space: Space, packed: List[int]) -> List[int]:
        """Single-call pairwise absorption, bit-exact with the legacy
        greedy pass: stable-sort rows by descending popcount, keep a
        row iff it is contained in no strictly earlier row (by
        transitivity that equals "no earlier *kept* row")."""
        order = sorted(packed, key=bit_count, reverse=True)
        result: List[int] = []
        for cube in order:
            for big in result:
                if not cube & ~big:
                    break
            else:
                result.append(cube)
        return result

    def dedup_keep_mask(
        self, space: Space, packed: List[int]
    ) -> List[bool]:
        """EXPAND's final dedup: drop row ``i`` when another row ``j``
        contains it and is either distinct or earlier (``j < i``)."""
        keep = []
        for i, c in enumerate(packed):
            drop = False
            for j, d in enumerate(packed):
                if j != i and not c & ~d and (d != c or j < i):
                    drop = True
                    break
            keep.append(not drop)
        return keep

    def cross_intersect(
        self, space: Space, a: List[int], b: List[int]
    ) -> List[int]:
        """All pairwise meets ``a_i & b_j`` (a-major order), voids
        dropped — the row-wise intersect matrix flattened."""
        masks = space.part_masks
        out = []
        for x in a:
            for y in b:
                c = x & y
                for m in masks:
                    if not c & m:
                        break
                else:
                    out.append(c)
        return out

    # -- counting ------------------------------------------------------
    def minterm_count(self, space: Space, packed: List[int]) -> int:
        """Exact number of distinct minterms covered (disjoint sharp)."""
        disjoint: List[int] = []
        for cube in packed:
            pieces = [cube]
            for seen in disjoint:
                nxt: List[int] = []
                for piece in pieces:
                    nxt.extend(_sharp(space, piece, seen))
                pieces = nxt
                if not pieces:
                    break
            disjoint.extend(pieces)
        total = 0
        for c in disjoint:
            total += _cube_size(space, c)
        return total

    # -- EXPAND support ------------------------------------------------
    def blocked_raises(
        self, space: Space, off: List[int], cube: int
    ) -> int:
        """Union of raise bits blocked by the off-set: for every off
        row whose meet with ``cube`` is empty in exactly one part (a
        *critical*, distance-one row), the values it admits in that
        part may not be raised."""
        masks = space.part_masks
        blocked = 0
        for o in off:
            meet = o & cube
            block_part = -1
            for p, m in enumerate(masks):
                if not meet & m:
                    if block_part >= 0:
                        block_part = -2
                        break
                    block_part = p
            if block_part >= 0:
                blocked |= o & masks[block_part]
        return blocked

    def best_raise(
        self, space: Space, others: List[int], cube: int, candidates: int
    ) -> int:
        """Covering-directed raise choice among ``candidates`` bits:
        maximize (on-set rows covered by the grown cube, rows admitting
        the bit); first candidate bit (ascending) wins ties.  Returns
        0 when ``candidates`` is 0."""
        best_bit = 0
        best_key = (-1, -1)
        bits = candidates
        while bits:
            bit = bits & -bits
            bits &= bits - 1
            grown_outside = ~(cube | bit)
            covered = 0
            column = 0
            for o in others:
                if o & bit:
                    column += 1
                if not o & grown_outside:
                    covered += 1
            key = (covered, column)
            if key > best_key:
                best_key = key
                best_bit = bit
        return best_bit
