"""The state-assignment tool of the paper's Section 4.

Pipeline (the paper's two-step strategy with PICOLA at its core):

1. model the FSM as an input-encoding problem (present state = one
   multi-valued variable, next state one-hot);
2. multi-valued minimization -> face constraints, weighted by how many
   symbolic implicants need each face;
3. encode the states with minimum code length — PICOLA for the NEW
   tool, or any of the baselines for comparison;
4. build the encoded machine's PLA and minimize it with espresso; the
   product-term count is the paper's Table II "size".

``assign_states`` runs the whole pipeline for one method and returns
an :class:`AssignmentResult` with the measured wall-clock time of the
encoding step (Table II's normalized "time").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core import PicolaOptions
from ..encoding import ConstraintSet, Encoding, derive_face_constraints
from ..obs import resolve_tracer
from ..runtime import Budget, InvalidSpecError
from ..espresso import EspressoStats, Pla, espresso_pla
from ..fsm import Fsm, encode_fsm
from ..service.dispatch import execute
from ..service.request import EncodeRequest
from ..solvers import get_solver

__all__ = ["AssignmentResult", "assign_states", "METHODS"]

METHODS = (
    "picola",
    "nova_ih",
    "nova_ioh",
    "nova_greedy",
    "enc",
    "mustang_p",
    "mustang_n",
    "natural",
    "gray",
    "random",
)

#: method name -> (registry solver, fixed options) — the whole former
#: if/elif dispatch, now data
_METHOD_SOLVERS: Dict[str, Any] = {
    "picola": ("picola", {}),
    "nova_ih": ("nova", {"variant": "i_hybrid"}),
    "nova_ioh": ("nova", {"variant": "io_hybrid"}),
    "nova_greedy": ("nova", {"variant": "i_greedy"}),
    "enc": ("enc", {}),
    "mustang_p": ("mustang", {"variant": "p"}),
    "mustang_n": ("mustang", {"variant": "n"}),
    "natural": ("simple", {"scheme": "natural"}),
    "gray": ("simple", {"scheme": "gray"}),
    "random": ("simple", {"scheme": "random"}),
}

#: which EncodeResult.stats keys surface in AssignmentResult.extra
_EXTRA_KEYS = {
    "picola": ("satisfied", "guided"),
    "nova": ("satisfied",),
    "mustang": ("attraction",),
    "enc": ("converged", "minimizations"),
    "simple": (),
}


@dataclass
class AssignmentResult:
    """Outcome of one state assignment + two-level implementation."""

    fsm: Fsm
    method: str
    encoding: Encoding
    constraints: ConstraintSet
    pla: Pla
    minimized: Pla
    encode_seconds: float
    minimize_seconds: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Product terms of the minimized two-level implementation."""
        return self.minimized.num_terms()

    @property
    def literals(self) -> int:
        return self.minimized.literal_count()

    @property
    def area(self) -> int:
        return self.minimized.gate_area()

    def summary(self) -> str:
        return (
            f"{self.fsm.name}/{self.method}: size={self.size} "
            f"terms, {self.literals} literals, "
            f"encode {self.encode_seconds:.3f}s"
        )


def _encode(
    fsm: Fsm,
    cset: ConstraintSet,
    method: str,
    seed: int,
    picola_options: Optional[PicolaOptions],
    extra: Dict[str, object],
    budget: Optional[Budget] = None,
    tracer=None,
) -> Encoding:
    try:
        solver_name, fixed = _METHOD_SOLVERS[method]
    except KeyError:
        raise InvalidSpecError(
            f"unknown method {method!r}; choose from {METHODS}"
        ) from None
    options: Dict[str, Any] = dict(fixed)
    solver = get_solver(solver_name)
    if "seed" in solver.option_keys:
        options["seed"] = seed
    if "fsm" in solver.option_keys:
        options["fsm"] = fsm
    if solver_name == "picola" and picola_options is not None:
        options["picola_options"] = picola_options
    # through the service layer: same dispatch path as the facade and
    # the daemon.  classify=False keeps the raw exception for the
    # harness' per-benchmark fault isolation; no cache — Table II's
    # timing column must measure real solves
    request = EncodeRequest.build(
        cset, solver=solver_name, options=options
    )
    response = execute(
        request, budget=budget, tracer=tracer, classify=False
    )
    for key in _EXTRA_KEYS[solver_name]:
        if key in response.stats:
            extra[key] = response.stats[key]
    extra["encode_nodes"] = int(response.stats.get("nodes", 0))
    return response.encoding()


def assign_states(
    fsm: Fsm,
    method: str = "picola",
    *,
    seed: int = 0,
    picola_options: Optional[PicolaOptions] = None,
    constraints: Optional[ConstraintSet] = None,
    minimize: bool = True,
    reduce: bool = False,
    sparse: bool = False,
    budget: Optional[Budget] = None,
    tracer=None,
) -> AssignmentResult:
    """State-assign ``fsm`` and implement it in two levels.

    ``constraints`` may be passed in to share the symbolic
    minimization across methods (the harness does this so all tools
    see the identical input-encoding problem).  ``reduce=True`` runs
    completely-specified state minimization first (it raises on
    machines with don't-care behaviour); ``sparse=True`` adds the
    MAKE_SPARSE literal-reduction pass after espresso.  ``budget`` is
    a cooperative deadline/counter threaded through the encoder and
    the espresso minimization; ``tracer`` (default: the module-level
    tracer) records ``assign/encode`` and ``assign/minimize`` spans
    around the two timed pipeline steps.
    """
    tracer = resolve_tracer(tracer)
    if reduce:
        from ..fsm import reduce_states

        reduction = reduce_states(fsm)
        if reduction.removed:
            fsm = reduction.fsm
            constraints = None  # stale against the new state set
    if constraints is None:
        constraints = derive_face_constraints(fsm)
    extra: Dict[str, object] = {}
    t0 = time.perf_counter()
    with tracer.span("assign/encode", fsm=fsm.name, method=method):
        encoding = _encode(
            fsm, constraints, method, seed, picola_options, extra,
            budget, tracer,
        )
    encode_seconds = time.perf_counter() - t0

    pla = encode_fsm(
        fsm,
        {s: encoding.code_of(s) for s in encoding.symbols},
        n_bits=encoding.n_bits,
    )
    t0 = time.perf_counter()
    if minimize:
        stats = EspressoStats()
        with tracer.span(
            "assign/minimize", fsm=fsm.name, method=method
        ):
            minimized = espresso_pla(
                pla, stats=stats, use_lastgasp=False, budget=budget,
                tracer=tracer,
            )
        extra["espresso_iterations"] = stats.iterations
        if sparse:
            from ..espresso import make_sparse

            minimized.onset = make_sparse(
                minimized.space, minimized.onset, pla.dcset
            )
    else:
        minimized = pla
    minimize_seconds = time.perf_counter() - t0
    return AssignmentResult(
        fsm=fsm,
        method=method,
        encoding=encoding,
        constraints=constraints,
        pla=pla,
        minimized=minimized,
        encode_seconds=encode_seconds,
        minimize_seconds=minimize_seconds,
        extra=extra,
    )
