"""The state-assignment tool of the paper's Section 4.

Pipeline (the paper's two-step strategy with PICOLA at its core):

1. model the FSM as an input-encoding problem (present state = one
   multi-valued variable, next state one-hot);
2. multi-valued minimization -> face constraints, weighted by how many
   symbolic implicants need each face;
3. encode the states with minimum code length — PICOLA for the NEW
   tool, or any of the baselines for comparison;
4. build the encoded machine's PLA and minimize it with espresso; the
   product-term count is the paper's Table II "size".

``assign_states`` runs the whole pipeline for one method and returns
an :class:`AssignmentResult` with the measured wall-clock time of the
encoding step (Table II's normalized "time").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..baselines import (
    enc_encode,
    gray_encoding,
    natural_encoding,
    nova_encode,
    random_encoding,
    state_affinity,
)
from ..core import PicolaOptions, picola_encode
from ..encoding import ConstraintSet, Encoding, derive_face_constraints
from ..runtime import Budget
from ..espresso import EspressoStats, Pla, espresso_pla
from ..fsm import Fsm, encode_fsm

__all__ = ["AssignmentResult", "assign_states", "METHODS"]

METHODS = (
    "picola",
    "nova_ih",
    "nova_ioh",
    "nova_greedy",
    "enc",
    "mustang_p",
    "mustang_n",
    "natural",
    "gray",
    "random",
)


@dataclass
class AssignmentResult:
    """Outcome of one state assignment + two-level implementation."""

    fsm: Fsm
    method: str
    encoding: Encoding
    constraints: ConstraintSet
    pla: Pla
    minimized: Pla
    encode_seconds: float
    minimize_seconds: float
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Product terms of the minimized two-level implementation."""
        return self.minimized.num_terms()

    @property
    def literals(self) -> int:
        return self.minimized.literal_count()

    @property
    def area(self) -> int:
        return self.minimized.gate_area()

    def summary(self) -> str:
        return (
            f"{self.fsm.name}/{self.method}: size={self.size} "
            f"terms, {self.literals} literals, "
            f"encode {self.encode_seconds:.3f}s"
        )


def _encode(
    fsm: Fsm,
    cset: ConstraintSet,
    method: str,
    seed: int,
    picola_options: Optional[PicolaOptions],
    extra: Dict[str, object],
    budget: Optional[Budget] = None,
) -> Encoding:
    if method == "picola":
        result = picola_encode(
            cset, options=picola_options, budget=budget
        )
        extra["satisfied"] = len(result.satisfied)
        extra["guided"] = len(result.infeasible)
        return result.encoding
    if method in ("nova_ih", "nova_ioh", "nova_greedy"):
        variant = {
            "nova_ih": "i_hybrid",
            "nova_ioh": "io_hybrid",
            "nova_greedy": "i_greedy",
        }[method]
        affinity = state_affinity(fsm) if variant == "io_hybrid" else None
        result = nova_encode(
            cset, variant=variant, affinity=affinity, seed=seed,
            budget=budget,
        )
        extra["satisfied"] = result.satisfied
        return result.encoding
    if method in ("mustang_p", "mustang_n"):
        from ..baselines import mustang_encode

        result = mustang_encode(
            fsm, cset.min_code_length(),
            variant=method[-1], seed=seed, budget=budget,
        )
        extra["attraction"] = result.attraction
        return result.encoding
    if method == "enc":
        result = enc_encode(cset, seed=seed, budget=budget)
        extra["converged"] = result.converged
        extra["minimizations"] = result.minimizations
        return result.encoding
    if method == "natural":
        return natural_encoding(list(cset.symbols))
    if method == "gray":
        return gray_encoding(list(cset.symbols))
    if method == "random":
        return random_encoding(list(cset.symbols), seed=seed)
    raise ValueError(f"unknown method {method!r}; choose from {METHODS}")


def assign_states(
    fsm: Fsm,
    method: str = "picola",
    *,
    seed: int = 0,
    picola_options: Optional[PicolaOptions] = None,
    constraints: Optional[ConstraintSet] = None,
    minimize: bool = True,
    reduce: bool = False,
    sparse: bool = False,
    budget: Optional[Budget] = None,
) -> AssignmentResult:
    """State-assign ``fsm`` and implement it in two levels.

    ``constraints`` may be passed in to share the symbolic
    minimization across methods (the harness does this so all tools
    see the identical input-encoding problem).  ``reduce=True`` runs
    completely-specified state minimization first (it raises on
    machines with don't-care behaviour); ``sparse=True`` adds the
    MAKE_SPARSE literal-reduction pass after espresso.  ``budget`` is
    a cooperative deadline/counter threaded through the encoder and
    the espresso minimization.
    """
    if reduce:
        from ..fsm import reduce_states

        reduction = reduce_states(fsm)
        if reduction.removed:
            fsm = reduction.fsm
            constraints = None  # stale against the new state set
    if constraints is None:
        constraints = derive_face_constraints(fsm)
    extra: Dict[str, object] = {}
    t0 = time.perf_counter()
    encoding = _encode(
        fsm, constraints, method, seed, picola_options, extra, budget
    )
    encode_seconds = time.perf_counter() - t0

    pla = encode_fsm(
        fsm,
        {s: encoding.code_of(s) for s in encoding.symbols},
        n_bits=encoding.n_bits,
    )
    t0 = time.perf_counter()
    if minimize:
        stats = EspressoStats()
        minimized = espresso_pla(
            pla, stats=stats, use_lastgasp=False, budget=budget
        )
        extra["espresso_iterations"] = stats.iterations
        if sparse:
            from ..espresso import make_sparse

            minimized.onset = make_sparse(
                minimized.space, minimized.onset, pla.dcset
            )
    else:
        minimized = pla
    minimize_seconds = time.perf_counter() - t0
    return AssignmentResult(
        fsm=fsm,
        method=method,
        encoding=encoding,
        constraints=constraints,
        pla=pla,
        minimized=minimized,
        encode_seconds=encode_seconds,
        minimize_seconds=minimize_seconds,
        extra=extra,
    )
