"""State assignment built on PICOLA (the paper's Section 4 tool)."""

from .tool import METHODS, AssignmentResult, assign_states

__all__ = ["METHODS", "AssignmentResult", "assign_states"]
