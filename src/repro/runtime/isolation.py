"""Per-benchmark fault isolation for the harness drivers.

:func:`run_isolated` runs one unit of work (one table row, one sweep
cell) and maps whatever happens to a small :class:`Outcome` record
instead of letting an exception take down the whole experiment:

* ``ok``      — the callable returned; ``value`` holds the result;
* ``timeout`` — a :class:`~repro.runtime.errors.SolverTimeout`;
* ``budget``  — any other :class:`~repro.runtime.errors.BudgetExceeded`;
* ``failed``  — any other exception (``error`` holds the message).

``KeyboardInterrupt`` / ``SystemExit`` always propagate — isolation
protects the run from *benchmarks*, not from the operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from .errors import BudgetExceeded, SolverTimeout

__all__ = ["Outcome", "run_isolated", "classify_failure"]


@dataclass
class Outcome:
    """Result of one isolated unit of work."""

    label: str
    status: str  # "ok" | "timeout" | "budget" | "failed"
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def reason(self) -> str:
        """Short human label: "timeout", "budget" or the error type."""
        if self.status in ("timeout", "budget"):
            return self.status
        return (self.error or "error").split(":", 1)[0]


def classify_failure(exc: BaseException) -> Tuple[str, str]:
    """Map an exception to an :class:`Outcome` status + message."""
    if isinstance(exc, SolverTimeout):
        return "timeout", str(exc)
    if isinstance(exc, BudgetExceeded):
        return "budget", str(exc)
    return "failed", f"{type(exc).__name__}: {exc}"


def run_isolated(
    fn: Callable[..., Any],
    *args: Any,
    label: str = "",
    **kwargs: Any,
) -> Outcome:
    """Run ``fn`` and convert any failure into an :class:`Outcome`."""
    t0 = time.perf_counter()
    try:
        value = fn(*args, **kwargs)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # repro: noqa[RPA003] -- this IS the per-benchmark fault boundary; every failure becomes an Outcome record
        status, message = classify_failure(exc)
        return Outcome(
            label=label,
            status=status,
            error=message,
            seconds=time.perf_counter() - t0,
        )
    return Outcome(
        label=label,
        status="ok",
        value=value,
        seconds=time.perf_counter() - t0,
    )
