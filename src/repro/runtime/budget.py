"""Cooperative budgets and deadlines for the solvers.

A :class:`Deadline` is a wall-clock cut-off; a :class:`Budget` couples
a deadline with a node/iteration counter.  Solvers call
:meth:`Budget.tick` at their loop heads; the call is cheap (one
increment, with the clock consulted only every ``check_every`` ticks)
and raises :class:`~repro.runtime.errors.BudgetExceeded` or
:class:`~repro.runtime.errors.SolverTimeout` when the limit is hit.

Both objects are *cooperative*: nothing is interrupted from outside,
so a solver that never ticks never times out.  That is deliberate —
the search loops in this package are pure Python, and checking at loop
heads keeps behaviour deterministic and signal-free.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .errors import BudgetExceeded, SolverTimeout

__all__ = ["Deadline", "Budget"]


class Deadline:
    """A wall-clock cut-off; ``seconds=None`` means unlimited."""

    def __init__(
        self,
        seconds: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError("deadline seconds must be >= 0")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = (
            None if seconds is None else clock() + seconds
        )

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        return cls(seconds)

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when unlimited."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, where: str = "") -> None:
        """Raise :class:`SolverTimeout` once the deadline has passed."""
        if self.expired():
            site = where or "solver"
            raise SolverTimeout(
                f"{site}: exceeded {self.seconds:g}s deadline"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.seconds is None:
            return "Deadline(unlimited)"
        return f"Deadline({self.seconds:g}s, {self.remaining():.3f}s left)"


class Budget:
    """Node counter + deadline, checked cooperatively at loop heads.

    ``max_nodes=None`` disables the counter limit; ``seconds=None``
    (and no explicit ``deadline``) disables the wall-clock limit.  A
    shared :class:`Deadline` may be passed so several solver calls
    split one overall time allowance.
    """

    def __init__(
        self,
        max_nodes: Optional[int] = None,
        seconds: Optional[float] = None,
        *,
        deadline: Optional[Deadline] = None,
        check_every: int = 64,
    ) -> None:
        if deadline is not None and seconds is not None:
            raise ValueError("pass seconds or deadline, not both")
        self.max_nodes = max_nodes
        self.deadline = deadline or Deadline(seconds)
        self.nodes = 0
        self._check_every = max(1, check_every)

    @property
    def limited(self) -> bool:
        return (
            self.max_nodes is not None
            or self.deadline.seconds is not None
        )

    def remaining_nodes(self) -> Optional[int]:
        if self.max_nodes is None:
            return None
        return self.max_nodes - self.nodes

    def tick(self, n: int = 1, where: str = "") -> None:
        """Spend ``n`` nodes; raise when a limit is exceeded.

        The deadline is only consulted every ``check_every`` ticks, so
        a tick in a hot inner loop stays a counter increment almost
        always.
        """
        # Budget is request-scoped: every instance is built by the
        # request/solve that owns it and never crosses a thread
        # boundary, so tick() stays lock-free (a lock here would tax
        # every kernel inner loop).
        self.nodes += n  # repro: noqa[RPA010] -- request-scoped, thread-confined
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            site = where or "solver"
            raise BudgetExceeded(
                f"{site}: exceeded {self.max_nodes} node budget"
            )
        if self.nodes % self._check_every < n:
            self.deadline.check(where)

    def check(self, where: str = "") -> None:
        """Unconditional deadline check (for coarse, slow loops)."""
        self.deadline.check(where)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Budget(nodes={self.nodes}/{self.max_nodes}, "
            f"deadline={self.deadline!r})"
        )
