"""JSON checkpoint/resume for long experiment runs.

A :class:`Checkpoint` is a small JSON file mapping completed unit keys
(benchmark names, ``seed/fsm`` cells) to their serialized results.
The harness marks each unit done as soon as it finishes, with an
atomic write (temp file + ``os.replace``), so a killed run — crash,
Ctrl-C, cluster preemption — restarts from the last completed
benchmark instead of from scratch: ``picola table1 --resume run.ckpt``.

The file carries an ``experiment`` tag; resuming a ``table2`` run from
a ``table1`` checkpoint raises :class:`CheckpointError` rather than
silently mixing result shapes.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Union

from .errors import CheckpointError

__all__ = ["Checkpoint"]

_FORMAT = "repro-checkpoint-v1"


class Checkpoint:
    """Durable record of completed experiment units."""

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        experiment: Optional[str] = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.experiment = experiment
        self._completed: Dict[str, Any] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            raise CheckpointError(
                f"{self.path} is not a {_FORMAT} file"
            )
        recorded = data.get("experiment")
        if (
            self.experiment is not None
            and recorded is not None
            and recorded != self.experiment
        ):
            raise CheckpointError(
                f"{self.path} belongs to experiment {recorded!r}, "
                f"not {self.experiment!r}"
            )
        if self.experiment is None:
            self.experiment = recorded
        completed = data.get("completed", {})
        if not isinstance(completed, dict):
            raise CheckpointError(f"{self.path}: bad 'completed' map")
        self._completed = completed

    # -- queries -------------------------------------------------------
    @property
    def completed(self) -> Dict[str, Any]:
        return dict(self._completed)

    def keys(self) -> List[str]:
        return list(self._completed)

    def is_done(self, key: str) -> bool:
        return key in self._completed

    def get(self, key: str) -> Any:
        return self._completed[key]

    def __len__(self) -> int:
        return len(self._completed)

    # -- updates -------------------------------------------------------
    def mark_done(self, key: str, payload: Any) -> None:
        """Record one finished unit and flush atomically."""
        self._completed[key] = payload
        self._flush()

    def clear(self) -> None:
        self._completed.clear()
        if self.path.exists():
            self.path.unlink()

    def _flush(self) -> None:
        data = {
            "format": _FORMAT,
            "experiment": self.experiment,
            "completed": self._completed,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True))
        os.replace(tmp, self.path)
