"""JSON checkpoint/resume for long experiment runs.

A :class:`Checkpoint` is a small JSON file mapping completed unit keys
(benchmark names, ``seed/fsm`` cells) to their serialized results.
The harness marks each unit done as soon as it finishes, with an
atomic write (temp file + ``os.replace``), so a killed run — crash,
Ctrl-C, cluster preemption — restarts from the last completed
benchmark instead of from scratch: ``picola table1 --resume run.ckpt``.

The file carries an ``experiment`` tag; resuming a ``table2`` run from
a ``table1`` checkpoint raises :class:`CheckpointError` rather than
silently mixing result shapes.  The tag is stamped on the first write
— an untagged instance refuses to flush — and an on-disk file missing
the tag is rejected at load time, so the mismatch check can never be
bypassed by a file that simply omits the field.

Failed units are checkpointed too (their payload records a non-``ok``
``status``), so a deterministically failing benchmark is not re-run on
every ``--resume``; :func:`resumable` implements the shared
skip-or-rerun decision, including the opt-in ``--retry-failed`` path.

Sharded runs (``--shard K/N``) additionally stamp a ``meta`` object —
schema version, shard spec, the full ordered unit universe and the
experiment parameters — making the file *self-describing*: ``picola
merge`` can validate that independent shard checkpoints belong to the
same experiment run and rebuild the combined report from them.  A
resume whose freshly computed meta disagrees with the on-disk one is
refused, so two hosts cannot silently mix incompatible shard specs.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Union

from .errors import CheckpointError

__all__ = ["Checkpoint", "payload_failed", "resumable"]

_FORMAT = "repro-checkpoint-v1"


class Checkpoint:
    """Durable record of completed experiment units."""

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        experiment: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path: Optional[pathlib.Path] = pathlib.Path(path)
        self.experiment = experiment
        self.meta = meta
        self._completed: Dict[str, Any] = {}
        if self.path.exists():
            self._load()

    @classmethod
    def in_memory(
        cls,
        experiment: str,
        completed: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> "Checkpoint":
        """A read-only checkpoint that never touches disk — the merge
        path uses it to replay combined shard results through the
        drivers' resume loops."""
        ckpt = cls.__new__(cls)
        ckpt.path = None
        ckpt.experiment = experiment
        ckpt.meta = meta
        ckpt._completed = dict(completed)
        return ckpt

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            raise CheckpointError(
                f"{self.path} is not a {_FORMAT} file"
            )
        recorded = data.get("experiment")
        if recorded is None:
            raise CheckpointError(
                f"{self.path} has no experiment tag; refusing to "
                "resume from an untagged checkpoint"
            )
        if (
            self.experiment is not None
            and recorded != self.experiment
        ):
            raise CheckpointError(
                f"{self.path} belongs to experiment {recorded!r}, "
                f"not {self.experiment!r}"
            )
        if self.experiment is None:
            self.experiment = recorded
        recorded_meta = data.get("meta")
        if recorded_meta is not None and not isinstance(
            recorded_meta, dict
        ):
            raise CheckpointError(f"{self.path}: bad 'meta' object")
        if self.meta is not None and recorded_meta is not None:
            if self.meta != recorded_meta:
                raise CheckpointError(
                    f"{self.path} was written for a different run "
                    "spec (shard/units/params differ); refusing to "
                    "mix incompatible shard checkpoints"
                )
        elif self.meta is not None and recorded_meta is None:
            raise CheckpointError(
                f"{self.path} is not a shard checkpoint (no meta); "
                "refusing to resume a sharded run from it"
            )
        elif recorded_meta is not None:
            self.meta = recorded_meta
        completed = data.get("completed", {})
        if not isinstance(completed, dict):
            raise CheckpointError(f"{self.path}: bad 'completed' map")
        self._completed = completed

    # -- queries -------------------------------------------------------
    @property
    def completed(self) -> Dict[str, Any]:
        return dict(self._completed)

    def keys(self) -> List[str]:
        return list(self._completed)

    def is_done(self, key: str) -> bool:
        return key in self._completed

    def get(self, key: str) -> Any:
        return self._completed[key]

    def __len__(self) -> int:
        return len(self._completed)

    # -- updates -------------------------------------------------------
    def mark_done(self, key: str, payload: Any) -> None:
        """Record one finished unit and flush atomically."""
        self._completed[key] = payload
        self._flush()

    def clear(self) -> None:
        self._completed.clear()
        if self.path is not None and self.path.exists():
            self.path.unlink()

    def _flush(self) -> None:
        if self.path is None:
            raise CheckpointError(
                "in-memory checkpoint is read-only (merge replay)"
            )
        if self.experiment is None:
            raise CheckpointError(
                f"refusing to write {self.path} without an "
                "experiment tag (pass experiment=... so later "
                "resumes can verify it)"
            )
        data = {
            "format": _FORMAT,
            "experiment": self.experiment,
            "completed": self._completed,
        }
        if self.meta is not None:
            data["meta"] = self.meta
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True))
        os.replace(tmp, self.path)


# ----------------------------------------------------------------------
# shared resume policy for the harness drivers
# ----------------------------------------------------------------------
def payload_failed(payload: Any) -> bool:
    """True when a checkpointed payload records a non-``ok`` outcome.

    All drivers store failures as dicts with a string ``status`` field
    (``"timeout"`` / ``"budget"`` / ``"failed"``); successful ablation
    payloads carry a *dict* under the same key (per-variant cell
    statuses), which is deliberately not a failure marker.
    """
    if not isinstance(payload, dict):
        return False
    status = payload.get("status")
    return isinstance(status, str) and status != "ok"


def resumable(
    ckpt: Optional["Checkpoint"],
    key: str,
    retry_failed: bool = False,
) -> Optional[Any]:
    """The checkpointed payload to reuse for ``key``, or ``None`` when
    the unit must (re-)run — either because it was never completed or
    because ``retry_failed`` forces re-execution of failed units."""
    if ckpt is None or not ckpt.is_done(key):
        return None
    payload = ckpt.get(key)
    if retry_failed and payload_failed(payload):
        return None
    return payload
