"""Resilient execution layer: errors, budgets, isolation, checkpoints.

Every solver and harness entry point runs through this subsystem:

* :mod:`repro.runtime.errors` — the structured exception taxonomy
  (:class:`ReproError` and friends);
* :mod:`repro.runtime.budget` — cooperative :class:`Budget` /
  :class:`Deadline` objects checked at solver loop heads;
* :mod:`repro.runtime.isolation` — :func:`run_isolated`, the
  per-benchmark fault boundary used by the table/sweep drivers;
* :mod:`repro.runtime.checkpoint` — JSON :class:`Checkpoint` files
  behind the CLI's ``--resume``;
* :mod:`repro.runtime.faults` — deterministic fault injection used by
  the robustness test-suite (and ``REPRO_FAULTS`` for operators).

This package is a leaf: it imports nothing from the rest of
:mod:`repro`, so any solver may depend on it without cycles.
"""

from . import faults
from .budget import Budget, Deadline
from .checkpoint import Checkpoint, payload_failed, resumable
from .errors import (
    BudgetExceeded,
    CheckpointError,
    InfeasibleError,
    InvalidSpecError,
    InvariantViolation,
    ParseError,
    ReproError,
    SolverTimeout,
)
from .isolation import Outcome, classify_failure, run_isolated

__all__ = [
    "Budget",
    "Deadline",
    "Checkpoint",
    "BudgetExceeded",
    "CheckpointError",
    "InfeasibleError",
    "InvalidSpecError",
    "InvariantViolation",
    "ParseError",
    "ReproError",
    "SolverTimeout",
    "Outcome",
    "classify_failure",
    "run_isolated",
    "payload_failed",
    "resumable",
    "faults",
]
