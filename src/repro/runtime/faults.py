"""Deterministic fault injection for robustness tests.

Solvers and harness drivers call :func:`trip` at named sites
("exact.node", "enc.minimize", "table1.row", ...).  In normal runs the
call is a no-op guarded by one module-level flag.  Tests (or an
operator, via the ``REPRO_FAULTS`` environment variable) *arm* a fault
at a site, optionally scoped to a key (e.g. one benchmark name) and to
the N-th visit, and the next matching trip raises the armed exception
— which proves the degradation path end to end without monkeypatching
solver internals.

Typical use::

    from repro.runtime import SolverTimeout, faults

    with faults.inject("enc.minimize", SolverTimeout):
        report = run_table1(["lion9", "ex3"])   # one ENC cell times out
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type, Union

from .errors import (
    BudgetExceeded,
    InvalidSpecError,
    ParseError,
    ReproError,
    SolverTimeout,
)

__all__ = [
    "arm",
    "disarm",
    "reset",
    "trip",
    "inject",
    "install_from_env",
    "active",
]

ExcSpec = Union[BaseException, Type[BaseException]]

#: exception kinds accepted by the ``REPRO_FAULTS`` environment variable
ENV_KINDS: Dict[str, Type[BaseException]] = {
    "timeout": SolverTimeout,
    "budget": BudgetExceeded,
    "error": ReproError,
}


@dataclass
class Fault:
    """One armed fault; see :func:`arm` for the field semantics."""

    site: str
    exc: ExcSpec
    key: Optional[str] = None
    after: int = 1
    times: Optional[int] = 1
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def matches(self, key: Optional[str]) -> bool:
        return self.key is None or self.key == key

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def make(self) -> BaseException:
        if isinstance(self.exc, BaseException):
            return self.exc
        return self.exc(f"injected fault at {self.site}")


_registry: Dict[str, List[Fault]] = {}
_enabled = False


def arm(
    site: str,
    exc: ExcSpec,
    *,
    key: Optional[str] = None,
    after: int = 1,
    times: Optional[int] = 1,
) -> Fault:
    """Arm ``exc`` at ``site``.

    ``key`` scopes the fault to trips carrying that key (a benchmark
    name, usually); ``after`` fires it on the N-th matching trip;
    ``times`` bounds how often it fires (``None`` = every time).
    """
    global _enabled
    if not site:
        raise InvalidSpecError("fault site must be a non-empty string")
    if after < 1:
        # classified (and still a ValueError) so an operator typo in
        # REPRO_FAULTS dies as a one-line CLI diagnostic, not a trace
        raise InvalidSpecError("after must be >= 1")
    fault = Fault(site=site, exc=exc, key=key, after=after, times=times)
    _registry.setdefault(site, []).append(fault)
    _enabled = True
    return fault


def disarm(fault: Fault) -> None:
    """Remove one armed fault (missing faults are ignored)."""
    global _enabled
    faults = _registry.get(fault.site)
    if faults and fault in faults:
        faults.remove(fault)
        if not faults:
            del _registry[fault.site]
    _enabled = bool(_registry)


def reset() -> None:
    """Disarm everything."""
    global _enabled
    _registry.clear()
    _enabled = False


def active() -> List[Fault]:
    """All currently armed faults."""
    return [f for faults in _registry.values() for f in faults]


def trip(site: str, key: Optional[str] = None) -> None:
    """Raise the armed fault for ``site``/``key``, if any.

    Instrumented call sites invoke this at loop heads / entry points;
    with nothing armed it is a single boolean test.
    """
    if not _enabled:
        return
    for fault in _registry.get(site, ()):
        if not fault.matches(key) or fault.exhausted():
            continue
        fault.hits += 1
        if fault.hits < fault.after:
            continue
        fault.fired += 1
        raise fault.make()


@contextmanager
def inject(
    site: str,
    exc: ExcSpec,
    *,
    key: Optional[str] = None,
    after: int = 1,
    times: Optional[int] = 1,
) -> Iterator[Fault]:
    """Context manager: arm on entry, disarm on exit."""
    fault = arm(site, exc, key=key, after=after, times=times)
    try:
        yield fault
    finally:
        disarm(fault)


def install_from_env(var: str = "REPRO_FAULTS") -> List[Fault]:
    """Arm faults described by an environment variable.

    Format: comma-separated ``site[@key]=kind[:after]`` entries with
    ``kind`` one of ``timeout`` / ``budget`` / ``error``, e.g.::

        REPRO_FAULTS="table1.row@lion9=timeout" picola table1 --quick

    Unset or empty means no-op.  Malformed entries raise
    :class:`ParseError` (a ``ValueError``) so typos fail loudly — as
    a one-line CLI diagnostic — rather than silently disabling the
    injection.
    """
    spec = os.environ.get(var, "").strip()
    if not spec:
        return []
    installed: List[Fault] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ParseError(f"bad fault spec {entry!r} in ${var}")
        target, _, kind = entry.partition("=")
        after = 1
        if ":" in kind:
            kind, _, after_text = kind.partition(":")
            try:
                after = int(after_text)
            except ValueError:
                raise ParseError(
                    f"bad fault count {after_text!r} in ${var}"
                ) from None
            if after < 1:
                raise ParseError(
                    f"bad fault count {after!r} in ${var} (must be >= 1)"
                )
        if kind not in ENV_KINDS:
            raise ParseError(
                f"bad fault kind {kind!r} in ${var}; "
                f"choose from {sorted(ENV_KINDS)}"
            )
        site, _, key = target.partition("@")
        if not site:
            raise ParseError(
                f"bad fault spec {entry!r} in ${var} (empty site)"
            )
        installed.append(
            arm(site, ENV_KINDS[kind], key=key or None, after=after)
        )
    return installed
