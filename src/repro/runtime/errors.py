"""Structured error taxonomy for the reproduction.

Every failure mode the harness knows how to degrade gracefully derives
from :class:`ReproError`, so boundary code (the CLI, the per-benchmark
isolation in :mod:`repro.harness`) can catch one base class instead of
guessing which builtin a solver happened to raise.

The concrete classes double-inherit from the builtin exception each
condition historically raised (``ValueError`` for malformed input,
``RuntimeError`` for exhausted budgets), so pre-existing call sites
that catch the builtin keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "InvalidSpecError",
    "InfeasibleError",
    "InvariantViolation",
    "BudgetExceeded",
    "SolverTimeout",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class of every structured failure in this package."""


class ParseError(ReproError, ValueError):
    """Malformed input text (KISS2, PLA, cube strings, ...)."""


class InvalidSpecError(ReproError, ValueError):
    """A problem specification or solver option is invalid (bad
    variant name, inconsistent widths, duplicate symbols, ...).

    Distinct from :class:`ParseError` (malformed *text*) and
    :class:`InfeasibleError` (well-formed but unsolvable)."""


class InfeasibleError(ReproError, ValueError):
    """The requested problem has no solution (e.g. code length too
    small to distinguish the symbols)."""


class InvariantViolation(ReproError, RuntimeError):
    """An internal solver invariant broke mid-run — a bug in this
    package, not in the caller's input.  Raised instead of a bare
    ``RuntimeError`` so harness isolation reports it as FAILED with
    the structured taxonomy."""


class BudgetExceeded(ReproError, RuntimeError):
    """A cooperative node/iteration budget ran out mid-search."""


class SolverTimeout(BudgetExceeded):
    """A wall-clock deadline expired mid-search.

    Subclasses :class:`BudgetExceeded` because a deadline is just the
    wall-clock flavour of a budget; callers that degrade on budget
    exhaustion degrade identically on timeouts.
    """


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or belongs to another experiment."""
