"""Command-line front end: ``picola lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean, 1 violations (with ``--strict`` also stale
baseline entries and unused suppressions), 2 usage errors (bad path,
unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline, split_by_baseline
from .engine import analyze
from .report import LintResult, render_json, render_text
from .rules import DEFAULT_RULES, RULE_CLASSES

__all__ = ["add_lint_arguments", "main", "run_lint"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"


def _package_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    return Path(__file__).resolve().parents[1]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` flags, shared by ``picola lint`` and ``-m``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze "
        "(default: the installed repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries and unused "
        "suppressions",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of accepted findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings "
        "(justifications of kept entries are preserved) and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _resolve_baseline_path(arg: Optional[str]) -> Optional[Path]:
    if arg is not None:
        return Path(arg)
    default = Path.cwd() / DEFAULT_BASELINE_NAME
    return default if default.exists() else None


def _list_rules() -> str:
    lines = []
    for cls in RULE_CLASSES:
        entry = cls.catalog_entry()
        lines.append(f"{entry['rule']}  {entry['title']}")
        lines.append(f"    scope: {', '.join(entry['scope'])}")
        lines.append(f"    {entry['rationale']}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments."""
    if args.list_rules:
        print(_list_rules())
        return 0

    if args.paths:
        roots = [Path(p) for p in args.paths]
        missing = [p for p in roots if not p.exists()]
        if missing:
            print(
                "picola lint: no such path: "
                + ", ".join(str(p) for p in missing),
                file=sys.stderr,
            )
            return 2
    else:
        roots = [_package_root()]

    baseline_path = _resolve_baseline_path(args.baseline)
    baseline: Optional[Baseline] = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"picola lint: {exc}", file=sys.stderr)
            return 2

    rules = DEFAULT_RULES()
    report = None
    for root in roots:
        part = analyze(root, rules)
        if report is None:
            report = part
        else:
            report.findings.extend(part.findings)
            report.suppressed.extend(part.suppressed)
            report.unused_suppressions.extend(
                part.unused_suppressions
            )
            report.files_checked += part.files_checked
    assert report is not None

    if args.update_baseline:
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        fresh = Baseline.from_findings(report.findings)
        if baseline is not None:
            # keep hand-written justifications of surviving entries
            kept = {
                (e.rule, e.path, e.fingerprint): e.justification
                for e in baseline.entries
            }
            for entry in fresh.entries:
                key = (entry.rule, entry.path, entry.fingerprint)
                if key in kept:
                    entry.justification = kept[key]
        fresh.save(target)
        print(
            f"wrote {target} ({len(fresh.entries)} entries); edit the "
            "justification fields before committing"
        )
        return 0

    new, matched, stale = split_by_baseline(report.findings, baseline)
    result = LintResult(
        report=report,
        new_findings=new,
        baselined=matched,
        stale_baseline=stale,
        strict=args.strict,
        baseline_path=(
            str(baseline_path) if baseline is not None else None
        ),
    )
    print(render_json(result) if args.as_json else render_text(result))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-aware static analysis: budget threading, span "
            "hygiene, the error taxonomy, determinism and registry "
            "conformance (rules RPA001-RPA007)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
