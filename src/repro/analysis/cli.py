"""Command-line front end: ``picola lint`` / ``python -m repro.analysis``.

Exit codes: 0 clean, 1 violations (with ``--strict`` also stale
baseline entries and unused suppressions), 2 usage errors (bad path,
unreadable baseline).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .baseline import Baseline, split_by_baseline
from .engine import (
    FileContext,
    Rule,
    ScanResult,
    analyze,
    iter_python_files,
    scan_file,
)
from .report import LintResult, render_github, render_json, render_text
from .rules import DEFAULT_RULES, RULE_CLASSES

__all__ = ["add_lint_arguments", "main", "run_lint"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"


def _package_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    return Path(__file__).resolve().parents[1]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` flags, shared by ``picola lint`` and ``-m``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze "
        "(default: the installed repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries and unused "
        "suppressions",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of accepted findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings "
        "(justifications of kept entries are preserved) and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the whole-program flow rules (RPA010-RPA014); "
        "per-file rules only",
    )
    parser.add_argument(
        "--graph",
        choices=("json", "text"),
        default=None,
        metavar="FORMAT",
        help="dump the whole-program call graph (json or text) "
        "instead of linting",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-file scan out over N worker processes "
        "(0 = all cores); findings are byte-identical to serial",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        dest="format",
        help="report format (github emits ::error workflow commands "
        "for inline PR annotations)",
    )
    parser.add_argument(
        "--github-prefix",
        default=None,
        metavar="DIR/",
        help="path prefix mapping finding paths onto repo-relative "
        "ones for --format github (default: derived from the scan "
        "root, e.g. src/)",
    )


def _resolve_baseline_path(arg: Optional[str]) -> Optional[Path]:
    if arg is not None:
        return Path(arg)
    default = Path.cwd() / DEFAULT_BASELINE_NAME
    return default if default.exists() else None


def _list_rules() -> str:
    lines = []
    for cls in RULE_CLASSES:
        entry = cls.catalog_entry()
        lines.append(f"{entry['rule']}  {entry['title']}")
        lines.append(f"    scope: {', '.join(entry['scope'])}")
        lines.append(f"    {entry['rationale']}")
    return "\n".join(lines)


def _scan_unit(path_str: str, rel: str) -> ScanResult:
    """Worker-side per-file scan for ``picola lint --jobs N``.

    Rebuilds the per-file rules in the worker (rule instances do not
    cross the fork) and strips the parse tree before pickling the
    result back; the parent re-parses lazily for the project-rule
    phase.  Flow rules are ProjectRules, so leaving them out here
    changes nothing — their per-file ``check`` yields no findings.
    """
    rules = DEFAULT_RULES(flow=False)
    return scan_file(Path(path_str), rel, rules).strip_tree()


def _parallel_scanner(jobs: int):
    """An ``analyze`` scanner running per-file scans on the pool.

    Results come back in submission order (the engine contract), so
    findings are byte-identical to the serial walk; a failed worker
    degrades that one file to an inline scan.
    """
    # imported lazily: the analysis engine itself must stay importable
    # without the harness (and lintable on broken trees)
    from ..harness.parallel import Unit, run_units

    def scanner(
        files: Sequence[Tuple[Path, str]], rules: Sequence[Rule]
    ) -> List[ScanResult]:
        units = [
            Unit(key=f"lint/{rel}", fn=_scan_unit, args=(str(fp), rel))
            for fp, rel in files
        ]
        results: List[ScanResult] = []
        for (fp, rel), outcome in zip(
            files, run_units(units, jobs=jobs)
        ):
            if outcome.ok and isinstance(outcome.value, ScanResult):
                results.append(outcome.value)
            else:
                results.append(scan_file(fp, rel, rules))
        return results

    return scanner


def _load_contexts(roots: Sequence[Path]) -> List[FileContext]:
    """Parse every file under ``roots`` for a ``--graph`` dump."""
    from .engine import _relative_path

    contexts: List[FileContext] = []
    for root in roots:
        for fp in iter_python_files(root):
            rel = _relative_path(fp, root)
            try:
                source = fp.read_text()
                tree = ast.parse(source, filename=str(fp))
            except (OSError, SyntaxError):
                continue  # lint reports these; the graph just skips
            contexts.append(FileContext(rel, source, tree))
    return contexts


def _dump_graph(roots: Sequence[Path], fmt: str) -> int:
    from .callgraph import build_program

    program = build_program(_load_contexts(roots))
    if fmt == "json":
        print(json.dumps(program.to_dict(), indent=2, sort_keys=True))
        return 0
    doc = program.to_dict()
    print(
        f"{len(doc['modules'])} modules, "
        f"{len(doc['functions'])} functions, "
        f"{len(doc['classes'])} classes, "
        f"{len(doc['edges'])} call edges "
        f"({doc['unresolved_calls']} unresolved)"
    )
    for edge in doc["edges"]:
        callee = edge["callee"] or f"?{edge['label']}"
        held = " [lock held]" if edge["lock_depth"] else ""
        print(f"{edge['caller']}:{edge['line']} -> {callee}{held}")
    return 0


def _github_prefix(arg: Optional[str], roots: Sequence[Path]) -> str:
    """Repo-relative prefix for annotation paths (e.g. ``src/``)."""
    if arg is not None:
        return arg
    root = roots[0]
    base = (root if root.is_dir() else root.parent).parent
    try:
        rel = base.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return ""
    return "" if rel.as_posix() == "." else rel.as_posix() + "/"


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint run from parsed arguments."""
    if args.list_rules:
        print(_list_rules())
        return 0

    if args.paths:
        roots = [Path(p) for p in args.paths]
        missing = [p for p in roots if not p.exists()]
        if missing:
            print(
                "picola lint: no such path: "
                + ", ".join(str(p) for p in missing),
                file=sys.stderr,
            )
            return 2
    else:
        roots = [_package_root()]

    if getattr(args, "graph", None):
        return _dump_graph(roots, args.graph)

    baseline_path = _resolve_baseline_path(args.baseline)
    baseline: Optional[Baseline] = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"picola lint: {exc}", file=sys.stderr)
            return 2

    rules = DEFAULT_RULES(flow=not getattr(args, "no_flow", False))
    scanner = None
    if getattr(args, "jobs", 1) != 1:
        scanner = _parallel_scanner(args.jobs)
    report = None
    for root in roots:
        part = analyze(root, rules, scanner=scanner)
        if report is None:
            report = part
        else:
            report.findings.extend(part.findings)
            report.suppressed.extend(part.suppressed)
            report.unused_suppressions.extend(
                part.unused_suppressions
            )
            report.files_checked += part.files_checked
    assert report is not None

    if args.update_baseline:
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        fresh = Baseline.from_findings(report.findings)
        if baseline is not None:
            # keep hand-written justifications of surviving entries
            kept = {
                (e.rule, e.path, e.fingerprint): e.justification
                for e in baseline.entries
            }
            for entry in fresh.entries:
                key = (entry.rule, entry.path, entry.fingerprint)
                if key in kept:
                    entry.justification = kept[key]
        fresh.save(target)
        print(
            f"wrote {target} ({len(fresh.entries)} entries); edit the "
            "justification fields before committing"
        )
        return 0

    new, matched, stale = split_by_baseline(report.findings, baseline)
    result = LintResult(
        report=report,
        new_findings=new,
        baselined=matched,
        stale_baseline=stale,
        strict=args.strict,
        baseline_path=(
            str(baseline_path) if baseline is not None else None
        ),
    )
    fmt = "json" if args.as_json else getattr(args, "format", "text")
    if fmt == "json":
        print(render_json(result))
    elif fmt == "github":
        prefix = _github_prefix(
            getattr(args, "github_prefix", None), roots
        )
        print(render_github(result, prefix))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-aware static analysis: budget threading, span "
            "hygiene, the error taxonomy, determinism, registry "
            "conformance and the whole-program concurrency/fork-"
            "safety flow rules (rules RPA001-RPA014)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
