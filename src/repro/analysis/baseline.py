"""Committed baselines: accepted findings with justifications.

A baseline lets the linter gate *new* violations while known ones are
paid down: each entry pins one finding by ``(rule, path,
fingerprint)`` — the fingerprint hashes the offending source line, so
entries survive pure line-number drift but die with the code they
excuse.  Every entry must carry a ``justification``; ``--strict``
fails on entries no finding matches any more (stale debt must be
deleted, not hoarded).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Finding

__all__ = ["Baseline", "BaselineEntry", "split_by_baseline"]

FORMAT_VERSION = 1


@dataclass
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    justification: str
    line: int = 0  # informational; matching ignores it
    #: path-free hash (rule + source line); lets the stale-entry pass
    #: follow a finding across a file move instead of reporting the
    #: move as a stale entry plus a new finding
    content: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.fingerprint == finding.fingerprint
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "fingerprint": self.fingerprint,
            "content": self.content,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"unreadable baseline {path}: {exc}"
            ) from exc
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version "
                f"{data.get('version')!r} (expected {FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=e["rule"],
                path=e["path"],
                fingerprint=e["fingerprint"],
                justification=e.get("justification", ""),
                line=int(e.get("line", 0)),
                content=e.get("content", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": [
                e.to_dict()
                for e in sorted(
                    self.entries,
                    key=lambda e: (e.path, e.rule, e.fingerprint),
                )
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        justification: str = "baselined pre-existing finding; "
        "fix before extending this code",
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    fingerprint=f.fingerprint,
                    justification=justification,
                    line=f.line,
                    content=f.content_fingerprint,
                )
                for f in findings
            ]
        )


def split_by_baseline(
    findings: Sequence[Finding], baseline: Optional[Baseline]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Partition into (new, baselined) and report stale entries."""
    if baseline is None:
        return list(findings), [], []
    new: List[Finding] = []
    matched: List[Finding] = []
    used: set = set()
    for finding in findings:
        hit = None
        for i, entry in enumerate(baseline.entries):
            if entry.matches(finding):
                hit = i
                break
        if hit is None:
            new.append(finding)
        else:
            used.add(hit)
            matched.append(finding)
    stale = [
        entry
        for i, entry in enumerate(baseline.entries)
        if i not in used
    ]

    # move tracking: a finding whose file moved shows up as a "new"
    # finding plus a "stale" entry at the old path with the same
    # path-free content hash — pair them when the pairing is an
    # unambiguous one-to-one match (anything ambiguous stays new +
    # stale, the conservative report)
    if new and stale:
        new_by_content: Dict[str, List[Finding]] = {}
        for finding in new:
            key = f"{finding.rule}:{finding.content_fingerprint}"
            new_by_content.setdefault(key, []).append(finding)
        stale_by_content: Dict[str, List[BaselineEntry]] = {}
        for entry in stale:
            if not entry.content:
                continue  # pre-1.7.0 entry: no move tracking
            stale_by_content.setdefault(
                f"{entry.rule}:{entry.content}", []
            ).append(entry)
        moved_findings: set = set()
        moved_entries: set = set()
        for key, candidates in new_by_content.items():
            partners = stale_by_content.get(key, [])
            if len(candidates) == 1 and len(partners) == 1:
                moved_findings.add(id(candidates[0]))
                moved_entries.add(id(partners[0]))
                matched.append(candidates[0])
        if moved_findings:
            new = [f for f in new if id(f) not in moved_findings]
            stale = [e for e in stale if id(e) not in moved_entries]
    return new, matched, stale
