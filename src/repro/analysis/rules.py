"""The rule pack: this repository's invariants as ``RPAxxx`` checks.

Each rule encodes one convention PRs 1-3 threaded through the solvers
(cooperative budgets, span hygiene, the :mod:`repro.runtime.errors`
taxonomy, determinism, registry conformance).  Nothing here imports
solver code — the rules inspect the AST only, so they run on trees
that do not import.

The catalog with rationales is rendered by ``picola lint
--list-rules`` and mirrored in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import FileContext, Finding, ProjectRule, Rule
from .flow import FLOW_RULE_CLASSES

__all__ = ["DEFAULT_RULES", "RULE_CLASSES", "rules_by_id"]

#: the packages holding solver kernels (budget/determinism scope)
KERNEL_PACKAGES = (
    "repro/core/",
    "repro/encoding/",
    "repro/espresso/",
    "repro/baselines/",
)

#: where raising builtin exceptions is banned (ReproError taxonomy)
TAXONOMY_PACKAGES = KERNEL_PACKAGES + (
    "repro/cubes/",
    "repro/fsm/",
    "repro/stateassign/",
)

#: determinism scope: the kernels plus the replay-critical generators
#: (fsm simulation/synthesis and the fuzz subsystem promise that every
#: run is a pure function of its recorded seeds)
DETERMINISM_PACKAGES = KERNEL_PACKAGES + (
    "repro/fsm/",
    "repro/fuzz/",
)

#: functions whose invocation marks a loop as "doing solver work"
KERNEL_CALLS = frozenset(
    {
        "espresso",
        "espresso_pla",
        "exact_minimize",
        "expand",
        "expand_cube",
        "reduce_cover",
        "reduce_cube",
        "irredundant",
        "complement",
        "tautology",
        "cubes_for_constraint",
        "candidate_columns",
        "classify",
        "polish_encoding",
        "minimize_symbolic",
    }
)

#: parameter/variable names treated as cooperative budget handles
BUDGET_NAMES = ("budget", "deadline")


def _call_name(node: ast.Call) -> Optional[str]:
    """The bare function name of a call, if syntactically obvious."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_kernel_call(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Name):
        return False
    name = node.func.id
    return name in KERNEL_CALLS or (
        name.endswith("_encode") and not name.startswith("_")
    )


class BudgetThreadingRule(Rule):
    """RPA001 — kernel loops must tick a reachable Budget/Deadline."""

    rule_id = "RPA001"
    title = "budget-threading: kernel loop never ticks its budget"
    rationale = """
        PICOLA, espresso and the baselines are cooperative: a loop that
        calls solver kernels without ticking the in-scope Budget (or
        forwarding it to the callee) can run unbounded, silently
        defeating --timeout and the harness fault isolation (PR 1).
    """
    scope = KERNEL_PACKAGES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan_body(ctx, ctx.tree, frozenset())

    def _scan_body(
        self,
        ctx: FileContext,
        node: ast.AST,
        budget_names: frozenset,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                inherited = budget_names | self._bound_budgets(child)
                yield from self._scan_body(ctx, child, inherited)
            elif isinstance(child, (ast.For, ast.While)):
                if budget_names and not self._loop_is_covered(
                    child, budget_names
                ):
                    if self._calls_kernel(child):
                        yield ctx.finding(
                            self,
                            child,
                            "loop calls solver kernels but neither "
                            "ticks nor forwards the in-scope budget "
                            f"({', '.join(sorted(budget_names))}); "
                            "add budget.tick()/budget.check() at the "
                            "loop head or pass the budget down",
                        )
                yield from self._scan_body(ctx, child, budget_names)
            else:
                yield from self._scan_body(ctx, child, budget_names)

    @staticmethod
    def _bound_budgets(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Set[str]:
        names: Set[str] = set()
        args = fn.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            if arg.arg in BUDGET_NAMES:
                names.add(arg.arg)
        return names

    @staticmethod
    def _calls_kernel(loop: ast.AST) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and _is_kernel_call(node):
                return True
        return False

    @staticmethod
    def _loop_is_covered(
        loop: ast.AST, budget_names: frozenset
    ) -> bool:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("tick", "check")
                and isinstance(func.value, ast.Name)
                and func.value.id in budget_names
            ):
                return True
            for value in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if (
                    isinstance(value, ast.Name)
                    and value.id in budget_names
                ):
                    return True
        return False


class SpanHygieneRule(Rule):
    """RPA002 — ``tracer.span(...)`` only as a ``with`` context."""

    rule_id = "RPA002"
    title = "span hygiene: span() used outside a with statement"
    rationale = """
        A span stored in a variable can be entered late, twice, or
        never exited on an exception path, corrupting the span stack
        and the per-phase histograms; `with tracer.span(...):` makes
        closure structural.
    """
    exempt = ("repro/obs/",)  # the framework defining span()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        allowed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    allowed.add(id(item.context_expr))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in allowed
            ):
                yield ctx.finding(
                    self,
                    node,
                    "span() must be used directly as a context "
                    "manager (`with tracer.span(...):`), not stored "
                    "or left open",
                )


class ExceptHygieneRule(Rule):
    """RPA003 — no silently swallowed broad exception handlers."""

    rule_id = "RPA003"
    title = "error taxonomy: broad except swallows failures"
    rationale = """
        A bare `except:` / `except Exception:` that does not re-raise
        hides BudgetExceeded, SolverTimeout and genuine bugs from the
        harness fault isolation, turning TIMEOUT/FAILED cells into
        silently wrong numbers.  Catch a ReproError subclass or
        re-raise.
    """

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if any(
                isinstance(inner, ast.Raise)
                for stmt in node.body
                for inner in ast.walk(stmt)
            ):
                continue  # converts/re-raises: a legitimate boundary
            label = broad if broad != "bare" else "bare except:"
            yield ctx.finding(
                self,
                node,
                f"broad handler ({label}) swallows the failure; "
                "catch a repro.runtime.errors class or re-raise",
            )

    def _broad_name(self, type_node) -> Optional[str]:
        if type_node is None:
            return "bare"
        if (
            isinstance(type_node, ast.Name)
            and type_node.id in self._BROAD
        ):
            return type_node.id
        if isinstance(type_node, ast.Tuple):
            for elt in type_node.elts:
                name = self._broad_name(elt)
                if name not in (None, "bare"):
                    return name
        return None


class RaiseTaxonomyRule(Rule):
    """RPA004 — solver modules raise ReproError, not builtins."""

    rule_id = "RPA004"
    title = "error taxonomy: builtin exception raised from solver code"
    rationale = """
        The CLI and per-benchmark isolation degrade gracefully only on
        ReproError; a bare ValueError/RuntimeError escaping a solver
        bypasses the taxonomy.  Use ParseError, InfeasibleError,
        InvalidSpecError, InvariantViolation or another
        repro.runtime.errors class (each doubles as the builtin it
        replaces, so callers keep working).
    """
    scope = TAXONOMY_PACKAGES

    _BANNED = ("ValueError", "RuntimeError", "Exception")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call) and isinstance(
                exc.func, ast.Name
            ):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BANNED:
                yield ctx.finding(
                    self,
                    node,
                    f"raise of builtin {name} from a solver module; "
                    "use the repro.runtime.errors taxonomy "
                    "(ParseError / InfeasibleError / InvalidSpecError "
                    "/ InvariantViolation / ...)",
                )


class DeterminismRule(Rule):
    """RPA005 — no hidden nondeterminism in encoding kernels."""

    rule_id = "RPA005"
    title = "determinism: unseeded randomness or order-dependent sets"
    rationale = """
        Encoding comparisons (Tables I/II, the sweep, the regression
        gate) are only reproducible if every kernel is a pure function
        of its inputs and seeds: module-level random, wall-clock
        branching and iterating a bare set (its order varies with
        PYTHONHASHSEED) all break replay.  Seed a random.Random, and
        sorted() any set before iterating.
    """
    scope = DETERMINISM_PACKAGES

    _RANDOM_FNS = frozenset(
        {
            "random",
            "randint",
            "randrange",
            "choice",
            "choices",
            "shuffle",
            "sample",
            "uniform",
            "getrandbits",
        }
    )
    _CLOCK = {
        "time": ("time", "time_ns"),
        "datetime": ("now", "utcnow", "today"),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.For):
                yield from self._check_iter(ctx, node, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iter(ctx, node.iter, node.iter)

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            return
        owner, attr = func.value.id, func.attr
        if owner == "random" and attr in self._RANDOM_FNS:
            yield ctx.finding(
                self,
                node,
                f"module-level random.{attr}() is unseeded; use a "
                "random.Random(seed) instance threaded through the "
                "solver",
            )
        elif attr in self._CLOCK.get(owner, ()):
            yield ctx.finding(
                self,
                node,
                f"wall-clock {owner}.{attr}() in a kernel makes runs "
                "irreproducible; clocks belong to Deadline/Tracer "
                "seams only",
            )

    def _check_iter(
        self, ctx: FileContext, at, iter_node
    ) -> Iterator[Finding]:
        if isinstance(iter_node, (ast.Set, ast.SetComp)) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        ):
            yield ctx.finding(
                self,
                at,
                "iteration order of a bare set depends on "
                "PYTHONHASHSEED; wrap it in sorted() to keep column "
                "and intruder choices deterministic",
            )


class RegistryConformanceRule(ProjectRule):
    """RPA006 — every public ``*_encode`` is behind the registry."""

    rule_id = "RPA006"
    title = "registry conformance: encoder missing from repro.solvers"
    rationale = """
        The harness, assign_states and the CLI dispatch through
        repro.solvers; an encoder not registered there (or without the
        uniform keyword-only budget=/tracer= seam) silently escapes
        budgets, tracing and the option-validation contract.
    """
    scope = ("repro/core/", "repro/encoding/", "repro/baselines/")

    _REGISTRY_PATH = "repro/solvers.py"

    def finalize(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        encoders: List[Tuple[FileContext, ast.FunctionDef]] = []
        for ctx in contexts:
            for node in ctx.tree.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name.endswith("_encode")
                    and not node.name.startswith("_")
                ):
                    encoders.append((ctx, node))

        for ctx, fn in encoders:
            kwonly = {a.arg for a in fn.args.kwonlyargs}
            missing = {"budget", "tracer"} - kwonly
            if missing:
                yield ctx.finding(
                    self,
                    fn,
                    f"{fn.name}() lacks keyword-only "
                    f"{sorted(missing)}; every registered encoder "
                    "must accept budget= and tracer=",
                )

        registry = self._registry_names()
        if registry is None:
            return  # partial scan without solvers.py: skip the check
        for ctx, fn in encoders:
            if fn.name not in registry:
                yield ctx.finding(
                    self,
                    fn,
                    f"{fn.name}() is not referenced by repro.solvers; "
                    "register it (or its adapter) so the harness can "
                    "dispatch to it uniformly",
                )

    def __init__(self) -> None:
        self._all_contexts: Sequence[FileContext] = ()

    # finalize() only receives in-scope contexts; the engine hands the
    # registry file over via this hook before finalizing.
    def see_everything(
        self, contexts: Sequence[FileContext]
    ) -> None:
        self._all_contexts = contexts

    def _registry_names(self) -> Optional[Set[str]]:
        for ctx in self._all_contexts:
            if ctx.path == self._REGISTRY_PATH:
                return {
                    node.id
                    for node in ast.walk(ctx.tree)
                    if isinstance(node, ast.Name)
                }
        return None


class DeprecatedPositionalNvRule(Rule):
    """RPA007 — no internal callers of the deprecated positional nv."""

    rule_id = "RPA007"
    title = "removed call: positional nv to exact_encode/nova_encode"
    rationale = """
        Positional nv on exact_encode/nova_encode was deprecated in
        1.1.0 and raises TypeError since 1.6.0; internal code must
        pass nv= by keyword (or go through the registry), so any
        remaining positional call is a guaranteed runtime crash.
    """

    _TARGETS = ("exact_encode", "nova_encode")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) in self._TARGETS
                and len(node.args) >= 2
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{_call_name(node)}() called with positional nv "
                    "(deprecated since 1.1.0); pass nv=... or use "
                    "get_solver(...)",
                )


class BulkKernelRule(Rule):
    """RPA008 — bulk-kernel modules stay columnar."""

    rule_id = "RPA008"
    title = "bulk kernel: per-cube Python loop or wrapper allocation"
    rationale = """
        Modules marked ``__bulk_kernel__ = True`` are the hot paths
        rewritten onto the packed word-matrix kernel (PR 6): their
        whole speedup comes from replacing per-cube Python loops with
        single bulk primitives.  A `for cube in cover:` loop or a
        Cover()/Cube() wrapper allocation sneaking back in silently
        reverts the module to scalar speed on both backends.  Loop
        over index lists (`for idx in order:`) or call a kernel
        primitive instead.
    """

    _WRAPPERS = ("Cover", "Cube")
    #: iteration wrappers looked through before classifying the iterable
    _UNWRAP = frozenset({"enumerate", "sorted", "reversed", "list", "tuple"})
    #: variable names conventionally holding covers / cube lists
    _COVER_NAMES = frozenset(
        {
            "cover",
            "cubes",
            "onset",
            "dcset",
            "off",
            "offset",
            "primes",
            "care",
            "rest",
            "pieces",
            "branch",
            "comp",
            "cofactored",
            "expanded",
            "merged",
            "lowered",
            "result",
            "keep",
            "packed",
        }
    )
    #: calls whose return value is a cover (iterating one is a scalar loop)
    _COVER_PRODUCERS = frozenset(
        {
            "complement",
            "complement_packed",
            "cube_complement",
            "sharp",
            "absorb",
            "unpack",
            "espresso",
            "expand",
            "reduce_cover",
            "irredundant",
            "make_sparse",
            "lower_outputs",
            "raise_inputs",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._is_marked(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._WRAPPERS
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{node.func.id}() wrapper allocated inside a "
                    "bulk-kernel module; hot paths work on packed "
                    "covers and bare ints only",
                )
            elif isinstance(node, ast.For):
                yield from self._check_iter(ctx, node, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iter(ctx, node.iter, node.iter)

    @staticmethod
    def _is_marked(tree: ast.Module) -> bool:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "__bulk_kernel__"
                        and isinstance(node.value, ast.Constant)
                        and bool(node.value.value)
                    ):
                        return True
        return False

    def _check_iter(
        self, ctx: FileContext, at, iter_node
    ) -> Iterator[Finding]:
        expr = iter_node
        while (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in self._UNWRAP
            and expr.args
        ):
            expr = expr.args[0]
        label = self._cover_label(expr)
        if label is not None:
            yield ctx.finding(
                self,
                at,
                f"per-cube Python loop over {label} in a bulk-kernel "
                "module; replace it with a bulk primitive "
                "(contains/void masks, folds, cofactors) or iterate "
                "an index list",
            )

    def _cover_label(self, expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            name = expr.id
            if (
                name in self._COVER_NAMES
                or name.endswith("cubes")
                or name.endswith("cover")
            ):
                return f"cover {name!r}"
        elif isinstance(expr, ast.Attribute):
            if expr.attr == "cubes" or expr.attr in self._COVER_NAMES:
                return f"cover attribute '.{expr.attr}'"
        elif isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in self._COVER_PRODUCERS:
                return f"cover-producing call {name}()"
        return None


class ServicePayloadRule(Rule):
    """RPA009 — the service layer speaks EncodeRequest/EncodeResponse."""

    rule_id = "RPA009"
    title = "service layer: ad-hoc payload or direct *_encode call"
    rationale = """
        repro.service and repro.api exist so every encode crosses one
        typed boundary: requests are EncodeRequest, results are
        EncodeResponse, and solvers are reached through the registry.
        A handler returning a hand-rolled dict payload, or a service
        module calling picola_encode/nova_encode/... directly, forks
        the wire format and skips the budget/tracing/classification
        guarantees the boundary provides.
    """

    scope = ("repro/service", "repro/api.py")

    #: function-name prefixes that produce request/response payloads;
    #: these must build the dataclasses, never bare dict literals
    _PAYLOAD_PREFIXES = (
        "encode", "execute", "dispatch", "handle", "submit",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                # leading underscore = a module-private helper, not a
                # legacy solver entry point (those are all public)
                if (
                    name
                    and name.endswith("_encode")
                    and not name.startswith("_")
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"service code calls {name}() directly; go "
                        "through get_solver(...).solve(...) via "
                        "repro.service.dispatch.execute",
                    )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith(self._PAYLOAD_PREFIXES):
                yield from self._check_returns(ctx, node)

    def _check_returns(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Dict
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{func.name}() returns an ad-hoc dict payload; "
                    "construct an EncodeRequest/EncodeResponse (or "
                    "call .to_dict() on one) so the wire format "
                    "cannot fork",
                )


#: per-file rules (safe to run file-by-file, in-process or in workers)
FILE_RULE_CLASSES: Tuple[type, ...] = (
    BudgetThreadingRule,
    SpanHygieneRule,
    ExceptHygieneRule,
    RaiseTaxonomyRule,
    DeterminismRule,
    RegistryConformanceRule,
    DeprecatedPositionalNvRule,
    BulkKernelRule,
    ServicePayloadRule,
)

#: the full pack: per-file rules plus the whole-program flow rules
#: (RPA010-RPA014, built on the repro.analysis.callgraph layer)
RULE_CLASSES: Tuple[type, ...] = FILE_RULE_CLASSES + FLOW_RULE_CLASSES


def DEFAULT_RULES(*, flow: bool = True) -> List[Rule]:
    """Fresh instances of the rule pack.

    ``flow=False`` drops the whole-program rules (the ``picola lint
    --no-flow`` escape hatch for quick per-file runs).
    """
    classes = RULE_CLASSES if flow else FILE_RULE_CLASSES
    return [cls() for cls in classes]


def rules_by_id() -> Dict[str, type]:
    return {cls.rule_id: cls for cls in RULE_CLASSES}
