"""Flow rules RPA010–RPA014: concurrency and fork safety, proved
whole-program on the :mod:`repro.analysis.callgraph` layer.

Each rule is a :class:`~repro.analysis.engine.ProjectRule`: the engine
hands it every scanned file, one :class:`~repro.analysis.callgraph.Program`
is built (and shared — the builder caches on the context list), and
findings come out anchored to real source locations, so baselines and
``# repro: noqa`` suppressions work exactly as for the per-file rules.

The rules are deliberately conservative: an unresolved call is never
evidence, an unknown type never counts as a lock or as fork-unsafe,
and a function every caller enters with a lock held counts as guarded
(the ``always-locked`` fixpoint), so helper methods factored out of a
``with self._lock:`` block do not trip RPA010.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    FORK_UNSAFE_TAGS,
    SYNCHRONIZED_TAGS,
    ClassInfo,
    FunctionInfo,
    Program,
    build_program,
)
from .engine import FileContext, Finding, ProjectRule

__all__ = [
    "FLOW_RULE_CLASSES",
    "BudgetFlowRule",
    "CacheCoherenceRule",
    "ForkCaptureRule",
    "LockBlockingRule",
    "SharedStateRule",
    "program_for",
    "thread_roots",
]

# one-slot program cache: every flow rule in one analyze() run receives
# the same context list object-for-object, so the program is built once
_cache_contexts: Optional[Tuple[FileContext, ...]] = None
_cache_program: Optional[Program] = None


def program_for(contexts: Sequence[FileContext]) -> Program:
    """Build (or reuse) the whole-program view for this context list."""
    global _cache_contexts, _cache_program
    frozen = tuple(contexts)
    if (
        _cache_program is not None
        and _cache_contexts is not None
        and len(frozen) == len(_cache_contexts)
        and all(a is b for a, b in zip(frozen, _cache_contexts))
    ):
        return _cache_program
    program = build_program(frozen)
    _cache_contexts = frozen
    _cache_program = program
    return program


def thread_roots(program: Program) -> Dict[str, str]:
    """Thread entry points: ``{function qual: why it is a root}``.

    Roots are ``run`` methods of ``threading.Thread`` subclasses,
    ``do_*`` handlers of HTTP request-handler subclasses, and every
    callable handed to ``Thread(target=...)``.  Process-pool payloads
    (``executor.submit`` / :class:`repro.harness.parallel.Unit`) run
    in forked children with no shared memory, so they only become
    roots when the *spawning* function is itself on a thread path —
    the pool degrades to serial execution on the submitter's thread,
    so those payloads can run concurrently after all.  Computed as a
    fixpoint over the call graph.
    """
    roots: Dict[str, str] = {}
    for qual in sorted(program.classes):
        cls = program.classes[qual]
        if program.is_threadlike(qual):
            run = program.lookup_method(cls, "run")
            if run is not None:
                roots.setdefault(run.qual, f"thread class {cls.name}")
        if program.is_handlerlike(qual):
            for name in sorted(cls.methods):
                if name.startswith("do_"):
                    roots.setdefault(
                        cls.methods[name].qual,
                        f"request handler {cls.name}.{name}",
                    )
    for qual in sorted(program.functions):
        for spawn in program.functions[qual].spawns:
            if spawn.kind != "thread":
                continue
            for target in spawn.targets:
                roots.setdefault(
                    target, f"thread target spawned by {qual}"
                )
    while True:
        closure = program.reachable(sorted(roots))
        added = False
        for qual in sorted(closure):
            for spawn in program.functions[qual].spawns:
                if spawn.kind not in ("submit", "unit"):
                    continue
                for target in spawn.targets:
                    if target not in roots:
                        roots[target] = (
                            f"{spawn.kind} target spawned on a "
                            f"thread path by {qual}"
                        )
                        added = True
        if not added:
            return roots


def always_locked(program: Program) -> Set[str]:
    """Functions whose *every* resolved call site holds a lock.

    Greatest fixpoint over the call graph: a function with no callers
    is never always-locked (it could be an entry point), and a cycle
    only stays locked if some lock-holding site feeds it.
    """
    incoming = program.incoming()
    locked: Dict[str, bool] = {
        qual: bool(incoming.get(qual)) for qual in program.functions
    }
    changed = True
    while changed:
        changed = False
        for qual in sorted(program.functions):
            if not locked[qual]:
                continue
            ok = all(
                site.lock_depth > 0 or locked.get(site.caller, False)
                for site in incoming.get(qual, [])
            )
            if not ok:
                locked[qual] = False
                changed = True
    return {qual for qual, flag in locked.items() if flag}


class _FlowRule(ProjectRule):
    """Shared plumbing: receive every context, emit scoped findings."""

    def __init__(self) -> None:
        self._contexts: Tuple[FileContext, ...] = ()

    def see_everything(
        self, contexts: Sequence[FileContext]
    ) -> None:
        self._contexts = tuple(contexts)

    def finalize(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        program = program_for(self._contexts)
        scoped = {ctx.path for ctx in contexts}
        emitted: Set[Tuple[str, int, int, str]] = set()
        for finding in self.check_program(program):
            key = (finding.path, finding.line, finding.col, finding.message)
            if finding.path in scoped and key not in emitted:
                emitted.add(key)
                yield finding

    def check_program(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(
        self, program: Program, path: str, node: ast.AST, message: str
    ) -> Optional[Finding]:
        ctx = program.contexts_by_path.get(path)
        if ctx is None:
            return None
        return ctx.finding(self, node, message)


class SharedStateRule(_FlowRule):
    """RPA010 — shared mutable state reachable from threads is locked."""

    rule_id = "RPA010"
    title = "concurrency: unlocked shared mutable state on a thread path"
    rationale = """
        `picola serve` runs handler threads, a batching thread and the
        process-pool feeder against shared objects; a mutation of a
        module-level global or of an attribute on a lock-owning class
        performed without that lock is a data race (lost counter
        updates, dicts resized mid-iteration).  Mutate under the
        object's lock, make the state immutable, or route it through
        an internally synchronized structure (queue / Event /
        threading.local).
    """

    def check_program(self, program: Program) -> Iterator[Finding]:
        roots = thread_roots(program)
        closure = program.reachable(sorted(roots))
        locked = always_locked(program)

        # arm A: module-global mutation on a thread-reachable path
        for qual in sorted(closure):
            fn = program.functions[qual]
            if qual in locked:
                continue
            for site in fn.mutations:
                if site.kind != "global" or site.lock_depth > 0:
                    continue
                found = self._finding(
                    program,
                    fn.path,
                    site.node,
                    f"{qual}() mutates module global "
                    f"'{site.name}' without a lock, and is reachable "
                    "from a thread entry point; guard the mutation or "
                    "make the state immutable",
                )
                if found is not None:
                    yield found

        # arm B: classes that declare a lock promise a locking
        # discipline — every post-__init__ attribute mutation must hold
        # it (closure-independent: instances of such classes are built
        # to be shared, and indirection through resolve_tracer-style
        # seams hides them from the call graph)
        for cls_qual in sorted(program.classes):
            cls = program.classes[cls_qual]
            if not cls.has_lock_attr:
                continue
            yield from self._check_lock_owner(program, cls, locked)

        # arm C: a lockless class with any method on a thread path is
        # accessed concurrently; once that is established, *every*
        # in-place mutation of its attributes (dict/list updates,
        # += counters — not atomic rebinds) is a candidate race, even
        # in methods the graph cannot prove reachable (instances cross
        # untyped seams like resolve_tracer).  Declaring a lock moves
        # the class to the stricter arm B.
        for cls_qual in sorted(program.classes):
            cls = program.classes[cls_qual]
            if cls.has_lock_attr:
                continue
            if not any(
                method.qual in closure
                for method in cls.methods.values()
            ):
                continue
            for name in sorted(cls.methods):
                yield from self._check_method(
                    program,
                    cls,
                    cls.methods[name],
                    locked,
                    inplace_only=True,
                )

    def _check_lock_owner(
        self, program: Program, cls: ClassInfo, locked: Set[str]
    ) -> Iterator[Finding]:
        for name in sorted(cls.methods):
            yield from self._check_method(
                program, cls, cls.methods[name], locked
            )

    def _check_method(
        self,
        program: Program,
        cls: ClassInfo,
        method: FunctionInfo,
        locked: Set[str],
        inplace_only: bool = False,
    ) -> Iterator[Finding]:
        if method.name in ("__init__", "__post_init__", "__new__"):
            return  # construction happens-before sharing
        if method.qual in locked:
            return
        for site in method.mutations:
            if site.kind != "self" or site.lock_depth > 0:
                continue
            if inplace_only and site.op == "store":
                continue  # a plain rebind is atomic under the GIL
            attr_type = cls.attr_types.get(site.name)
            if attr_type in SYNCHRONIZED_TAGS:
                continue  # queue/Event/local/lock: internally safe
            if site.op == "deep" and attr_type is None:
                continue  # unknown holder: not provably shared state
            if inplace_only:
                message = (
                    f"{cls.name}.{method.name}() mutates "
                    f"'self.{site.name}' in place, and {cls.name} "
                    "instances run on thread paths (picola serve "
                    "handlers / batcher); add an instance lock and "
                    "take it around every mutation"
                )
            else:
                message = (
                    f"{cls.name}.{method.name}() mutates shared "
                    f"attribute 'self.{site.name}' without holding "
                    "the instance lock; wrap the mutation in "
                    "`with self._lock:` (or document the attribute "
                    "as immutable)"
                )
            found = self._finding(
                program, method.path, site.node, message
            )
            if found is not None:
                yield found


class ForkCaptureRule(_FlowRule):
    """RPA011 — no live locks/sockets/files cross into pool workers."""

    rule_id = "RPA011"
    title = "fork safety: live resource captured into a pool submission"
    rationale = """
        The parallel engine forks; a lock, socket, open file, executor
        or live Tracer captured into an executor.submit / Unit payload
        is duplicated mid-state in the child (a lock can be born held,
        a socket shared byte-stream), deadlocking or corrupting the
        worker.  Ship plain data (to_dict() payloads) and rebuild live
        objects worker-side.
    """

    def check_program(self, program: Program) -> Iterator[Finding]:
        for qual in sorted(program.functions):
            fn = program.functions[qual]
            for spawn in fn.spawns:
                if spawn.kind not in ("submit", "unit"):
                    continue
                for label, type_ref in spawn.arg_types:
                    held = program.holds_fork_unsafe(type_ref)
                    if held is None:
                        continue
                    found = self._finding(
                        program,
                        fn.path,
                        spawn.node,
                        f"{qual}() captures '{label}' into a "
                        f"process-pool submission, but it holds a "
                        f"live {held}; pass plain data and rebuild "
                        "the resource in the worker",
                    )
                    if found is not None:
                        yield found


class BudgetFlowRule(_FlowRule):
    """RPA012 — budgets thread through every solver call chain."""

    rule_id = "RPA012"
    title = "budget flow: call chain from Solver.solve drops the budget"
    rationale = """
        RPA001 proves each kernel loop ticks *a* budget; this rule
        proves the budget actually arrives: on every call path from a
        registry Solver.solve to the kernels, a caller holding a
        budget/deadline parameter must pass it to any callee that
        accepts one.  A dropped hop re-creates the unbounded-runtime
        hole the whole budget system exists to close.
    """

    _SOLVER_CLASS = "repro.solvers.Solver"

    def check_program(self, program: Program) -> Iterator[Finding]:
        roots: List[str] = []
        for cls_qual in [self._SOLVER_CLASS] + program.subclasses_of(
            self._SOLVER_CLASS
        ):
            cls = program.classes.get(cls_qual)
            if cls is None:
                continue
            for name in ("solve", "_run"):
                if name in cls.methods:
                    roots.append(cls.methods[name].qual)
        closure = program.reachable(roots)
        for qual in sorted(closure):
            fn = program.functions[qual]
            if not fn.budget_params:
                continue
            for site in fn.calls:
                if site.callee is None or site.is_ctor or site.partial:
                    continue
                callee = program.functions.get(site.callee)
                if callee is None or not callee.budget_params:
                    continue
                if site.passes_budget:
                    continue
                found = self._finding(
                    program,
                    fn.path,
                    site.node,
                    f"{qual}() holds "
                    f"{'/'.join(fn.budget_params)} but calls "
                    f"{callee.qual}() without passing it, on a path "
                    "from Solver.solve to the kernels; forward "
                    "budget=/deadline= so the allowance stays shared",
                )
                if found is not None:
                    yield found


class CacheCoherenceRule(_FlowRule):
    """RPA013 — cached derived state is invalidated on every exit."""

    rule_id = "RPA013"
    title = "cache coherence: mutation without unconditional invalidation"
    rationale = """
        Classes that memoize derived state (canonical forms, minterm
        counts) pair every mutator with an _invalidate()-style reset;
        a mutator that skips the reset — or only reaches it on some
        branches — serves stale answers whose wrongness surfaces far
        from the bug.  Call the invalidator unconditionally (top level
        of the method or in a finally:) on every mutation.
    """

    def check_program(self, program: Program) -> Iterator[Finding]:
        for cls_qual in sorted(program.classes):
            cls = program.classes[cls_qual]
            invalidators, cache_attrs = self._invalidators(cls)
            if not invalidators or not cache_attrs:
                continue
            for name in sorted(cls.methods):
                if name in invalidators or name in (
                    "__init__", "__post_init__", "__new__",
                ):
                    continue
                method = cls.methods[name]
                yield from self._check_mutator(
                    program, cls, method, invalidators, cache_attrs
                )

    @staticmethod
    def _invalidators(
        cls: ClassInfo,
    ) -> Tuple[Set[str], Set[str]]:
        """Methods whose whole body resets cache attrs to ``None``."""
        invalidators: Set[str] = set()
        cache_attrs: Set[str] = set()
        for name, method in cls.methods.items():
            if "invalidate" not in name:
                continue
            attrs = CacheCoherenceRule._none_resets(method.node.body)
            if attrs:
                invalidators.add(name)
                cache_attrs.update(attrs)
        return invalidators, cache_attrs

    @staticmethod
    def _none_resets(body: Sequence[ast.stmt]) -> Optional[Set[str]]:
        """``{attr, ...}`` if the body is purely ``self.X = None``."""
        attrs: Set[str] = set()
        for stmt in body:
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring
            if not (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None
            ):
                return None
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return None
                attrs.add(target.attr)
        return attrs or None

    def _check_mutator(
        self,
        program: Program,
        cls: ClassInfo,
        method: FunctionInfo,
        invalidators: Set[str],
        cache_attrs: Set[str],
    ) -> Iterator[Finding]:
        mutates = [
            site
            for site in method.mutations
            if site.kind == "self"
            and site.name not in cache_attrs
            and site.op in ("store", "aug", "subscript")
        ]
        if not mutates:
            return
        top = self._invalidates_at_top(
            method.node.body, invalidators, cache_attrs
        )
        if top:
            return
        anywhere = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in invalidators
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            for node in ast.walk(method.node)
        )
        inv = sorted(invalidators)[0]
        if anywhere:
            message = (
                f"{cls.name}.{method.name}() mutates cached state but "
                f"only calls self.{inv}() conditionally; invalidate "
                "unconditionally (method top level or a finally:) so "
                "no exit path serves stale derived state"
            )
        else:
            message = (
                f"{cls.name}.{method.name}() mutates state the "
                f"memoized attributes ({', '.join(sorted(cache_attrs))}) "
                f"are derived from without calling self.{inv}(); "
                "stale canonical forms will be served"
            )
        found = self._finding(
            program, method.path, mutates[0].node, message
        )
        if found is not None:
            yield found

    def _invalidates_at_top(
        self,
        body: Sequence[ast.stmt],
        invalidators: Set[str],
        cache_attrs: Set[str],
    ) -> bool:
        reset: Set[str] = set()
        for stmt in body:
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Call
            ):
                call = stmt.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in invalidators
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                ):
                    return True
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None
            ):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        reset.add(target.attr)
            if isinstance(stmt, ast.Try) and self._invalidates_at_top(
                stmt.finalbody, invalidators, cache_attrs
            ):
                return True
        return bool(cache_attrs) and cache_attrs <= reset


class LockBlockingRule(_FlowRule):
    """RPA014 — nothing blocks indefinitely while holding a lock."""

    rule_id = "RPA014"
    title = "concurrency: indefinite blocking call while holding a lock"
    rationale = """
        A .join(), unbounded queue.get()/put(), Event.wait() or socket
        operation without a timeout, performed inside `with lock:`,
        turns one stuck peer into a system-wide deadlock — every other
        thread piles up on the lock.  Release the lock first, or give
        the call a timeout and handle expiry.
    """

    def check_program(self, program: Program) -> Iterator[Finding]:
        may_block = self._may_block(program)
        for qual in sorted(program.functions):
            fn = program.functions[qual]
            for block in fn.blocking:
                if block.lock_depth <= 0:
                    continue
                found = self._finding(
                    program,
                    fn.path,
                    block.node,
                    f"{qual}() performs {block.what} while holding a "
                    "lock; release the lock first or add a timeout",
                )
                if found is not None:
                    yield found
            for site in fn.calls:
                if (
                    site.lock_depth <= 0
                    or site.callee is None
                    or site.callee not in may_block
                ):
                    continue
                found = self._finding(
                    program,
                    fn.path,
                    site.node,
                    f"{qual}() calls {site.callee}() — which can "
                    "block indefinitely — while holding a lock; "
                    "restructure so the lock is released around the "
                    "blocking call",
                )
                if found is not None:
                    yield found

    @staticmethod
    def _may_block(program: Program) -> Set[str]:
        blocking = {
            qual
            for qual in program.functions
            if program.functions[qual].blocking
        }
        changed = True
        while changed:
            changed = False
            for qual in sorted(program.functions):
                if qual in blocking:
                    continue
                fn = program.functions[qual]
                if any(
                    site.callee in blocking
                    for site in fn.calls
                    if site.callee is not None
                ):
                    blocking.add(qual)
                    changed = True
        return blocking


FLOW_RULE_CLASSES: Tuple[type, ...] = (
    SharedStateRule,
    ForkCaptureRule,
    BudgetFlowRule,
    CacheCoherenceRule,
    LockBlockingRule,
)
