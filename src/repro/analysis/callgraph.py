"""Whole-program symbol table and call graph for the flow rules.

This module turns the per-file :class:`~repro.analysis.engine.FileContext`
list the engine already produces into one :class:`Program`:

* a **symbol table** — every module, class, function and method in the
  scanned tree, with imports (including aliased and relative ones, and
  re-exports through package ``__init__`` files) resolved to their
  defining module;
* a **call graph** — one edge per syntactic call site, resolved when
  the callee is provable from literal attribute chains (``self.m()``,
  ``mod.f()``, a local variable whose constructor is visible, an
  annotated parameter), and recorded as *unresolved* otherwise — the
  flow rules treat unresolved calls conservatively, never as evidence;
* a **shared-state escape summary** per function — module-level
  globals mutated, ``self`` attributes mutated, blocking calls, and
  the ``with``-statement lock depth at every one of those sites.

Everything stays ``ast``-only and dependency-free, like the rest of
the engine: the program is built from source text, never by importing
the analyzed code.  All outputs iterate in deterministic (sorted or
source) order so ``picola lint --graph json`` is byte-identical across
runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import FileContext

__all__ = [
    "BlockSite",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "MutationSite",
    "Program",
    "SpawnSite",
    "build_program",
]

#: parameter names treated as cooperative budget handles (mirrors
#: :data:`repro.analysis.rules.BUDGET_NAMES`; duplicated to keep this
#: module import-light)
BUDGET_NAMES = ("budget", "deadline")

# ----------------------------------------------------------------------
# type tags: a "type" is either a project class qualname
# ("repro.obs.tracer.Tracer") or one of these builtin tags
# ----------------------------------------------------------------------
MUTABLE = "builtin:mutable"
LOCK = "builtin:lock"
EVENT = "builtin:event"
TLOCAL = "builtin:tlocal"
QUEUE = "builtin:queue"
SOCKET = "builtin:socket"
FILE = "builtin:file"
THREAD = "builtin:thread"
EXECUTOR = "builtin:executor"

#: internally synchronized objects: mutating *through* them needs no lock
SYNCHRONIZED_TAGS = frozenset({LOCK, EVENT, TLOCAL, QUEUE})

#: live resources that must not be captured across a fork into a worker
FORK_UNSAFE_TAGS = frozenset({LOCK, SOCKET, FILE, THREAD, EXECUTOR})

_CTOR_TAGS: Dict[str, str] = {
    "dict": MUTABLE, "list": MUTABLE, "set": MUTABLE,
    "OrderedDict": MUTABLE, "collections.OrderedDict": MUTABLE,
    "defaultdict": MUTABLE, "collections.defaultdict": MUTABLE,
    "deque": MUTABLE, "collections.deque": MUTABLE,
    "Lock": LOCK, "threading.Lock": LOCK,
    "RLock": LOCK, "threading.RLock": LOCK,
    "Condition": LOCK, "threading.Condition": LOCK,
    "Semaphore": LOCK, "threading.Semaphore": LOCK,
    "BoundedSemaphore": LOCK, "threading.BoundedSemaphore": LOCK,
    "Event": EVENT, "threading.Event": EVENT,
    "threading.local": TLOCAL,
    "Queue": QUEUE, "queue.Queue": QUEUE,
    "SimpleQueue": QUEUE, "queue.SimpleQueue": QUEUE,
    "LifoQueue": QUEUE, "queue.LifoQueue": QUEUE,
    "PriorityQueue": QUEUE, "queue.PriorityQueue": QUEUE,
    "multiprocessing.Queue": QUEUE,
    "socket.socket": SOCKET,
    "socket.create_connection": SOCKET,
    "socket.socketpair": SOCKET,
    "open": FILE, "io.open": FILE, "os.fdopen": FILE,
    "Thread": THREAD, "threading.Thread": THREAD,
    "Timer": THREAD, "threading.Timer": THREAD,
    "Process": THREAD, "multiprocessing.Process": THREAD,
    "ThreadPoolExecutor": EXECUTOR, "ProcessPoolExecutor": EXECUTOR,
    "concurrent.futures.ThreadPoolExecutor": EXECUTOR,
    "concurrent.futures.ProcessPoolExecutor": EXECUTOR,
}

_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

_MUTABLE_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)


def _dotted_name(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _module_name(path: str) -> str:
    """``repro/service/server.py`` → ``repro.service.server``."""
    parts = path[:-3].split("/") if path.endswith(".py") else path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ----------------------------------------------------------------------
# per-site records of the escape summary
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One syntactic call, resolved or not."""

    caller: str
    callee: Optional[str]  # qualname, None = unresolved
    label: str             # rendered target for diagnostics
    node: ast.Call
    lock_depth: int
    is_ctor: bool = False
    partial: bool = False
    passes_budget: bool = False


@dataclass
class MutationSite:
    """A direct store into shared-looking state."""

    kind: str   # "global" | "self"
    name: str   # the global name, or the self attribute
    node: ast.AST
    lock_depth: int
    op: str     # "store" | "aug" | "subscript" | "del" | "deep"


@dataclass
class BlockSite:
    """A call that can block the current thread indefinitely."""

    what: str
    node: ast.AST
    lock_depth: int


@dataclass
class SpawnSite:
    """A site handing work to another thread/process."""

    kind: str  # "thread" | "submit" | "unit"
    node: ast.Call
    targets: Tuple[str, ...]  # resolved entry callables
    #: (display label, inferred type) of every captured argument
    arg_types: Tuple[Tuple[str, Optional[str]], ...]
    lock_depth: int


@dataclass
class FunctionInfo:
    """One function or method plus its escape summary."""

    qual: str
    name: str
    path: str
    module: str
    cls: Optional[str]  # owning class qualname
    node: ast.AST
    lineno: int
    params: Tuple[str, ...] = ()
    budget_params: Tuple[str, ...] = ()
    decorators: Tuple[str, ...] = ()
    param_types: Dict[str, Optional[str]] = field(default_factory=dict)
    local_types: Dict[str, Optional[str]] = field(default_factory=dict)
    nested: Dict[str, str] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    mutations: List[MutationSite] = field(default_factory=list)
    blocking: List[BlockSite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    global_decls: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class: bases, methods, and inferred attribute types."""

    qual: str
    name: str
    path: str
    module: str
    node: ast.AST
    lineno: int
    bases: Tuple[str, ...] = ()         # raw dotted base names
    resolved_bases: List[str] = field(default_factory=list)
    external_bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def has_lock_attr(self) -> bool:
        return any(t == LOCK for t in self.attr_types.values())


@dataclass
class ModuleInfo:
    """One scanned file as a namespace."""

    modname: str
    path: str
    ctx: FileContext
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    global_names: Set[str] = field(default_factory=set)
    global_types: Dict[str, Optional[str]] = field(default_factory=dict)
    #: module-level ``NAME = ProjectClass()`` singletons
    instance_globals: Dict[str, str] = field(default_factory=dict)


class Program:
    """The resolved whole-program view the flow rules consume."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.contexts_by_path: Dict[str, FileContext] = {}

    # -- symbol resolution ---------------------------------------------
    def resolve(
        self, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[Tuple[str, object]]:
        """Resolve a dotted name to ``("func"|"class"|"module", info)``.

        Follows import aliases and package re-exports with a cycle
        guard; anything pointing outside the scanned tree is ``None``.
        """
        seen = _seen if _seen is not None else set()
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                entity: Optional[Tuple[str, object]] = (
                    "module", self.modules[prefix],
                )
                for attr in parts[i:]:
                    entity = self._attr_of(entity, attr, seen)
                    if entity is None:
                        return None
                return entity
        return None

    def _attr_of(
        self,
        entity: Optional[Tuple[str, object]],
        attr: str,
        seen: Set[str],
    ) -> Optional[Tuple[str, object]]:
        if entity is None:
            return None
        kind, obj = entity
        if kind == "module":
            module = obj  # type: ModuleInfo  # noqa: E501  (py39: no isinstance narrow)
            assert isinstance(module, ModuleInfo)
            if attr in module.functions:
                return ("func", module.functions[attr])
            if attr in module.classes:
                return ("class", module.classes[attr])
            if attr in module.imports:
                target = module.imports[attr]
                if target in seen:
                    return None
                seen.add(target)
                return self.resolve(target, seen)
            sub = f"{module.modname}.{attr}"
            if sub in self.modules:
                return ("module", self.modules[sub])
            return None
        if kind == "class":
            assert isinstance(obj, ClassInfo)
            method = self.lookup_method(obj, attr)
            if method is not None:
                return ("func", method)
        return None

    def resolve_in_module(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[Tuple[str, object]]:
        """Resolve ``dotted`` as seen from inside ``module``."""
        first, _, rest = dotted.partition(".")
        base: Optional[str] = None
        if first in module.functions or first in module.classes:
            base = f"{module.modname}.{first}"
        elif first in module.imports:
            base = module.imports[first]
        if base is None:
            return None
        return self.resolve(base + ("." + rest if rest else ""))

    def canonical_dotted(
        self, module: ModuleInfo, dotted: str
    ) -> str:
        """Translate the leading import alias, for the ctor-tag table."""
        first, dot, rest = dotted.partition(".")
        target = module.imports.get(first)
        if target is None:
            return dotted
        return target + dot + rest

    def lookup_method(
        self, cls: ClassInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        seen = _seen if _seen is not None else set()
        if cls.qual in seen:
            return None
        seen.add(cls.qual)
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.resolved_bases:
            base_cls = self.classes.get(base)
            if base_cls is not None:
                found = self.lookup_method(base_cls, name, seen)
                if found is not None:
                    return found
        return None

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        return self.classes.get(fn.cls) if fn.cls else None

    # -- class taxonomy -------------------------------------------------
    def base_closure(self, qual: str) -> Tuple[Set[str], Set[str]]:
        """All (project quals, external dotted names) above ``qual``."""
        project: Set[str] = set()
        external: Set[str] = set()
        stack = [qual]
        while stack:
            cur = stack.pop()
            cls = self.classes.get(cur)
            if cls is None or cur in project:
                continue
            project.add(cur)
            external.update(cls.external_bases)
            stack.extend(cls.resolved_bases)
        project.discard(qual)
        return project, external

    def is_threadlike(self, qual: str) -> bool:
        _, external = self.base_closure(qual)
        return any(
            name.split(".")[-1] in ("Thread", "Timer", "Process")
            for name in external
        )

    def is_handlerlike(self, qual: str) -> bool:
        _, external = self.base_closure(qual)
        return any(
            name.split(".")[-1].endswith("RequestHandler")
            for name in external
        )

    def subclasses_of(self, qual: str) -> List[str]:
        out = []
        for cls_qual in sorted(self.classes):
            project, _ = self.base_closure(cls_qual)
            if qual in project:
                out.append(cls_qual)
        return out

    # -- graph queries ---------------------------------------------------
    def incoming(self) -> Dict[str, List[CallSite]]:
        edges: Dict[str, List[CallSite]] = {}
        for qual in sorted(self.functions):
            for site in self.functions[qual].calls:
                if site.callee is not None:
                    edges.setdefault(site.callee, []).append(site)
        return edges

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Transitive closure over *resolved* call edges."""
        seen: Set[str] = set()
        stack = [q for q in roots if q in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for site in self.functions[qual].calls:
                if (
                    site.callee is not None
                    and site.callee not in seen
                    and site.callee in self.functions
                ):
                    stack.append(site.callee)
        return seen

    def holds_fork_unsafe(
        self, type_ref: Optional[str], _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Does this type transitively hold a lock/socket/file/thread?

        Returns a human-readable description of the held resource, or
        ``None``.  Unknown attribute types never count (conservative).
        """
        if type_ref is None:
            return None
        if type_ref in FORK_UNSAFE_TAGS:
            return type_ref.split(":", 1)[1]
        cls = self.classes.get(type_ref)
        if cls is None:
            return None
        seen = _seen if _seen is not None else set()
        if cls.qual in seen:
            return None
        seen.add(cls.qual)
        quals = [cls.qual]
        quals.extend(sorted(self.base_closure(cls.qual)[0]))
        for qual in quals:
            owner = self.classes.get(qual)
            if owner is None:
                continue
            for attr in sorted(owner.attr_types):
                held = self.holds_fork_unsafe(
                    owner.attr_types[attr], seen
                )
                if held is not None:
                    return f"{cls.name}.{attr} ({held})"
        return None

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        functions = []
        edges = []
        unresolved = 0
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            functions.append(
                {
                    "qual": qual,
                    "path": fn.path,
                    "line": fn.lineno,
                    "params": list(fn.params),
                    "budget_params": list(fn.budget_params),
                }
            )
            for site in fn.calls:
                if site.callee is None:
                    unresolved += 1
                edges.append(
                    {
                        "caller": qual,
                        "callee": site.callee,
                        "label": site.label,
                        "line": site.node.lineno,
                        "lock_depth": site.lock_depth,
                    }
                )
        edges.sort(
            key=lambda e: (
                e["caller"], e["line"], e["label"], str(e["callee"]),
            )
        )
        classes = []
        for qual in sorted(self.classes):
            cls = self.classes[qual]
            classes.append(
                {
                    "qual": qual,
                    "path": cls.path,
                    "line": cls.lineno,
                    "bases": sorted(cls.resolved_bases)
                    + sorted(cls.external_bases),
                    "lock_owner": cls.has_lock_attr,
                    "attrs": {
                        name: cls.attr_types[name]
                        for name in sorted(cls.attr_types)
                    },
                }
            )
        return {
            "modules": sorted(self.modules),
            "functions": functions,
            "classes": classes,
            "edges": edges,
            "unresolved_calls": unresolved,
        }


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build_program(contexts: Sequence[FileContext]) -> Program:
    """Three passes: declare, link types, summarize bodies."""
    program = Program()
    for ctx in contexts:
        _declare_module(program, ctx)
    for module in program.modules.values():
        _link_module(program, module)
    for module in program.modules.values():
        _summarize_module(program, module)
    return program


def _declare_module(program: Program, ctx: FileContext) -> None:
    modname = _module_name(ctx.path)
    if modname in program.modules:
        return  # duplicate path (overlapping roots): first wins
    module = ModuleInfo(modname=modname, path=ctx.path, ctx=ctx)
    program.modules[modname] = module
    program.contexts_by_path.setdefault(ctx.path, ctx)
    is_pkg = ctx.path.endswith("/__init__.py")

    for node in ctx.tree.body:
        _declare_statement(program, module, node, is_pkg)


def _declare_statement(
    program: Program,
    module: ModuleInfo,
    node: ast.stmt,
    is_pkg: bool,
) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname:
                module.imports[alias.asname] = alias.name
            else:
                head = alias.name.partition(".")[0]
                module.imports[head] = head
    elif isinstance(node, ast.ImportFrom):
        base = _import_base(module.modname, node, is_pkg)
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            module.imports[alias.asname or alias.name] = target
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        fn = _declare_function(
            program, module, node, cls=None, prefix=module.modname
        )
        module.functions[node.name] = fn
    elif isinstance(node, ast.ClassDef):
        _declare_class(program, module, node)
    elif isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                module.global_names.add(target.id)
    elif isinstance(node, (ast.If, ast.Try)):
        # conditional defs (TYPE_CHECKING imports, try/except imports)
        bodies = [node.body]
        if isinstance(node, ast.If):
            bodies.append(node.orelse)
        else:
            bodies.append(node.orelse)
            bodies.append(node.finalbody)
            for handler in node.handlers:
                bodies.append(handler.body)
        for body in bodies:
            for child in body:
                _declare_statement(program, module, child, is_pkg)


def _import_base(
    modname: str, node: ast.ImportFrom, is_pkg: bool
) -> str:
    if not node.level:
        return node.module or ""
    parts = modname.split(".")
    if not is_pkg:
        parts = parts[:-1]
    cut = len(parts) - (node.level - 1)
    parts = parts[: max(cut, 0)]
    base = ".".join(parts)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


def _declare_function(
    program: Program,
    module: ModuleInfo,
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
    cls: Optional[str],
    prefix: str,
) -> FunctionInfo:
    qual = f"{prefix}.{node.name}"
    args = node.args
    params = tuple(
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    )
    fn = FunctionInfo(
        qual=qual,
        name=node.name,
        path=module.path,
        module=module.modname,
        cls=cls,
        node=node,
        lineno=node.lineno,
        params=params,
        budget_params=tuple(p for p in params if p in BUDGET_NAMES),
        decorators=tuple(
            d for d in (_dotted_name(dec) for dec in node.decorator_list)
            if d is not None
        ),
    )
    program.functions[qual] = fn
    for child in ast.walk(node):
        if isinstance(child, ast.Global):
            fn.global_decls.update(child.names)
    # nested defs become their own functions, addressable by bare name
    # from the enclosing body
    for child in node.body:
        _declare_nested(program, module, child, fn)
    return fn


def _declare_nested(
    program: Program,
    module: ModuleInfo,
    stmt: ast.stmt,
    owner: FunctionInfo,
) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        nested = _declare_function(
            program, module, stmt, cls=owner.cls, prefix=owner.qual
        )
        owner.nested[stmt.name] = nested.qual
        return
    for body in _sub_bodies(stmt):
        for child in body:
            _declare_nested(program, module, child, owner)


def _sub_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def _declare_class(
    program: Program, module: ModuleInfo, node: ast.ClassDef
) -> None:
    qual = f"{module.modname}.{node.name}"
    cls = ClassInfo(
        qual=qual,
        name=node.name,
        path=module.path,
        module=module.modname,
        node=node,
        lineno=node.lineno,
        bases=tuple(
            b for b in (_dotted_name(base) for base in node.bases)
            if b is not None
        ),
    )
    program.classes[qual] = cls
    module.classes[node.name] = cls
    module.global_names.add(node.name)
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _declare_function(
                program, module, child, cls=qual, prefix=qual
            )
            cls.methods[child.name] = fn
        elif isinstance(child, (ast.Assign, ast.AnnAssign)):
            targets = (
                child.targets
                if isinstance(child, ast.Assign)
                else [child.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    cls.attr_types.setdefault(target.id, None)


# ----------------------------------------------------------------------
# pass 2: link bases, annotations, attribute and global types
# ----------------------------------------------------------------------
def _link_module(program: Program, module: ModuleInfo) -> None:
    for cls in module.classes.values():
        for base in cls.bases:
            resolved = program.resolve_in_module(module, base)
            if resolved is not None and resolved[0] == "class":
                assert isinstance(resolved[1], ClassInfo)
                cls.resolved_bases.append(resolved[1].qual)
            else:
                cls.external_bases.append(
                    program.canonical_dotted(module, base)
                )
    for fn in list(module.functions.values()):
        _link_signature(program, module, fn)
    for cls in module.classes.values():
        for fn in cls.methods.values():
            _link_signature(program, module, fn)
        _infer_attr_types(program, module, cls)
    _infer_global_types(program, module)


def _link_signature(
    program: Program, module: ModuleInfo, fn: FunctionInfo
) -> None:
    args = fn.node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        fn.param_types[arg.arg] = _annotation_type(
            program, module, arg.annotation
        )
    for name in fn.nested.values():
        nested = program.functions.get(name)
        if nested is not None:
            _link_signature(program, module, nested)


def _annotation_type(
    program: Program, module: ModuleInfo, node: Optional[ast.AST]
) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        resolved = program.resolve_in_module(module, text)
        if resolved is not None and resolved[0] == "class":
            assert isinstance(resolved[1], ClassInfo)
            return resolved[1].qual
        return None
    if isinstance(node, ast.Subscript):
        head = _dotted_name(node.value)
        if head and head.split(".")[-1] == "Optional":
            return _annotation_type(program, module, node.slice)
        return None
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    resolved = program.resolve_in_module(module, dotted)
    if resolved is not None and resolved[0] == "class":
        assert isinstance(resolved[1], ClassInfo)
        return resolved[1].qual
    # builtin annotations (threading.Thread, queue.Queue, ...) tag the
    # parameter the same way the constructor table would
    return _CTOR_TAGS.get(program.canonical_dotted(module, dotted))


def _shallow_type(
    program: Program,
    module: ModuleInfo,
    expr: Optional[ast.AST],
    env: Optional[Dict[str, Optional[str]]] = None,
    self_cls: Optional[ClassInfo] = None,
) -> Optional[str]:
    """Type of an expression from literals, constructors, annotated
    names and ``self`` attributes; ``None`` when not provable."""
    if expr is None:
        return None
    if isinstance(expr, _MUTABLE_LITERALS):
        return MUTABLE
    if isinstance(expr, ast.IfExp):
        a = _shallow_type(program, module, expr.body, env, self_cls)
        b = _shallow_type(program, module, expr.orelse, env, self_cls)
        return a if a == b else None
    if isinstance(expr, ast.Name):
        if env is not None and expr.id in env:
            return env[expr.id]
        return module.global_types.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and self_cls is not None
        ):
            found = _lookup_attr_type(program, self_cls, expr.attr)
            if found is not None:
                return found
        return None
    if isinstance(expr, ast.Call):
        dotted = _dotted_name(expr.func)
        if dotted is None:
            return None
        resolved = program.resolve_in_module(module, dotted)
        if resolved is not None and resolved[0] == "class":
            assert isinstance(resolved[1], ClassInfo)
            return resolved[1].qual
        return _CTOR_TAGS.get(program.canonical_dotted(module, dotted))
    return None


def _lookup_attr_type(
    program: Program, cls: ClassInfo, attr: str
) -> Optional[str]:
    found = cls.attr_types.get(attr)
    if found is not None:
        return found
    for base in cls.resolved_bases:
        base_cls = program.classes.get(base)
        if base_cls is not None:
            found = _lookup_attr_type(program, base_cls, attr)
            if found is not None:
                return found
    return None


def _infer_attr_types(
    program: Program, module: ModuleInfo, cls: ClassInfo
) -> None:
    # __init__ wins; other methods only fill gaps, and a conflicting
    # second opinion downgrades the attribute to unknown
    ordered = sorted(
        cls.methods.values(),
        key=lambda m: (m.name not in _INIT_METHODS, m.lineno),
    )
    decided: Dict[str, Optional[str]] = dict(cls.attr_types)
    for method in ordered:
        env = dict(method.param_types)
        for stmt in ast.walk(method.node):
            value: Optional[ast.AST]
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                inferred = _shallow_type(program, module, value, env)
                if inferred is None and isinstance(stmt, ast.AnnAssign):
                    inferred = _annotation_type(
                        program, module, stmt.annotation
                    )
                previous = decided.get(target.attr)
                if target.attr not in decided or previous is None:
                    decided[target.attr] = inferred
                elif inferred is not None and inferred != previous:
                    decided[target.attr] = None  # conflicting evidence
    cls.attr_types = decided
    # class-level Assign values refine attrs still unknown
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign):
            inferred = _shallow_type(program, module, stmt.value)
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and decided.get(target.id) is None
                    and inferred is not None
                ):
                    decided[target.id] = inferred


def _infer_global_types(program: Program, module: ModuleInfo) -> None:
    for stmt in module.ctx.tree.body:
        value: Optional[ast.AST]
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        inferred = _shallow_type(program, module, value)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id not in module.global_types:
                module.global_types[target.id] = inferred
            if (
                inferred is not None
                and inferred in program.classes
                and target.id not in module.instance_globals
            ):
                module.instance_globals[target.id] = inferred


# ----------------------------------------------------------------------
# pass 3: per-function body summaries (calls, mutations, locks)
# ----------------------------------------------------------------------
def _summarize_module(program: Program, module: ModuleInfo) -> None:
    for fn in module.functions.values():
        _summarize_function(program, module, fn)
    for cls in module.classes.values():
        for fn in cls.methods.values():
            _summarize_function(program, module, fn)


def _summarize_function(
    program: Program, module: ModuleInfo, fn: FunctionInfo
) -> None:
    for nested_qual in fn.nested.values():
        nested = program.functions.get(nested_qual)
        if nested is not None:
            _summarize_function(program, module, nested)
    _collect_local_types(program, module, fn)
    walker = _BodyWalker(program, module, fn)
    for stmt in fn.node.body:
        walker.visit_stmt(stmt)


def _collect_local_types(
    program: Program, module: ModuleInfo, fn: FunctionInfo
) -> None:
    env: Dict[str, Optional[str]] = dict(fn.param_types)
    self_cls = program.class_of(fn)

    def scan(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                inferred = _shallow_type(
                    program, module, value, env, self_cls
                )
                if inferred is None and isinstance(stmt, ast.AnnAssign):
                    inferred = _annotation_type(
                        program, module, stmt.annotation
                    )
                for target in targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = inferred
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        env[item.optional_vars.id] = _shallow_type(
                            program, module, item.context_expr,
                            env, self_cls,
                        )
            for body in _sub_bodies(stmt):
                scan(body)

    scan(fn.node.body)
    fn.local_types = env


class _BodyWalker:
    """Source-order walk with a ``with``-statement lock stack."""

    def __init__(
        self, program: Program, module: ModuleInfo, fn: FunctionInfo
    ) -> None:
        self.program = program
        self.module = module
        self.fn = fn
        self.self_cls = program.class_of(fn)
        self.lock_depth = 0

    # -- typing helpers -------------------------------------------------
    def type_of(self, expr: Optional[ast.AST]) -> Optional[str]:
        return _shallow_type(
            self.program, self.module, expr,
            self.fn.local_types, self.self_cls,
        )

    def is_lock_expr(self, expr: ast.AST) -> bool:
        if self.type_of(expr) == LOCK:
            return True
        dotted = _dotted_name(expr)
        return bool(dotted) and "lock" in dotted.split(".")[-1].lower()

    # -- statements -----------------------------------------------------
    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are summarized separately
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locks = 0
            for item in stmt.items:
                self.visit_expr(item.context_expr)
                if self.is_lock_expr(item.context_expr):
                    locks += 1
            self.lock_depth += locks
            for child in stmt.body:
                self.visit_stmt(child)
            self.lock_depth -= locks
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assignment(stmt)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_mutation(target, "del")
            return
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.stmt):
                self.visit_stmt(value)
            elif isinstance(value, ast.expr):
                self.visit_expr(value)
            elif isinstance(value, ast.excepthandler):
                for child in value.body:
                    self.visit_stmt(child)
            elif isinstance(value, (ast.withitem, ast.keyword)):
                self.visit_expr(getattr(value, "value", value))

    def _visit_assignment(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AugAssign):
            targets: List[ast.expr] = [stmt.target]
            op = "aug"
            value: Optional[ast.AST] = stmt.value
        else:
            targets = (
                list(stmt.targets)
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            op = "store"
            value = stmt.value
        if value is not None:
            self.visit_expr(value)
        for target in targets:
            self._record_mutation(target, op)

    def _record_mutation(self, target: ast.expr, op: str) -> None:
        fn = self.fn
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_mutation(elt, op)
            return
        if isinstance(target, ast.Name):
            # a plain rebind of a declared global is atomic under the
            # GIL and deliberately not reported; in-place update is
            if target.id in fn.global_decls and op in ("aug", "del"):
                fn.mutations.append(
                    MutationSite(
                        "global", target.id, target,
                        self.lock_depth, op,
                    )
                )
            return
        if isinstance(target, ast.Subscript):
            self.visit_expr(target.slice)
            base = target.value
            if isinstance(base, ast.Name):
                if (
                    base.id not in fn.local_types
                    and base.id not in fn.params
                    and base.id in self.module.global_names
                ) or base.id in fn.global_decls:
                    fn.mutations.append(
                        MutationSite(
                            "global", base.id, target,
                            self.lock_depth, "subscript",
                        )
                    )
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                fn.mutations.append(
                    MutationSite(
                        "self", base.attr, target,
                        self.lock_depth, "subscript",
                    )
                )
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                fn.mutations.append(
                    MutationSite(
                        "self", target.attr, target,
                        self.lock_depth,
                        "store" if op != "aug" else "aug",
                    )
                )
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                # a store through self.x.y mutates whatever x holds
                fn.mutations.append(
                    MutationSite(
                        "self", base.attr, target,
                        self.lock_depth, "deep",
                    )
                )

    # -- expressions ----------------------------------------------------
    def visit_expr(self, expr: Optional[ast.AST]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._visit_call(node)

    def _visit_call(self, call: ast.Call) -> None:
        fn = self.fn
        label = _dotted_name(call.func) or "<dynamic>"
        callee, is_ctor = self._resolve_call(call)
        passes_budget = (
            any(
                isinstance(a, ast.Name) and a.id in BUDGET_NAMES
                for a in call.args
            )
            or any(
                kw.arg in BUDGET_NAMES or kw.arg is None
                for kw in call.keywords
            )
        )
        site = CallSite(
            caller=fn.qual,
            callee=callee,
            label=label,
            node=call,
            lock_depth=self.lock_depth,
            is_ctor=is_ctor,
            passes_budget=passes_budget,
        )
        fn.calls.append(site)
        self._check_partial(call)
        self._check_blocking(call)
        self._check_spawn(call, callee, is_ctor)

    def _resolve_call(
        self, call: ast.Call
    ) -> Tuple[Optional[str], bool]:
        func = call.func
        program, module = self.program, self.module
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.fn.nested:
                return self.fn.nested[name], False
            resolved = program.resolve_in_module(module, name)
            return self._entity_target(resolved)
        if not isinstance(func, ast.Attribute):
            return None, False
        base, attr = func.value, func.attr
        # self.m() / cls.m() / super().m()
        if (
            isinstance(base, ast.Name)
            and base.id in ("self", "cls")
            and self.self_cls is not None
        ):
            method = program.lookup_method(self.self_cls, attr)
            return (method.qual if method else None), False
        if (
            isinstance(base, ast.Call)
            and _dotted_name(base.func) == "super"
            and self.self_cls is not None
        ):
            for base_qual in self.self_cls.resolved_bases:
                base_cls = program.classes.get(base_qual)
                if base_cls is not None:
                    method = program.lookup_method(base_cls, attr)
                    if method is not None:
                        return method.qual, False
            return None, False
        # receiver with a provable project-class type
        receiver_type = self.type_of(base)
        if receiver_type is not None and receiver_type in program.classes:
            cls = program.classes[receiver_type]
            method = program.lookup_method(cls, attr)
            return (method.qual if method else None), False
        # module.f() / module.Class.m() via the import table
        dotted = _dotted_name(func)
        if dotted is not None:
            resolved = program.resolve_in_module(module, dotted)
            return self._entity_target(resolved)
        return None, False

    def _entity_target(
        self, resolved: Optional[Tuple[str, object]]
    ) -> Tuple[Optional[str], bool]:
        if resolved is None:
            return None, False
        kind, obj = resolved
        if kind == "func":
            assert isinstance(obj, FunctionInfo)
            return obj.qual, False
        if kind == "class":
            assert isinstance(obj, ClassInfo)
            init = self.program.lookup_method(obj, "__init__")
            return (init.qual if init else f"{obj.qual}.__init__"), True
        return None, False

    def _check_partial(self, call: ast.Call) -> None:
        dotted = _dotted_name(call.func)
        if dotted is None or dotted.split(".")[-1] != "partial":
            return
        if not call.args:
            return
        target, _ = self._resolve_value(call.args[0])
        if target is not None:
            self.fn.calls.append(
                CallSite(
                    caller=self.fn.qual,
                    callee=target,
                    label=_dotted_name(call.args[0]) or "<partial>",
                    node=call,
                    lock_depth=self.lock_depth,
                    partial=True,
                )
            )

    def _resolve_value(
        self, expr: ast.AST
    ) -> Tuple[Optional[str], bool]:
        """Resolve an expression *used as a callable value*."""
        if isinstance(expr, ast.Name) and expr.id in self.fn.nested:
            return self.fn.nested[expr.id], False
        dotted = _dotted_name(expr)
        if dotted is None:
            return None, False
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and self.self_cls is not None
        ):
            method = self.program.lookup_method(self.self_cls, expr.attr)
            return (method.qual if method else None), False
        if isinstance(expr, ast.Attribute):
            # a bound method on a receiver with a provable class type
            # (Thread(target=obj.method) and friends)
            receiver = self.type_of(expr.value)
            if receiver is not None and receiver in self.program.classes:
                method = self.program.lookup_method(
                    self.program.classes[receiver], expr.attr
                )
                return (method.qual if method else None), False
        resolved = self.program.resolve_in_module(self.module, dotted)
        return self._entity_target(resolved)

    # -- blocking-call detection ----------------------------------------
    def _check_blocking(self, call: ast.Call) -> None:
        kwargs = {kw.arg for kw in call.keywords if kw.arg}
        if "timeout" in kwargs:
            return
        for kw in call.keywords:
            if (
                kw.arg == "block"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return
        func = call.func
        what: Optional[str] = None
        if isinstance(func, ast.Attribute):
            receiver = self.type_of(func.value)
            threadlike = receiver == THREAD or (
                receiver is not None
                and receiver in self.program.classes
                and self.program.is_threadlike(receiver)
            )
            attr = func.attr
            if attr == "join" and (threadlike or receiver == EXECUTOR):
                what = ".join() without a timeout"
            elif attr in ("get", "put") and receiver == QUEUE:
                what = f"unbounded queue.{attr}()"
            elif attr == "wait" and receiver in (EVENT, LOCK):
                what = ".wait() without a timeout"
            elif attr in ("accept", "recv", "recvfrom") and (
                receiver == SOCKET
            ):
                what = f"socket .{attr}() without a timeout"
        dotted = _dotted_name(func)
        if dotted is not None and what is None:
            canonical = self.program.canonical_dotted(self.module, dotted)
            if canonical in (
                "socket.create_connection",
                "urllib.request.urlopen",
            ) or canonical.split(".")[-1] == "urlopen":
                what = f"{canonical}() without a timeout"
        if what is not None:
            self.fn.blocking.append(
                BlockSite(what, call, self.lock_depth)
            )

    # -- thread / pool spawn detection ----------------------------------
    def _check_spawn(
        self, call: ast.Call, callee: Optional[str], is_ctor: bool
    ) -> None:
        fn = self.fn
        func = call.func
        # thread entry via Thread(target=...)
        if self.type_of(call) == THREAD:
            targets = []
            for kw in call.keywords:
                if kw.arg == "target":
                    qual, _ = self._resolve_value(kw.value)
                    if qual is not None:
                        targets.append(qual)
            fn.spawns.append(
                SpawnSite(
                    "thread", call, tuple(targets), (), self.lock_depth
                )
            )
            return
        # executor.submit(fn, *args)
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            targets = []
            captured: List[Tuple[str, Optional[str]]] = []
            if call.args:
                qual, _ = self._resolve_value(call.args[0])
                if qual is not None:
                    targets.append(qual)
                for arg in call.args[1:]:
                    captured.append(self._captured(arg))
            for kw in call.keywords:
                if kw.arg is not None:
                    captured.append(self._captured(kw.value, kw.arg))
            fn.spawns.append(
                SpawnSite(
                    "submit", call, tuple(targets),
                    tuple(captured), self.lock_depth,
                )
            )
            return
        # Unit(key=..., fn=..., args=..., kwargs=...) constructions
        if is_ctor and callee is not None and (
            callee.rsplit(".", 2)[-2:-1] == ["Unit"]
            or callee.split(".")[-2:] == ["Unit", "__init__"]
        ):
            targets = []
            captured = []
            positional = list(call.args)
            if len(positional) >= 2:
                qual, _ = self._resolve_value(positional[1])
                if qual is not None:
                    targets.append(qual)
            for i, arg in enumerate(positional[2:], start=2):
                captured.append(self._captured(arg))
            for kw in call.keywords:
                if kw.arg == "fn":
                    qual, _ = self._resolve_value(kw.value)
                    if qual is not None:
                        targets.append(qual)
                elif kw.arg in ("args", "kwargs"):
                    captured.extend(self._captured_container(kw.value))
                elif kw.arg is not None and kw.arg != "key":
                    captured.append(self._captured(kw.value, kw.arg))
            fn.spawns.append(
                SpawnSite(
                    "unit", call, tuple(targets),
                    tuple(captured), self.lock_depth,
                )
            )

    def _captured(
        self, expr: ast.AST, label: Optional[str] = None
    ) -> Tuple[str, Optional[str]]:
        display = label or _dotted_name(expr) or "<expr>"
        return display, self.type_of(expr)

    def _captured_container(
        self, expr: ast.AST
    ) -> List[Tuple[str, Optional[str]]]:
        if isinstance(expr, (ast.Tuple, ast.List)):
            return [self._captured(e) for e in expr.elts]
        if isinstance(expr, ast.Dict):
            return [self._captured(v) for v in expr.values]
        return [self._captured(expr)]
