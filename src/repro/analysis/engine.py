"""The static-analysis engine: findings, rules, suppressions, the walk.

The engine is deliberately *dependency-free* (``ast`` + ``tokenize``
only) and imports nothing from the rest of :mod:`repro`, so it can lint
broken trees: a file that fails to import still parses, and a file that
fails to parse becomes an ``RPA000`` finding instead of a crash.

Vocabulary
----------
* a :class:`Finding` is one violation at ``path:line:col`` with a
  stable rule ID and a content *fingerprint* (rule + path + source
  line, independent of the line number) used by the baseline;
* a :class:`Rule` inspects one parsed file; a :class:`ProjectRule`
  additionally sees every file at the end of the walk (cross-file
  invariants such as registry conformance);
* a suppression is the comment ``# repro: noqa[RPA001]`` (that line),
  ``# repro: noqa`` (that line, all rules) or
  ``# repro: noqa-file[RPA001]`` (whole file); everything after
  `` -- `` is the human justification.  Unused suppressions are
  reported so they cannot accumulate.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "AnalysisReport",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "ScanResult",
    "Suppression",
    "analyze",
    "iter_python_files",
    "scan_file",
]

#: rule ID reserved for files the engine itself cannot process
SYNTAX_RULE_ID = "RPA000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?"
    r"(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
    r"(?:\s*--\s*(?P<why>.*))?",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # posix path relative to the scan root's parent
    line: int
    col: int
    message: str
    snippet: str = ""  # the stripped source line, for fingerprinting

    @property
    def fingerprint(self) -> str:
        """Content hash that survives pure line-number drift."""
        digest = hashlib.sha1(
            f"{self.rule}:{self.path}:{self.snippet}".encode()
        )
        return digest.hexdigest()[:16]

    @property
    def content_fingerprint(self) -> str:
        """Path-free hash: pairs a moved file's findings with the
        baseline entries that excused them at the old path."""
        digest = hashlib.sha1(f"{self.rule}:{self.snippet}".encode())
        return digest.hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Suppression:
    """One ``# repro: noqa`` comment and its usage accounting."""

    path: str
    line: int
    rules: Optional[Tuple[str, ...]]  # None = every rule
    file_level: bool
    justification: str
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        if self.path != finding.path:
            return False
        if not self.file_level and self.line != finding.line:
            return False
        return self.rules is None or finding.rule in self.rules

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules) if self.rules else None,
            "file_level": self.file_level,
            "justification": self.justification,
        }


class FileContext:
    """Everything a rule may look at for one file."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.rule_id,
            path=self.path,
            line=line,
            col=col + 1,
            message=message,
            snippet=self.line_text(line),
        )


class Rule:
    """Base class: one named, scoped, per-file check."""

    #: stable ID, e.g. ``RPA001``
    rule_id: str = ""
    #: one-line name for reports and the catalog
    title: str = ""
    #: why the invariant matters (rendered into the rule catalog)
    rationale: str = ""
    #: package-relative directory prefixes this rule applies to
    #: (e.g. ``("repro/core", "repro/espresso")``); empty = everywhere
    scope: Tuple[str, ...] = ()
    #: package-relative prefixes always exempt (e.g. the framework
    #: that defines the API the rule polices)
    exempt: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.startswith(prefix) for prefix in self.exempt):
            return False
        if not self.scope:
            return True
        return any(path.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def catalog_entry(cls) -> Dict[str, object]:
        return {
            "rule": cls.rule_id,
            "title": cls.title,
            "rationale": " ".join(cls.rationale.split()),
            "scope": list(cls.scope) or ["(whole tree)"],
        }


class ProjectRule(Rule):
    """A rule that also runs once over the whole file set."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def finalize(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class AnalysisReport:
    """Outcome of one engine run, before baseline filtering."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(
        default_factory=list
    )
    unused_suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0

    def findings_for(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule_id]


@dataclass
class ScanResult:
    """The per-file half of one engine run.

    Produced by :func:`scan_file` — either inline or in a worker
    process (everything here pickles; the parsed ``tree`` is dropped
    before crossing a process boundary and re-parsed lazily by
    :meth:`context`).  ``analyze`` merges these in file order, so a
    parallel scanner that preserves submission order is byte-identical
    to the serial walk.
    """

    rel: str
    findings: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    source: Optional[str] = None
    checked: bool = False
    tree: Optional[ast.AST] = None

    def context(self) -> Optional[FileContext]:
        """The file's context for the project-rule phase, if parsable."""
        if self.source is None or not self.checked:
            return None
        if self.tree is None:
            try:
                self.tree = ast.parse(self.source, filename=self.rel)
            except SyntaxError:  # already reported as RPA000
                return None
        return FileContext(self.rel, self.source, self.tree)

    def strip_tree(self) -> "ScanResult":
        """Drop the parse tree (cheap to rebuild, costly to pickle)."""
        self.tree = None
        return self


def scan_file(
    file_path: Path, rel: str, rules: Sequence[Rule]
) -> ScanResult:
    """Read, parse and run the per-file rules over one file.

    ``ProjectRule`` instances are harmless to include (their per-file
    ``check`` yields nothing); the cross-file phase belongs to
    :func:`analyze`.
    """
    result = ScanResult(rel=rel)
    try:
        source = file_path.read_text()
    except OSError as exc:
        result.findings.append(
            Finding(SYNTAX_RULE_ID, rel, 1, 1, f"unreadable: {exc}")
        )
        return result
    result.source = source
    result.checked = True
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                SYNTAX_RULE_ID,
                rel,
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                f"syntax error: {exc.msg}",
            )
        )
        return result
    result.tree = tree
    ctx = FileContext(rel, source, tree)
    result.suppressions = _parse_suppressions(rel, source)
    for rule in rules:
        if rule.applies_to(rel):
            result.findings.extend(rule.check(ctx))
    return result


def _parse_suppressions(path: str, source: str) -> List[Suppression]:
    out: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            rules: Optional[Tuple[str, ...]] = None
            if match.group("rules"):
                rules = tuple(
                    r.strip()
                    for r in match.group("rules").split(",")
                    if r.strip()
                )
            out.append(
                Suppression(
                    path=path,
                    line=tok.start[0],
                    rules=rules,
                    file_level=match.group("file") is not None,
                    justification=(match.group("why") or "").strip(),
                )
            )
    except tokenize.TokenError:
        pass  # the parse error is reported as RPA000 by the walk
    return out


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


#: the injectable per-file half of :func:`analyze`:
#: ``scanner(jobs, rules) -> [ScanResult, ...]`` in submission order
Scanner = Callable[
    [Sequence[Tuple[Path, str]], Sequence[Rule]],
    Sequence[ScanResult],
]


def _relative_path(file_path: Path, root: Path) -> str:
    """Package-relative posix path, e.g. ``repro/core/picola.py``."""
    base = root if root.is_dir() else root.parent
    try:
        rel = file_path.resolve().relative_to(base.resolve().parent)
    except ValueError:
        rel = Path(file_path.name)
    return rel.as_posix()


def analyze(
    root: Path,
    rules: Sequence[Rule],
    *,
    paths: Optional[Sequence[Path]] = None,
    scanner: Optional[
        "Scanner"
    ] = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file under ``root``.

    ``paths`` restricts the walk to an explicit file list (still
    resolved relative to ``root`` for stable finding paths).  Findings
    matching a ``# repro: noqa`` suppression are moved aside; unused
    suppressions are reported so stale ones fail ``--strict`` runs.

    ``scanner`` overrides the per-file half of the walk: it receives
    the ordered ``[(file_path, rel), ...]`` list plus the rules and
    must return one :class:`ScanResult` per file *in the same order*
    (``picola lint --jobs N`` injects a process-pool scanner here).
    The cross-file :class:`ProjectRule` phase always runs in-process,
    after the scan.
    """
    report = AnalysisReport()
    contexts: List[FileContext] = []
    suppressions: List[Suppression] = []
    raw: List[Finding] = []

    files = list(paths) if paths is not None else list(
        iter_python_files(root)
    )
    jobs = [(fp, _relative_path(fp, root)) for fp in files]
    if scanner is not None:
        results = list(scanner(jobs, rules))
    else:
        results = [scan_file(fp, rel, rules) for fp, rel in jobs]
    for scanned in results:
        raw.extend(scanned.findings)
        suppressions.extend(scanned.suppressions)
        if scanned.checked:
            report.files_checked += 1
        ctx = scanned.context()
        if ctx is not None:
            contexts.append(ctx)

    for rule in rules:
        if isinstance(rule, ProjectRule):
            see = getattr(rule, "see_everything", None)
            if see is not None:
                see(contexts)  # cross-file rules may need out-of-scope files
            scoped = [
                c for c in contexts if rule.applies_to(c.path)
            ]
            raw.extend(rule.finalize(scoped))

    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in raw:
        hit = next(
            (s for s in suppressions if s.matches(finding)), None
        )
        if hit is not None:
            hit.used = True
            report.suppressed.append((finding, hit))
        else:
            report.findings.append(finding)
    # a suppression naming only rules that did not run this pass
    # (e.g. ``noqa[RPA010]`` under ``--no-flow``) is dormant, not
    # stale — it must not fail --strict
    active = {getattr(rule, "rule_id", None) for rule in rules}
    report.unused_suppressions = [
        s for s in suppressions
        if not s.used
        and (s.rules is None or any(r in active for r in s.rules))
    ]
    return report
