"""Text and JSON reporters for lint runs.

The JSON document is the machine interface CI consumes; its shape is
pinned by ``tests/test_analysis.py`` (schema assertions), so treat key
removals as breaking changes and bump ``JSON_SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .baseline import BaselineEntry
from .engine import AnalysisReport, Finding, Suppression

__all__ = ["LintResult", "render_text", "render_json", "render_github"]

JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint run decided, ready for a reporter."""

    report: AnalysisReport
    new_findings: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    strict: bool = False
    baseline_path: Optional[str] = None

    @property
    def unused_suppressions(self) -> List[Suppression]:
        return self.report.unused_suppressions

    @property
    def exit_code(self) -> int:
        """0 clean; 1 violations (strict adds hygiene failures)."""
        if self.new_findings:
            return 1
        if self.strict and (
            self.stale_baseline or self.unused_suppressions
        ):
            return 1
        return 0


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for finding in result.new_findings:
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}"
        )
    if result.stale_baseline:
        for entry in result.stale_baseline:
            lines.append(
                f"{entry.path}: stale baseline entry {entry.rule} "
                f"({entry.fingerprint}) — the finding it excused is "
                "gone; delete it"
            )
    if result.unused_suppressions:
        for sup in result.unused_suppressions:
            which = ",".join(sup.rules) if sup.rules else "all"
            lines.append(
                f"{sup.path}:{sup.line}: unused suppression "
                f"(# repro: noqa[{which}]) — nothing to suppress; "
                "delete it"
            )
    n = len(result.new_findings)
    summary = (
        f"{result.report.files_checked} files checked: "
        f"{n} finding{'s' if n != 1 else ''}"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.report.suppressed:
        extras.append(f"{len(result.report.suppressed)} suppressed")
    if result.stale_baseline:
        extras.append(
            f"{len(result.stale_baseline)} stale baseline entries"
        )
    if result.unused_suppressions:
        extras.append(
            f"{len(result.unused_suppressions)} unused suppressions"
        )
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property (file=, title=)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape workflow-command message data."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def render_github(result: LintResult, prefix: str = "") -> str:
    """GitHub Actions ``::error`` annotations, one per finding.

    ``prefix`` maps package-relative finding paths onto repo-relative
    ones (``src/`` in this repository's CI) so the annotations attach
    inline to PR diffs.  A plain-text summary line comes last — the
    workflow-command lines are consumed by the runner and never shown
    in the job log body.
    """
    lines: List[str] = []
    for finding in result.new_findings:
        lines.append(
            f"::error file={_escape_property(prefix + finding.path)},"
            f"line={finding.line},col={finding.col},"
            f"title={_escape_property(finding.rule)}::"
            f"{_escape_data(finding.message)}"
        )
    if result.strict:
        for entry in result.stale_baseline:
            lines.append(
                f"::error file={_escape_property(prefix + entry.path)},"
                f"line={entry.line or 1},"
                f"title={_escape_property(entry.rule + ' baseline')}::"
                + _escape_data(
                    f"stale baseline entry {entry.fingerprint}; the "
                    "finding it excused is gone — delete it"
                )
            )
        for sup in result.unused_suppressions:
            which = ",".join(sup.rules) if sup.rules else "all"
            lines.append(
                f"::error file={_escape_property(prefix + sup.path)},"
                f"line={sup.line},"
                f"title={_escape_property('unused suppression')}::"
                + _escape_data(
                    f"# repro: noqa[{which}] suppresses nothing; "
                    "delete it"
                )
            )
    n = len(result.new_findings)
    lines.append(
        f"{result.report.files_checked} files checked: "
        f"{n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    doc: Dict[str, object] = {
        "schema_version": JSON_SCHEMA_VERSION,
        "strict": result.strict,
        "files_checked": result.report.files_checked,
        "baseline": result.baseline_path,
        "findings": [f.to_dict() for f in result.new_findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "suppressed": [
            {"finding": f.to_dict(), "suppression": s.to_dict()}
            for f, s in result.report.suppressed
        ],
        "stale_baseline_entries": [
            e.to_dict() for e in result.stale_baseline
        ],
        "unused_suppressions": [
            s.to_dict() for s in result.unused_suppressions
        ],
        "exit_code": result.exit_code,
    }
    return json.dumps(doc, indent=2)
