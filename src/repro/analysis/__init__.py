"""Project-aware static analysis: AST lint rules for repo invariants.

PRs 1 and 3 threaded cooperative budgets, tracer spans, the
:class:`~repro.runtime.ReproError` taxonomy and the unified solver
registry through every encoder — this package *enforces* those
conventions so they cannot silently regress:

======  ==========================================================
RPA001  kernel loops must tick/forward the in-scope Budget/Deadline
RPA002  ``tracer.span(...)`` only as a ``with`` context manager
RPA003  no broad ``except`` that swallows failures
RPA004  solver modules raise the taxonomy, not builtin exceptions
RPA005  no unseeded randomness / wall clocks / bare-set iteration
RPA006  every public ``*_encode`` sits behind ``repro.solvers``
RPA007  no internal callers of the deprecated positional ``nv``
======  ==========================================================

Entry points: ``picola lint`` and ``python -m repro.analysis`` (same
flags).  Suppress one line with ``# repro: noqa[RPA001] -- why``, a
whole file with ``# repro: noqa-file[...]``, or record accepted debt
in a committed baseline (``--baseline`` / ``--update-baseline``).
Everything is pure ``ast``/``tokenize`` — linting never imports the
code under analysis.
"""

from .baseline import Baseline, BaselineEntry, split_by_baseline
from .cli import main, run_lint
from .engine import (
    AnalysisReport,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    Suppression,
    analyze,
)
from .report import LintResult, render_json, render_text
from .rules import DEFAULT_RULES, RULE_CLASSES, rules_by_id

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_RULES",
    "FileContext",
    "Finding",
    "LintResult",
    "ProjectRule",
    "RULE_CLASSES",
    "Rule",
    "Suppression",
    "analyze",
    "main",
    "render_json",
    "render_text",
    "rules_by_id",
    "run_lint",
    "split_by_baseline",
]
