"""Project-aware static analysis: AST lint rules for repo invariants.

PRs 1 and 3 threaded cooperative budgets, tracer spans, the
:class:`~repro.runtime.ReproError` taxonomy and the unified solver
registry through every encoder — this package *enforces* those
conventions so they cannot silently regress:

======  ==========================================================
RPA001  kernel loops must tick/forward the in-scope Budget/Deadline
RPA002  ``tracer.span(...)`` only as a ``with`` context manager
RPA003  no broad ``except`` that swallows failures
RPA004  solver modules raise the taxonomy, not builtin exceptions
RPA005  no unseeded randomness / wall clocks / bare-set iteration
RPA006  every public ``*_encode`` sits behind ``repro.solvers``
RPA007  no internal callers of the deprecated positional ``nv``
RPA008  bulk-kernel modules stay on the packed (no-wrapper) API
RPA009  the service layer speaks EncodeRequest/EncodeResponse
RPA010  shared mutable state on a thread path is lock-guarded
RPA011  no live lock/socket/file captured into a pool submission
RPA012  budgets thread through every Solver.solve call chain
RPA013  cached derived state is invalidated on every mutator exit
RPA014  no indefinite blocking call while holding a lock
======  ==========================================================

RPA010–RPA014 are *flow* rules: :mod:`repro.analysis.callgraph`
builds a whole-program symbol table + call graph with per-function
escape summaries (mutations, lock depths, blocking calls, thread and
pool spawns), and :mod:`repro.analysis.flow` proves the concurrency /
fork-safety invariants over the thread-reachable closure.

Entry points: ``picola lint`` and ``python -m repro.analysis`` (same
flags; ``--no-flow`` skips the whole-program pass, ``--jobs N`` fans
the per-file scan over the harness pool, ``--graph json`` dumps the
call graph, ``--format github`` emits CI annotations).  Suppress one
line with ``# repro: noqa[RPA001] -- why``, a whole file with
``# repro: noqa-file[...]``, or record accepted debt in a committed
baseline (``--baseline`` / ``--update-baseline``).  Everything is
pure ``ast``/``tokenize`` — linting never imports the code under
analysis.
"""

from .baseline import Baseline, BaselineEntry, split_by_baseline
from .callgraph import Program, build_program
from .cli import main, run_lint
from .engine import (
    AnalysisReport,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    ScanResult,
    Suppression,
    analyze,
    scan_file,
)
from .flow import program_for, thread_roots
from .report import LintResult, render_github, render_json, render_text
from .rules import DEFAULT_RULES, RULE_CLASSES, rules_by_id

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_RULES",
    "FileContext",
    "Finding",
    "LintResult",
    "Program",
    "ProjectRule",
    "RULE_CLASSES",
    "Rule",
    "ScanResult",
    "Suppression",
    "analyze",
    "build_program",
    "main",
    "program_for",
    "render_github",
    "render_json",
    "render_text",
    "rules_by_id",
    "run_lint",
    "scan_file",
    "split_by_baseline",
    "thread_roots",
]
