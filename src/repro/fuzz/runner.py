"""The fuzz campaign driver behind ``picola fuzz``.

A campaign is ``max_examples`` cases spread round-robin over the
selected generator families, each run through the
:func:`~repro.fuzz.oracle.run_case` oracle under a per-case budget.
Cases fan out over the parallel experiment engine (``--jobs``), with
results merged deterministically in submission order, so a campaign's
report is a pure function of ``(seed, config)`` — two runs produce
identical classifications and JSON modulo wall-clock seconds.

Fault-hardening mode (on by default) re-runs each case with
deterministic faults armed at the budget and oracle seams
(``solver.solve``, ``fuzz.verify``) and asserts the failure stays
*classified* — an armed timeout must classify as TIMEOUT, an armed
:class:`~repro.runtime.ReproError` as VIOLATION, and nothing may
escape the oracle.

Findings (VIOLATION / CRASH / failed hardening) are distilled with
:func:`~repro.fuzz.corpus.minimize_case` and written to the corpus
directory when one is configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..harness.parallel import Unit, run_units
from ..harness.shard import StreamWriter, build_meta, resolve_shard
from ..obs import resolve_tracer
from ..runtime import (
    InvalidSpecError,
    ReproError,
    SolverTimeout,
    faults,
)
from ..solvers import get_solver, list_solvers
from .corpus import entry_for_finding, minimize_case, save_entry
from .generators import (
    FuzzCase,
    generate_case,
    get_generator,
    list_generators,
)
from .oracle import (
    CLASSIFICATIONS,
    CRASH,
    FINDINGS,
    OK,
    TIMEOUT,
    VIOLATION,
    CaseOutcome,
    run_case,
)

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz"]

#: what each armed seam must classify as in the hardening pass
_HARDEN_EXPECT: Tuple[Tuple[str, str, Any, Tuple[str, ...]], ...] = (
    ("solver.solve", "timeout", SolverTimeout, (TIMEOUT,)),
    ("fuzz.verify", "error", ReproError, (VIOLATION,)),
)

#: a case-seed stride keeps per-family streams disjoint across cases
_SEED_STRIDE = 10007


@dataclass
class FuzzConfig:
    """Everything a campaign needs; validated by :meth:`check`."""

    solver: str = "picola"
    generators: Sequence[str] = ()
    max_examples: int = 100
    seed: int = 0
    scale: int = 24
    timeout: Optional[float] = 10.0
    jobs: int = 1
    harden: bool = True
    corpus: Optional[str] = None
    cosim_steps: int = 128
    #: ``"K/N"`` — run only this host's slice of the case list
    shard: Optional[str] = None
    #: JSONL results file, one line per classified case
    stream: Optional[str] = None

    def resolved_generators(self) -> Tuple[str, ...]:
        return tuple(self.generators) or list_generators()

    def params(self) -> Dict[str, Any]:
        """The campaign identity for shard/stream meta blocks —
        everything that shapes the case list and its classification
        (not the host-local knobs: jobs, corpus, shard, stream)."""
        return {
            "solver": self.solver,
            "generators": list(self.resolved_generators()),
            "max_examples": self.max_examples,
            "seed": self.seed,
            "scale": self.scale,
            "timeout": self.timeout,
            "harden": self.harden,
            "cosim_steps": self.cosim_steps,
        }

    def check(self) -> None:
        """Raise :class:`InvalidSpecError` on a bad configuration."""
        if self.max_examples < 1:
            raise InvalidSpecError("max-examples must be >= 1")
        if self.scale < 2:
            raise InvalidSpecError("scale must be >= 2")
        if self.solver not in list_solvers():
            raise InvalidSpecError(
                f"unknown solver {self.solver!r}; "
                f"available: {list_solvers()}"
            )
        specs = [get_generator(g) for g in self.resolved_generators()]
        get_solver(self.solver)  # consistency with the registry menu
        if self.solver == "mustang":
            lacking = [s.name for s in specs if not s.makes_fsm]
            if lacking:
                raise InvalidSpecError(
                    f"solver 'mustang' needs FSM-backed cases; "
                    f"generators {lacking} produce none "
                    "(use --generator fsm)"
                )


@dataclass
class FuzzReport:
    """Campaign summary: per-case outcomes plus aggregate counts."""

    config: FuzzConfig
    outcomes: List[CaseOutcome] = field(default_factory=list)
    corpus_files: List[str] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {c: 0 for c in CLASSIFICATIONS}
        for outcome in self.outcomes:
            counts[outcome.classification] += 1
        return counts

    @property
    def findings(self) -> List[CaseOutcome]:
        return [o for o in self.outcomes if o.is_finding]

    @property
    def n_hardening_failures(self) -> int:
        return sum(1 for o in self.outcomes if o.hardened is False)

    @property
    def n_findings(self) -> int:
        return len(self.findings)

    def render(self) -> str:
        lines = [
            f"fuzz: solver={self.config.solver} "
            f"seed={self.config.seed} "
            f"examples={len(self.outcomes)} "
            f"generators={','.join(self.config.resolved_generators())}"
        ]
        for outcome in self.findings:
            lines.append("  " + outcome.line())
        counts = self.counts
        summary = "  ".join(
            f"{name}={counts[name]}" for name in CLASSIFICATIONS
        )
        hardened = sum(1 for o in self.outcomes if o.hardened)
        if any(o.hardened is not None for o in self.outcomes):
            summary += (
                f"  hardened={hardened}/"
                f"{sum(1 for o in self.outcomes if o.hardened is not None)}"
            )
        lines.append(summary)
        if self.corpus_files:
            for path in self.corpus_files:
                lines.append(f"  wrote {path}")
        lines.append(
            f"{self.n_findings} finding(s)"
            if self.n_findings
            else "no findings"
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "solver": self.config.solver,
            "seed": self.config.seed,
            "scale": self.config.scale,
            "generators": list(self.config.resolved_generators()),
            "counts": self.counts,
            "n_findings": self.n_findings,
            "hardening_failures": self.n_hardening_failures,
            "corpus_files": [
                path.replace("\\", "/") for path in self.corpus_files
            ],
            "cases": [o.to_dict() for o in self.outcomes],
        }


# ----------------------------------------------------------------------
# worker side (module-level: picklable for the process pool)
# ----------------------------------------------------------------------
def _harden_case(
    case: FuzzCase, config: FuzzConfig, outcome: CaseOutcome
) -> None:
    """Re-run ``case`` with faults armed at the seams; annotate."""
    problems: List[str] = []
    for site, _kind, exc, expected in _HARDEN_EXPECT:
        # a seam deeper than where the baseline run already stopped
        # (infeasible / out of budget before verification) never trips,
        # so the baseline classification is also acceptable there
        if outcome.classification not in (OK, VIOLATION):
            expected = expected + (outcome.classification,)
        with faults.inject(site, exc):
            try:
                hardened = run_case(
                    case, config.solver,
                    timeout=config.timeout,
                    oracle_seed=config.seed,
                    cosim_steps=config.cosim_steps,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as hexc:  # repro: noqa[RPA003] -- an exception escaping the oracle under injection is exactly the hardening failure being hunted
                problems.append(
                    f"{site}: escaped the oracle with "
                    f"{type(hexc).__name__}: {hexc}"
                )
                continue
        if hardened.classification not in expected:
            problems.append(
                f"{site}: armed {exc.__name__} classified as "
                f"{hardened.classification}, expected "
                f"{'/'.join(expected)}"
            )
    outcome.hardened = not problems
    outcome.hardened_detail = "; ".join(problems)


def _fuzz_unit(
    family: str, case_seed: int, config: FuzzConfig
) -> CaseOutcome:
    """Generate + classify one case (runs inside pool workers)."""
    try:
        case = generate_case(family, case_seed, config.scale)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # repro: noqa[RPA003] -- a generator crash is a campaign finding, not a harness abort
        return CaseOutcome(
            key=f"{family}:{case_seed}",
            family=family,
            seed=case_seed,
            solver=config.solver,
            classification=CRASH,
            detail=f"generator: {type(exc).__name__}: {exc}",
        )
    outcome = run_case(
        case, config.solver,
        timeout=config.timeout,
        oracle_seed=config.seed,
        cosim_steps=config.cosim_steps,
    )
    if config.harden:
        _harden_case(case, config, outcome)
    if outcome.is_finding:
        outcome.case_data = case.to_dict()
    return outcome


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _distill(
    report: FuzzReport, tracer, verbose: bool
) -> None:
    """Minimize the findings and persist them to the corpus."""
    config = report.config
    if config.corpus is None:
        return
    for outcome in report.findings:
        if outcome.case_data is None:
            continue
        case = FuzzCase.from_dict(outcome.case_data)
        wanted = outcome.classification

        def reproduces(candidate: FuzzCase) -> bool:
            check = run_case(
                candidate, config.solver,
                timeout=config.timeout,
                oracle_seed=config.seed,
                cosim_steps=config.cosim_steps,
            )
            return check.classification == wanted

        with tracer.span("fuzz/distill", key=outcome.key):
            if wanted in FINDINGS:
                case = minimize_case(case, reproduces)
            entry = entry_for_finding(outcome, case)
            path = save_entry(config.corpus, entry)
        report.corpus_files.append(path)
        if verbose:
            print(f"  distilled {outcome.key} -> {path}")


def run_fuzz(
    config: FuzzConfig,
    *,
    tracer=None,
    verbose: bool = False,
) -> FuzzReport:
    """Run one campaign; deterministic for a fixed config.

    With ``config.shard`` (``K/N``) only this host's deterministic
    slice of the case list runs; ``config.stream`` appends one JSON
    line per classified case so progress can be tailed and ``picola
    merge --from-stream`` can rebuild the combined campaign report.
    """
    config.check()
    tracer = resolve_tracer(tracer)
    spec = resolve_shard(config.shard)
    families = config.resolved_generators()
    units = []
    for i in range(config.max_examples):
        family = families[i % len(families)]
        case_seed = config.seed + _SEED_STRIDE * (i // len(families))
        units.append(
            Unit(
                key=f"{family}:{case_seed}",
                fn=_fuzz_unit,
                args=(family, case_seed, config),
            )
        )
    writer: Optional[StreamWriter] = None
    if spec is not None or config.stream is not None:
        meta = build_meta(
            "fuzz", [u.key for u in units], config.params(), spec
        )
        if config.stream is not None:
            writer = StreamWriter(config.stream, meta)
    if spec is not None:
        units = [u for i, u in enumerate(units) if spec.owns(i)]
    report = FuzzReport(config=config)
    with tracer.span(
        "fuzz/campaign", solver=config.solver, seed=config.seed,
        examples=config.max_examples,
    ):
        try:
            for unit, result in zip(
                units, run_units(units, jobs=config.jobs, tracer=tracer)
            ):
                if result.ok:
                    outcome = result.value
                else:
                    # the oracle never raises, so a failed unit means
                    # the harness itself broke in the worker — a finding
                    outcome = CaseOutcome(
                        key=unit.key,
                        family=unit.args[0],
                        seed=unit.args[1],
                        solver=config.solver,
                        classification=(
                            TIMEOUT
                            if result.status in ("timeout", "budget")
                            else CRASH
                        ),
                        detail=f"harness: {result.error}",
                        seconds=result.seconds,
                    )
                report.outcomes.append(outcome)
                if writer is not None:
                    writer.emit_cell(unit.key, outcome.to_dict())
                if verbose and outcome.is_finding:
                    print("  " + outcome.line())
        finally:
            if writer is not None:
                writer.close()
        _distill(report, tracer, verbose)
    return report
