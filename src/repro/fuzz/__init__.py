"""End-to-end pipeline fuzzing: generators, oracle, corpus, campaigns.

The subsystem behind ``picola fuzz``:

* :mod:`repro.fuzz.generators` — seeded workload generators (random,
  FSM-backed, Baer bounded-length prefix groups, Dubé 2-D grids,
  pathological shapes), all pure functions of ``(seed, scale)``;
* :mod:`repro.fuzz.oracle` — :func:`run_case` dispatches an instance
  through the solver registry under a budget, verifies the result
  (injectivity, code-length bounds, honest satisfaction claims,
  co-simulation) and classifies every outcome — OK / INFEASIBLE /
  TIMEOUT / VIOLATION / CRASH — without ever crashing the harness;
* :mod:`repro.fuzz.corpus` — findings minimized and committed as
  content-addressed JSON regressions under ``tests/corpus/``;
* :mod:`repro.fuzz.runner` — deterministic campaigns over the parallel
  experiment engine, with a fault-hardening pass that re-runs each
  case with faults armed at the budget/oracle seams;
* :mod:`repro.fuzz.strategies` — optional hypothesis adapters.
"""

from .corpus import (
    CorpusEntry,
    entry_for_finding,
    load_corpus,
    minimize_case,
    parser_entry,
    replay_entry,
    save_entry,
)
from .generators import (
    FuzzCase,
    GeneratorSpec,
    generate_case,
    get_generator,
    list_generators,
    register_generator,
)
from .oracle import (
    CLASSIFICATIONS,
    CRASH,
    FINDINGS,
    INFEASIBLE,
    OK,
    TIMEOUT,
    VIOLATION,
    CaseOutcome,
    run_case,
    verify_result,
)
from .runner import FuzzConfig, FuzzReport, run_fuzz

__all__ = [
    # generators
    "FuzzCase",
    "GeneratorSpec",
    "register_generator",
    "get_generator",
    "list_generators",
    "generate_case",
    # oracle
    "OK",
    "INFEASIBLE",
    "TIMEOUT",
    "VIOLATION",
    "CRASH",
    "CLASSIFICATIONS",
    "FINDINGS",
    "CaseOutcome",
    "run_case",
    "verify_result",
    # corpus
    "CorpusEntry",
    "entry_for_finding",
    "parser_entry",
    "save_entry",
    "load_corpus",
    "replay_entry",
    "minimize_case",
    # campaigns
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
]
