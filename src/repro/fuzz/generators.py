"""Seeded workload generators: random and structured fuzz instances.

Every generator is a pure function of ``(seed, scale)`` registered
under a family name, so a fuzz run is replayable from its base seed
alone and a distilled corpus entry records exactly how its instance
was built.  ``scale`` bounds the symbol count; families pick their
actual size from the seeded rng (skewed small so shrunk cases stay
readable, but reaching ``scale`` symbols — thousands, if asked).

Families
--------
* ``random``          — unstructured constraint sets over fresh symbols;
* ``fsm``             — synthetic controllers (:func:`synthesize_fsm`)
  with face constraints derived by symbolic minimization, enabling the
  co-simulation oracle;
* ``bounded-length``  — prefix-group (laminar) families from bounded-
  length code-assignment, after Baer's *D-ary Bounded-Length Huffman
  Coding*: every constraint is an aligned code-prefix group, so the
  instance is provably fully satisfiable at the recorded ``nv``;
* ``grid``            — 2-D constrained patterns after Dubé: symbols on
  an ``r x c`` grid with row/column/window faces, satisfiable under the
  product code length but adversarial at minimum length;
* ``pathological``    — degenerate shapes (duplicates, singletons, the
  full set, deep nested chains, overlapping cliques) that stress the
  solvers' edge handling rather than their optimization.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..encoding import ConstraintSet, FaceConstraint
from ..fsm import Fsm, format_kiss, parse_kiss, synthesize_fsm
from ..runtime import InvalidSpecError

__all__ = [
    "FuzzCase",
    "GeneratorSpec",
    "register_generator",
    "get_generator",
    "list_generators",
    "generate_case",
]


@dataclass
class FuzzCase:
    """One generated instance: a constraint set, optionally its FSM.

    ``nv`` pins the requested code length (``None`` = the minimum);
    ``satisfiable`` marks instances *constructed* to be fully
    satisfiable at ``nv``, which unlocks the stronger oracle for
    provably optimal solvers.
    """

    family: str
    seed: int
    cset: ConstraintSet
    fsm: Optional[Fsm] = None
    nv: Optional[int] = None
    satisfiable: bool = False
    note: str = ""

    @property
    def key(self) -> str:
        return f"{self.family}:{self.seed}"

    def describe(self) -> str:
        shape = (
            f"{self.cset.n_symbols} symbols, "
            f"{len(self.cset.constraints)} constraints"
        )
        if self.fsm is not None:
            shape += f", fsm {self.fsm.stats()}"
        return f"{self.key} ({shape})"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe serialization (the corpus file payload)."""
        return {
            "family": self.family,
            "seed": self.seed,
            "symbols": list(self.cset.symbols),
            "constraints": [
                {
                    "symbols": sorted(c.symbols),
                    "kind": c.kind,
                    "weight": c.weight,
                }
                for c in self.cset.constraints
            ],
            "kiss": format_kiss(self.fsm) if self.fsm is not None else None,
            "nv": self.nv,
            "satisfiable": self.satisfiable,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        cset = ConstraintSet(
            data["symbols"],
            [
                FaceConstraint(
                    c["symbols"],
                    kind=c.get("kind", "original"),
                    weight=c.get("weight", 1.0),
                )
                for c in data["constraints"]
            ],
        )
        kiss = data.get("kiss")
        fsm = parse_kiss(kiss, name="corpus") if kiss else None
        return cls(
            family=data["family"],
            seed=data["seed"],
            cset=cset,
            fsm=fsm,
            nv=data.get("nv"),
            satisfiable=bool(data.get("satisfiable", False)),
            note=data.get("note", ""),
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratorSpec:
    """A named generator: builds one :class:`FuzzCase` per seed."""

    name: str
    fn: Callable[[int, int], FuzzCase] = field(compare=False)
    makes_fsm: bool = False
    doc: str = ""


_REGISTRY: Dict[str, GeneratorSpec] = {}


def register_generator(
    name: str,
    fn: Callable[[int, int], FuzzCase],
    *,
    makes_fsm: bool = False,
    doc: str = "",
    replace: bool = False,
) -> GeneratorSpec:
    """Register ``fn(seed, scale) -> FuzzCase`` under ``name``."""
    if not name:
        raise InvalidSpecError("generator needs a non-empty name")
    if name in _REGISTRY and not replace:
        raise InvalidSpecError(
            f"generator {name!r} already registered "
            "(pass replace=True to override)"
        )
    spec = GeneratorSpec(name=name, fn=fn, makes_fsm=makes_fsm, doc=doc)
    _REGISTRY[name] = spec
    return spec


def get_generator(name: str) -> GeneratorSpec:
    """Look a generator up by name (with the menu on a miss)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidSpecError(
            f"unknown generator {name!r}; available: {list_generators()}"
        ) from None


def list_generators() -> Tuple[str, ...]:
    """The registered family names, sorted."""
    return tuple(sorted(_REGISTRY))


def generate_case(family: str, seed: int, scale: int = 24) -> FuzzCase:
    """Build the deterministic instance of ``family`` at ``seed``."""
    if scale < 2:
        raise InvalidSpecError("scale must be >= 2 symbols")
    return get_generator(family).fn(seed, scale)


def _rng(family: str, seed: int) -> random.Random:
    # crc32 keeps streams of different families decorrelated and is
    # stable across processes (str.__hash__ is salted)
    return random.Random(zlib.crc32(family.encode()) * 1000003 + seed)


def _size(rng: random.Random, scale: int, lo: int = 2) -> int:
    """Symbol count in [lo, scale], quadratically skewed small."""
    if scale <= lo:
        return lo
    return lo + int((scale - lo) * rng.random() ** 2)


# ----------------------------------------------------------------------
# family: random
# ----------------------------------------------------------------------
def gen_random(seed: int, scale: int) -> FuzzCase:
    """Unstructured constraint sets: random subsets of fresh symbols."""
    rng = _rng("random", seed)
    n = _size(rng, scale)
    symbols = [f"s{i}" for i in range(n)]
    n_constraints = rng.randint(0, min(3 * n, 48))
    constraints: List[FaceConstraint] = []
    for _ in range(n_constraints):
        # sizes skew small (real face constraints mostly do), with an
        # occasional trivial singleton / full-set row to stress the
        # nontrivial() filtering paths
        size = min(n, 2 + int(rng.expovariate(0.6)))
        if rng.random() < 0.06:
            size = rng.choice((1, n))
        members = rng.sample(symbols, size)
        weight = float(rng.choice((1, 1, 1, 2, 4)))
        constraints.append(FaceConstraint(members, weight=weight))
    return FuzzCase(
        family="random", seed=seed,
        cset=ConstraintSet(symbols, constraints),
    )


# ----------------------------------------------------------------------
# family: fsm
# ----------------------------------------------------------------------
def gen_fsm(seed: int, scale: int) -> FuzzCase:
    """Synthetic controller + derived face constraints (co-sim oracle)."""
    from ..encoding import derive_face_constraints

    rng = _rng("fsm", seed)
    # symbolic minimization and co-simulation dominate the case cost,
    # so the state count caps below the raw symbol scale
    n_states = _size(rng, min(scale, 48))
    n_inputs = rng.randint(1, 4)
    n_outputs = rng.randint(1, 5)
    n_terms = rng.randint(n_states, 4 * n_states)
    fsm = synthesize_fsm(
        f"fuzz{seed}", n_inputs, n_outputs, n_states, n_terms,
        seed=seed,
    )
    return FuzzCase(
        family="fsm", seed=seed,
        cset=derive_face_constraints(fsm), fsm=fsm,
    )


# ----------------------------------------------------------------------
# family: bounded-length (Baer-style prefix groups)
# ----------------------------------------------------------------------
def gen_bounded_length(seed: int, scale: int) -> FuzzCase:
    """Bounded-length code-assignment instances (laminar prefix groups).

    Conceptually assign symbol ``i`` the natural code ``i`` in ``nv``
    bits, then constrain random *aligned prefix groups* — the leaf
    sets of internal nodes of a bounded-depth code tree.  Every such
    group lies exactly on the face fixing its prefix, so the instance
    is fully satisfiable at ``nv``; the symbol order is shuffled so
    solvers must rediscover the tree rather than read it off the
    naming.
    """
    rng = _rng("bounded-length", seed)
    n = _size(rng, scale, lo=3)
    min_nv = (n - 1).bit_length()
    nv = min_nv + rng.choice((0, 0, 0, 1))
    conceptual = [f"s{i}" for i in range(n)]
    groups: List[frozenset] = []
    seen = set()
    for _ in range(rng.randint(1, max(2, n // 2) + 4)):
        length = rng.randint(1, nv - 1) if nv > 1 else 1
        prefix = rng.randrange(1 << length)
        lo = prefix << (nv - length)
        hi = lo + (1 << (nv - length))
        members = frozenset(
            conceptual[i] for i in range(n) if lo <= i < hi
        )
        if 2 <= len(members) < n and members not in seen:
            seen.add(members)
            groups.append(members)
    symbols = list(conceptual)
    rng.shuffle(symbols)
    weights = [float(rng.randint(1, 9)) for _ in groups]
    constraints = [
        FaceConstraint(g, weight=w) for g, w in zip(groups, weights)
    ]
    return FuzzCase(
        family="bounded-length", seed=seed,
        cset=ConstraintSet(symbols, constraints),
        nv=nv, satisfiable=True,
        note=f"prefix groups of a depth-{nv} code tree",
    )


# ----------------------------------------------------------------------
# family: grid (Dubé-style 2-D constrained patterns)
# ----------------------------------------------------------------------
def gen_grid(seed: int, scale: int) -> FuzzCase:
    """2-D constrained patterns: symbols on a grid, faces on its axes.

    Rows and columns of an ``r x c`` grid are simultaneously
    satisfiable under the product code (row bits ++ column bits); at
    the minimum code length the same constraints are usually in
    conflict, which makes this the adversarial counterpart of
    ``bounded-length``.  A sprinkle of contiguous 2-D windows rides
    along.
    """
    rng = _rng("grid", seed)
    r = rng.randint(2, max(2, min(12, scale // 2)))
    c = rng.randint(2, max(2, min(12, scale // r)))
    symbols = [f"g{i}_{j}" for i in range(r) for j in range(c)]
    constraints: List[FaceConstraint] = []
    n = r * c
    for i in range(r):
        row = [f"g{i}_{j}" for j in range(c)]
        if 2 <= len(row) < n:
            constraints.append(FaceConstraint(row))
    for j in range(c):
        col = [f"g{i}_{j}" for i in range(r)]
        if 2 <= len(col) < n:
            constraints.append(FaceConstraint(col))
    windows_only_axes = rng.random() < 0.5
    if not windows_only_axes:
        for _ in range(rng.randint(1, 4)):
            hi = rng.randint(0, r - 2)
            hj = rng.randint(0, c - 2)
            window = [
                f"g{i}_{j}"
                for i in (hi, hi + 1)
                for j in (hj, hj + 1)
            ]
            if len(window) < n:
                constraints.append(FaceConstraint(window, weight=2.0))
    rbits = (r - 1).bit_length()
    cbits = (c - 1).bit_length()
    product_nv = max(1, rbits + cbits)
    use_product = windows_only_axes and rng.random() < 0.5
    return FuzzCase(
        family="grid", seed=seed,
        cset=ConstraintSet(symbols, constraints),
        nv=product_nv if use_product else None,
        satisfiable=use_product,
        note=f"{r}x{c} grid"
        + (" @ product length" if use_product else ""),
    )


# ----------------------------------------------------------------------
# family: pathological
# ----------------------------------------------------------------------
def gen_pathological(seed: int, scale: int) -> FuzzCase:
    """Degenerate constraint shapes that stress edge handling."""
    rng = _rng("pathological", seed)
    n = _size(rng, max(4, min(scale, 32)), lo=2)
    symbols = [f"p{i}" for i in range(n)]
    shape = rng.choice(
        ("empty", "trivial", "nested", "clique", "duplicates")
    )
    constraints: List[FaceConstraint] = []
    if shape == "trivial":
        constraints = [
            FaceConstraint([symbols[0]]),
            FaceConstraint(symbols),
        ]
    elif shape == "nested":
        # a maximal chain s0..sk ⊃ s0..s(k-1) ⊃ ... ⊃ s0,s1
        for k in range(2, n):
            constraints.append(FaceConstraint(symbols[:k]))
    elif shape == "clique":
        # all pairs over a small core: mutually incompatible beyond
        # the core's supercube
        core = symbols[: min(n, 5)]
        for i in range(len(core)):
            for j in range(i + 1, len(core)):
                constraints.append(FaceConstraint([core[i], core[j]]))
    elif shape == "duplicates":
        members = rng.sample(symbols, min(n, 3))
        constraints = [FaceConstraint(members) for _ in range(4)]
    return FuzzCase(
        family="pathological", seed=seed,
        cset=ConstraintSet(symbols, constraints),
        note=f"shape={shape}",
    )


for _name, _fn, _is_fsm, _doc in (
    ("random", gen_random, False,
     "unstructured random constraint sets"),
    ("fsm", gen_fsm, True,
     "synthetic controllers with derived face constraints"),
    ("bounded-length", gen_bounded_length, False,
     "satisfiable laminar prefix groups (Baer bounded-length codes)"),
    ("grid", gen_grid, False,
     "2-D row/column/window patterns (Dube constrained patterns)"),
    ("pathological", gen_pathological, False,
     "degenerate shapes: duplicates, chains, cliques, trivial rows"),
):
    register_generator(_name, _fn, makes_fsm=_is_fsm, doc=_doc)
del _name, _fn, _is_fsm, _doc
