"""The encode→verify oracle: run one fuzz case, classify the outcome.

:func:`run_case` dispatches a generated instance through the
:mod:`repro.solvers` registry under a fresh :class:`~repro.runtime.Budget`
and then *verifies* the result against properties every encoder must
honour regardless of quality:

* the encoding is injective over exactly the case's symbols;
* every code fits the returned width, and the width equals the
  requested (or minimum) code length;
* satisfaction claims are honest — a constraint the solver reports as
  satisfied really has an empty intruder set;
* provably-optimal results on instances *constructed* satisfiable
  (``case.satisfiable``) satisfy every nontrivial constraint;
* for FSM-backed cases, the encoded machine refines the symbolic one:
  the PLA is built, minimized and co-simulated against the flow table
  over a seeded input sequence.

Every outcome is classified — the harness never crashes:

=============  =======================================================
``OK``         solved and all oracle checks passed
``INFEASIBLE`` the solver reported the instance unsolvable
               (:class:`~repro.runtime.InfeasibleError`)
``TIMEOUT``    a budget or deadline ran out
               (:class:`~repro.runtime.BudgetExceeded`)
``VIOLATION``  an oracle check failed, the encoded machine diverged in
               co-simulation, or the solver raised any other
               :class:`~repro.runtime.ReproError` on a well-formed
               instance
``CRASH``      any exception outside the ``ReproError`` taxonomy —
               always a finding
=============  =======================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..espresso import espresso_pla
from ..fsm import CosimMismatch, cosimulate, encode_fsm
from ..obs import resolve_tracer
from ..runtime import (
    Budget,
    BudgetExceeded,
    InfeasibleError,
    ReproError,
    faults,
)
from ..solvers import get_solver
from .generators import FuzzCase

__all__ = [
    "OK",
    "INFEASIBLE",
    "TIMEOUT",
    "VIOLATION",
    "CRASH",
    "CLASSIFICATIONS",
    "FINDINGS",
    "CaseOutcome",
    "run_case",
    "verify_result",
]

OK = "OK"
INFEASIBLE = "INFEASIBLE"
TIMEOUT = "TIMEOUT"
VIOLATION = "VIOLATION"
CRASH = "CRASH"

#: every classification, in severity order
CLASSIFICATIONS = (OK, INFEASIBLE, TIMEOUT, VIOLATION, CRASH)

#: the classifications that count as findings (go to the corpus)
FINDINGS = (VIOLATION, CRASH)


@dataclass
class CaseOutcome:
    """One classified fuzz-case result (picklable for ``--jobs``)."""

    key: str
    family: str
    seed: int
    solver: str
    classification: str
    detail: str = ""
    seconds: float = 0.0
    n_symbols: int = 0
    n_constraints: int = 0
    #: None = hardening pass not run; otherwise did it hold
    hardened: Optional[bool] = None
    hardened_detail: str = ""
    #: serialized FuzzCase, attached to findings for distillation
    case_data: Optional[Dict[str, Any]] = None

    @property
    def is_finding(self) -> bool:
        return self.classification in FINDINGS or self.hardened is False

    def line(self) -> str:
        extra = f" [{self.detail}]" if self.detail else ""
        hard = ""
        if self.hardened is False:
            hard = f" HARDENING-FAILED[{self.hardened_detail}]"
        return (
            f"{self.key:<24} {self.solver:<8} "
            f"{self.classification:<10}{extra}{hard}"
        )

    # -- wire codec (shard streams, campaign JSON) ---------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "key": self.key,
            "family": self.family,
            "seed": self.seed,
            "solver": self.solver,
            "classification": self.classification,
            "detail": self.detail,
            "seconds": self.seconds,
            "n_symbols": self.n_symbols,
            "n_constraints": self.n_constraints,
            "hardened": self.hardened,
            "hardened_detail": self.hardened_detail,
        }
        if self.case_data is not None:
            data["case_data"] = self.case_data
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CaseOutcome":
        return cls(
            key=data["key"],
            family=data["family"],
            seed=data["seed"],
            solver=data["solver"],
            classification=data["classification"],
            detail=data.get("detail", ""),
            seconds=data.get("seconds", 0.0),
            n_symbols=data.get("n_symbols", 0),
            n_constraints=data.get("n_constraints", 0),
            hardened=data.get("hardened"),
            hardened_detail=data.get("hardened_detail", ""),
            case_data=data.get("case_data"),
        )


def _solver_options(
    solver_name: str, case: FuzzCase, seed: int
) -> Dict[str, Any]:
    solver = get_solver(solver_name)
    options: Dict[str, Any] = {}
    if case.nv is not None and "nv" in solver.option_keys:
        options["nv"] = case.nv
    if "seed" in solver.option_keys:
        options["seed"] = seed
    if "fsm" in solver.option_keys and case.fsm is not None:
        options["fsm"] = case.fsm
    return options


def verify_result(
    case: FuzzCase,
    result,
    *,
    budget: Optional[Budget] = None,
    cosim_steps: int = 128,
    cosim_seed: int = 0,
    tracer=None,
) -> List[str]:
    """Check one :class:`~repro.solvers.EncodeResult`; returns problems.

    Raises :class:`CosimMismatch` straight through (the caller maps it
    to ``VIOLATION`` with the mismatch message) and lets budget blows
    inside the espresso step surface as ``TIMEOUT``.
    """
    tracer = resolve_tracer(tracer)
    faults.trip("fuzz.verify", case.family)
    problems: List[str] = []
    encoding = result.encoding
    cset = case.cset

    if tuple(sorted(encoding.symbols)) != tuple(sorted(cset.symbols)):
        problems.append("encoding does not cover the case's symbols")
        return problems  # nothing below is meaningful
    if not encoding.is_injective():
        problems.append("encoding is not injective")
    expected_nv = case.nv or cset.min_code_length()
    if encoding.n_bits != expected_nv:
        problems.append(
            f"code length {encoding.n_bits} != expected {expected_nv}"
        )
    for s in encoding.symbols:
        code = encoding.code_of(s)
        if code < 0 or code >> encoding.n_bits:
            problems.append(
                f"code of {s} does not fit {encoding.n_bits} bits"
            )
            break

    claimed = getattr(result.raw, "satisfied", None)
    if isinstance(claimed, list):  # picola: the claimed-satisfied rows
        for constraint in claimed:
            if encoding.intruders(constraint.symbols):
                problems.append(
                    f"claimed-satisfied constraint "
                    f"{sorted(constraint.symbols)} has intruders"
                )
                break
    if (
        case.satisfiable
        and result.stats.get("optimal")
        and not problems
    ):
        for constraint in cset.nontrivial():
            if encoding.intruders(constraint.symbols):
                problems.append(
                    "instance is satisfiable by construction but the "
                    f"optimal solver left {sorted(constraint.symbols)} "
                    "unsatisfied"
                )
                break

    if case.fsm is not None and not problems:
        fsm = case.fsm
        with tracer.span("fuzz/cosim", fsm=fsm.name):
            codes = {s: encoding.code_of(s) for s in encoding.symbols}
            pla = encode_fsm(fsm, codes, n_bits=encoding.n_bits)
            minimized = espresso_pla(
                pla, use_lastgasp=False, budget=budget, tracer=tracer
            )
            cosimulate(
                fsm, minimized, codes, encoding.n_bits,
                steps=cosim_steps, seed=cosim_seed,
            )
    return problems


def run_case(
    case: FuzzCase,
    solver: str = "picola",
    *,
    timeout: Optional[float] = None,
    max_nodes: Optional[int] = None,
    oracle_seed: int = 0,
    cosim_steps: int = 128,
    tracer=None,
) -> CaseOutcome:
    """Encode ``case`` with ``solver``, verify, classify.  Never raises.

    ``timeout``/``max_nodes`` build the per-case :class:`Budget` that
    covers both the encode step and the oracle's espresso run, so a
    pathological instance degrades to ``TIMEOUT`` instead of wedging
    the campaign.
    """
    tracer = resolve_tracer(tracer)
    outcome = CaseOutcome(
        key=case.key,
        family=case.family,
        seed=case.seed,
        solver=solver,
        classification=OK,
        n_symbols=case.cset.n_symbols,
        n_constraints=len(case.cset.constraints),
    )
    t0 = time.perf_counter()
    try:
        with tracer.span(
            "fuzz/case", family=case.family, seed=case.seed,
            solver=solver,
        ):
            faults.trip("fuzz.case", case.family)
            budget = Budget(max_nodes=max_nodes, seconds=timeout)
            result = get_solver(solver).solve(
                case.cset,
                options=_solver_options(solver, case, oracle_seed),
                budget=budget,
                tracer=tracer,
            )
            problems = verify_result(
                case, result,
                budget=budget,
                cosim_steps=cosim_steps,
                cosim_seed=oracle_seed,
                tracer=tracer,
            )
        if problems:
            outcome.classification = VIOLATION
            outcome.detail = "; ".join(problems)
    except InfeasibleError as exc:
        outcome.classification = INFEASIBLE
        outcome.detail = str(exc)
    except BudgetExceeded as exc:
        outcome.classification = TIMEOUT
        outcome.detail = str(exc)
    except CosimMismatch as exc:
        outcome.classification = VIOLATION
        outcome.detail = f"cosim: {exc}"
    except ReproError as exc:
        # classified, but unexpected on a well-formed instance: the
        # solver broke its contract (e.g. rejected generated input)
        outcome.classification = VIOLATION
        outcome.detail = f"{type(exc).__name__}: {exc}"
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # repro: noqa[RPA003] -- this IS the fuzz oracle's finding boundary; unclassified exceptions become CRASH outcomes
        outcome.classification = CRASH
        outcome.detail = f"{type(exc).__name__}: {exc}"
    outcome.seconds = time.perf_counter() - t0
    tracer.count(f"fuzz.{outcome.classification.lower()}")
    return outcome
