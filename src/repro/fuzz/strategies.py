"""Hypothesis strategies over the fuzz generators.

Thin adapters that let property-based tests draw the same instances
the ``picola fuzz`` campaign generates — a drawn case prints as its
``(family, seed)`` pair, so a shrunk hypothesis failure is immediately
replayable with ``picola fuzz --generator <family> --seed <seed>`` or
:func:`repro.fuzz.generate_case`.

Hypothesis is an optional dependency of the library (the CLI campaign
never needs it); importing this module without it raises a classified
:class:`~repro.runtime.InvalidSpecError` at first use, not at import.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runtime import InvalidSpecError
from .generators import generate_case, list_generators

__all__ = ["fuzz_cases", "constraint_sets", "require_hypothesis"]

try:  # gated: the library must import without hypothesis installed
    from hypothesis import strategies as _st
except ImportError:  # pragma: no cover - exercised only without dep
    _st = None


def require_hypothesis():
    """Return ``hypothesis.strategies`` or raise a classified error."""
    if _st is None:
        raise InvalidSpecError(
            "hypothesis is not installed; repro.fuzz.strategies needs "
            "it (the picola fuzz CLI campaign does not)"
        )
    return _st


def fuzz_cases(
    families: Optional[Sequence[str]] = None,
    *,
    max_seed: int = 10_000,
    scale: int = 24,
):
    """Strategy drawing :class:`~repro.fuzz.FuzzCase` instances.

    Draws a family and a seed and materializes the deterministic case,
    so hypothesis shrinking moves through (family, seed) space — every
    minimal counterexample stays replayable outside hypothesis.
    """
    st = require_hypothesis()
    names = tuple(families) if families else list_generators()
    for name in names:
        if name not in list_generators():
            raise InvalidSpecError(
                f"unknown generator {name!r}; "
                f"available: {list_generators()}"
            )
    return st.builds(
        generate_case,
        st.sampled_from(names),
        st.integers(min_value=0, max_value=max_seed),
        st.just(scale),
    )


def constraint_sets(
    families: Optional[Sequence[str]] = None,
    *,
    max_seed: int = 10_000,
    scale: int = 24,
):
    """Strategy drawing bare :class:`~repro.encoding.ConstraintSet`\\ s."""
    return fuzz_cases(
        families, max_seed=max_seed, scale=scale
    ).map(lambda case: case.cset)
