"""The fuzz corpus: distilled findings committed as regression tests.

Every finding a fuzz campaign surfaces is *minimized* (constraints,
then symbols, then the FSM are dropped while the failure reproduces)
and written as one small JSON file under the corpus directory —
``tests/corpus/`` in this repository — where CI replays it forever,
the way schemathesis keeps ``test-corpus/`` next to its generation
strategies.

Entry kinds
-----------
* ``case``  — a serialized :class:`~repro.fuzz.FuzzCase` plus the
  solver that failed on it.  ``expect`` records the classification a
  *fixed* tree must produce; a fresh finding is written with
  ``expect: null``, which replays green only once the instance stops
  being a finding (VIOLATION/CRASH).
* ``kiss`` / ``pla`` — raw malformed text that must raise
  :class:`~repro.runtime.ParseError`; regressions for every parser
  crash class the generators surfaced.

File names are content-addressed (``<kind>-<family>-<digest>.json``),
so re-discovering a known failure is idempotent.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..runtime import InvalidSpecError, ParseError, faults
from .generators import FuzzCase
from .oracle import FINDINGS, CaseOutcome, run_case

__all__ = [
    "CorpusEntry",
    "entry_for_finding",
    "parser_entry",
    "save_entry",
    "load_corpus",
    "replay_entry",
    "minimize_case",
]

SCHEMA = 1

#: replay timeout: corpus entries are minimized, so generous is cheap
REPLAY_TIMEOUT = 30.0


@dataclass
class CorpusEntry:
    """One corpus file, parsed."""

    kind: str  # "case" | "kiss" | "pla"
    data: Dict[str, Any]
    path: Optional[str] = None

    @property
    def name(self) -> str:
        return os.path.basename(self.path) if self.path else "<memory>"


def _digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha1(canonical).hexdigest()[:10]


def entry_for_finding(
    outcome: CaseOutcome, case: FuzzCase
) -> CorpusEntry:
    """Build the corpus entry for one fuzz finding."""
    data: Dict[str, Any] = {
        "schema": SCHEMA,
        "kind": "case",
        "solver": outcome.solver,
        "found": outcome.classification,
        "detail": outcome.detail,
        "expect": None,
        "case": case.to_dict(),
    }
    return CorpusEntry(kind="case", data=data)


def parser_entry(
    kind: str, text: str, *, note: str = ""
) -> CorpusEntry:
    """A malformed-text regression: ``kind`` is ``kiss`` or ``pla``."""
    if kind not in ("kiss", "pla"):
        raise InvalidSpecError(f"parser entry kind must be kiss/pla, not {kind!r}")
    data = {
        "schema": SCHEMA,
        "kind": kind,
        "text": text,
        "expect": "ParseError",
        "note": note,
    }
    return CorpusEntry(kind=kind, data=data)


def save_entry(directory: str, entry: CorpusEntry) -> str:
    """Write ``entry`` under ``directory``; returns the path.

    Idempotent: the file name is derived from the entry content, so a
    re-discovered failure overwrites its own file.
    """
    faults.trip("fuzz.corpus.save")
    os.makedirs(directory, exist_ok=True)
    if entry.kind == "case":
        family = entry.data["case"]["family"]
    else:
        family = entry.kind
    name = f"{entry.kind}-{family}-{_digest(entry.data)}.json"
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        json.dump(entry.data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    entry.path = path
    return path


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Parse every ``*.json`` corpus file, sorted by name."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            try:
                data = json.load(handle)
            except ValueError as exc:
                raise ParseError(
                    f"corpus file {name} is not valid JSON: {exc}"
                ) from exc
        kind = data.get("kind")
        if data.get("schema") != SCHEMA or kind not in (
            "case", "kiss", "pla",
        ):
            raise ParseError(
                f"corpus file {name} has unknown schema/kind "
                f"({data.get('schema')!r}/{kind!r})"
            )
        entries.append(CorpusEntry(kind=kind, data=data, path=path))
    return entries


def replay_entry(
    entry: CorpusEntry, *, timeout: Optional[float] = REPLAY_TIMEOUT
) -> Tuple[bool, str]:
    """Re-run one corpus entry; ``(ok, detail)``.

    * parser entries must raise :class:`ParseError`;
    * ``case`` entries must reproduce ``expect`` when set, and must
      simply no longer be a finding when ``expect`` is null.
    """
    if entry.kind in ("kiss", "pla"):
        from ..espresso import parse_pla
        from ..fsm import parse_kiss

        parser = parse_kiss if entry.kind == "kiss" else parse_pla
        try:
            parser(entry.data["text"])
        except ParseError:
            return True, "raised ParseError"
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # repro: noqa[RPA003] -- replay records the wrong exception class as a red result instead of crashing the loader
            return False, (
                f"raised {type(exc).__name__} instead of ParseError: "
                f"{exc}"
            )
        return False, "parsed successfully, expected ParseError"

    case = FuzzCase.from_dict(entry.data["case"])
    outcome = run_case(
        case, entry.data.get("solver", "picola"), timeout=timeout
    )
    expect = entry.data.get("expect")
    if expect is not None:
        if outcome.classification == expect:
            return True, f"reproduced {expect}"
        return False, (
            f"expected {expect}, got {outcome.classification}"
            + (f" [{outcome.detail}]" if outcome.detail else "")
        )
    if outcome.classification in FINDINGS:
        return False, (
            f"still a finding: {outcome.classification}"
            + (f" [{outcome.detail}]" if outcome.detail else "")
        )
    return True, f"no longer a finding ({outcome.classification})"


# ----------------------------------------------------------------------
# distillation
# ----------------------------------------------------------------------
def minimize_case(
    case: FuzzCase,
    reproduces: Callable[[FuzzCase], bool],
    *,
    max_attempts: int = 200,
) -> FuzzCase:
    """Greedy shrink: drop what the failure does not need.

    One pass tries to drop the FSM (keeping the encoded width pinned),
    one drops constraints, one drops symbols unused by any remaining
    constraint.  Every candidate is accepted only when ``reproduces``
    still holds; the attempt count is bounded so distillation cannot
    out-run the campaign it serves.
    """
    attempts = 0

    def attempt(candidate: FuzzCase) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        try:
            return reproduces(candidate)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException:  # repro: noqa[RPA003] -- a shrink candidate that crashes the reproducer is simply rejected, never fatal
            return False

    from ..encoding import ConstraintSet

    best = case
    if best.fsm is not None:
        pinned = best.nv or best.cset.min_code_length()
        candidate = FuzzCase(
            family=best.family, seed=best.seed, cset=best.cset,
            fsm=None, nv=pinned, satisfiable=best.satisfiable,
            note=best.note,
        )
        if attempt(candidate):
            best = candidate

    # drop constraints one at a time (stable order keeps this
    # deterministic); restart the scan after a successful drop
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for i in range(len(best.cset.constraints)):
            remaining = (
                best.cset.constraints[:i] + best.cset.constraints[i + 1:]
            )
            candidate = FuzzCase(
                family=best.family, seed=best.seed,
                cset=ConstraintSet(best.cset.symbols, remaining),
                fsm=best.fsm, nv=best.nv,
                satisfiable=best.satisfiable, note=best.note,
            )
            if attempt(candidate):
                best = candidate
                changed = True
                break

    # drop symbols no remaining constraint mentions (FSM-free only:
    # the machine's state set is not ours to edit)
    if best.fsm is None:
        used = set()
        for c in best.cset.constraints:
            used |= c.symbols
        for symbol in list(best.cset.symbols):
            if symbol in used or best.cset.n_symbols <= 2:
                continue
            kept = [s for s in best.cset.symbols if s != symbol]
            candidate = FuzzCase(
                family=best.family, seed=best.seed,
                cset=ConstraintSet(kept, best.cset.constraints),
                fsm=None, nv=best.nv,
                satisfiable=best.satisfiable, note=best.note,
            )
            if attempt(candidate):
                best = candidate
    return best
