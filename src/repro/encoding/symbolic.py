"""Deriving face constraints by symbolic (multi-valued) minimization.

The two-step encoding strategy of the paper's Section 2: minimize the
symbolic cover with the present state as one multi-valued input
variable (ESPRESSO-MV style); every implicant of the result whose
state literal contains two or more states — and not all of them — is a
face constraint: if the encoding embeds that state group on a face of
the code cube, the implicant survives as a single product term in the
boolean domain.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..cubes import Space
from ..cubes.bulk import active_kernel
from ..cubes.tautology import cover_contains_cube_packed
from ..espresso import espresso
from ..fsm import Fsm, fsm_to_symbolic_cover
from ..runtime import InvalidSpecError
from .constraints import ConstraintSet, FaceConstraint

__all__ = [
    "derive_face_constraints",
    "minimize_symbolic_cover",
    "constraints_from_cover",
]

#: above this many states the full espresso loop (whose off-set
#: computation splits on the state part value by value) is replaced by
#: the direct merge/expand pass below
_FULL_ESPRESSO_STATE_LIMIT = 64


def minimize_symbolic_cover(fsm: Fsm) -> Tuple[Space, List[int], List[str]]:
    """Multi-valued minimization of the FSM's input-encoding model.

    Incompletely specified behaviour (missing rows, ``-`` outputs,
    ``*`` next states) enters the minimization as a don't-care cover.
    """
    space, cover, dc, states = fsm_to_symbolic_cover(fsm, with_dc=True)
    if len(states) <= _FULL_ESPRESSO_STATE_LIMIT:
        minimized = espresso(space, cover, dc, use_lastgasp=False)
    else:
        minimized = _fast_symbolic_merge(
            space, cover, len(states), dc
        )
    return space, minimized, states


def _fast_symbolic_merge(
    space: Space,
    cover: List[int],
    n_states: int,
    dc: Sequence[int] = (),
) -> List[int]:
    """Coverage-preserving merge for very large state counts.

    Two sound steps instead of the full espresso fixed point:

    1. rows identical outside the state part merge into one cube whose
       state literal is the union (exactly how groups of states with
       identical behaviour become multi-state implicants);
    2. each cube's state literal is expanded value by value, accepting
       a new state exactly when the grown cube is already covered by
       the original cover (a tautology check instead of an off-set).

    The result covers the same minterms as ``cover``; it is simply a
    shorter SOP with wider state literals — which is all the
    face-constraint derivation needs.

    Both steps are bulk-kernel calls on the packed cover: the merge is
    ``merge_part`` on the state part, and each acceptance test runs
    through the packed tautology seam against a packed care set.
    """
    kernel = active_kernel()
    state_part = space.num_parts - 2
    result = kernel.absorb(
        space,
        kernel.merge_part(space, kernel.pack(space, cover), state_part),
    )

    offset = space.offsets[state_part]
    care = kernel.pack(space, list(cover) + list(dc))
    expanded: List[int] = []
    for idx in range(kernel.length(result)):
        cube = kernel.row(space, result, idx)
        for value in range(n_states):
            bit = 1 << (offset + value)
            if cube & bit:
                continue
            candidate = cube | bit
            if cover_contains_cube_packed(space, kernel, care, candidate):
                cube = candidate
        expanded.append(cube)
    return kernel.unpack(
        space, kernel.absorb(space, kernel.pack(space, expanded))
    )


def constraints_from_cover(
    space: Space,
    cover: Sequence[int],
    states: Sequence[str],
) -> ConstraintSet:
    """Extract the face constraints from a minimized symbolic cover.

    The state variable is the second-to-last part of ``space`` (the
    layout produced by :func:`repro.fsm.fsm_to_symbolic_cover`).
    """
    state_part = space.num_parts - 2
    n_states = space.part_sizes[state_part]
    if n_states != len(states):
        raise InvalidSpecError("state count does not match space layout")
    counts: dict = {}
    result = ConstraintSet(list(states))
    full = (1 << n_states) - 1
    for cube in cover:
        field = space.field(cube, state_part)
        size = bin(field).count("1")
        if size < 2 or field == full:
            continue
        counts[field] = counts.get(field, 0) + 1
    # multiplicity = how many symbolic implicants need this face; it
    # becomes the constraint weight (NOVA weights its constraints the
    # same way)
    for field, count in counts.items():
        members = [states[i] for i in range(n_states) if field & (1 << i)]
        result.add(FaceConstraint(members, weight=float(count)))
    return result


def derive_face_constraints(fsm: Fsm) -> ConstraintSet:
    """FSM -> face constraints (the paper's Table I 'const' column)."""
    space, minimized, states = minimize_symbolic_cover(fsm)
    return constraints_from_cover(space, minimized, states)
