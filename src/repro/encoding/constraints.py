"""Face (group) constraints and seed dichotomies.

Definitions follow Section 2 of the paper:

* A *group constraint* on symbols ``S`` is a subset ``L`` of ``S`` whose
  codes must be coverable by a cube that intersects no code of a symbol
  outside ``L``.
* A *seed dichotomy* of ``L`` is a two-block partition ``(L : {s})``
  for one outside symbol ``s``; ``L`` is satisfied iff every one of its
  seed dichotomies is satisfied (some encoding column gives all of
  ``L`` one value and ``s`` the other).
* A *guide constraint* (Section 3.2) is the group constraint formed by
  the intruder set of an infeasible constraint; satisfying it makes the
  infeasible constraint cheap to implement (Theorem I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..runtime import InvalidSpecError

__all__ = ["FaceConstraint", "SeedDichotomy", "ConstraintSet"]


@dataclass(frozen=True)
class FaceConstraint:
    """A group constraint: the symbols that must share a face."""

    symbols: FrozenSet[str]
    kind: str = "original"  # "original" | "guide"
    parent: Optional[FrozenSet[str]] = None  # for guides: the constraint
    weight: float = 1.0

    def __init__(
        self,
        symbols: Iterable[str],
        kind: str = "original",
        parent: Optional[Iterable[str]] = None,
        weight: float = 1.0,
    ) -> None:
        object.__setattr__(self, "symbols", frozenset(symbols))
        if kind not in ("original", "guide"):
            raise InvalidSpecError(f"bad constraint kind {kind!r}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(
            self, "parent", frozenset(parent) if parent is not None else None
        )
        object.__setattr__(self, "weight", weight)
        if not self.symbols:
            raise InvalidSpecError("a face constraint needs at least one symbol")

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.symbols

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.symbols))

    def is_guide(self) -> bool:
        return self.kind == "guide"

    def min_dimension(self) -> int:
        """ceil(log2 |L|): smallest cube dimension that can hold L."""
        return (len(self.symbols) - 1).bit_length()

    def seed_dichotomies(
        self, universe: Sequence[str]
    ) -> List["SeedDichotomy"]:
        """All seed dichotomies of this constraint w.r.t. ``universe``."""
        outside = [s for s in universe if s not in self.symbols]
        return [SeedDichotomy(self.symbols, s) for s in outside]

    def __repr__(self) -> str:
        tag = "guide:" if self.is_guide() else ""
        return f"FaceConstraint({tag}{{{', '.join(sorted(self.symbols))}}})"


@dataclass(frozen=True)
class SeedDichotomy:
    """(B1 : b2): B1 must be distinguished from b2 by some column."""

    block: FrozenSet[str]
    outsider: str

    def __init__(self, block: Iterable[str], outsider: str) -> None:
        object.__setattr__(self, "block", frozenset(block))
        object.__setattr__(self, "outsider", outsider)
        if outsider in self.block:
            raise InvalidSpecError("outsider cannot be inside the block")

    def satisfied_by_column(self, column: Dict[str, int]) -> bool:
        """Does a single code column (symbol -> 0/1) satisfy this?"""
        values = {column[s] for s in self.block}
        if len(values) != 1:
            return False
        return column[self.outsider] != next(iter(values))


class ConstraintSet:
    """Symbols plus the face constraints on them.

    The symbol order is significant: it defines row order of the code
    matrix and of the paper's constraint matrix.
    """

    def __init__(
        self,
        symbols: Sequence[str],
        constraints: Iterable[FaceConstraint] = (),
    ) -> None:
        if len(set(symbols)) != len(symbols):
            raise InvalidSpecError("duplicate symbols")
        self.symbols: Tuple[str, ...] = tuple(symbols)
        self._index = {s: i for i, s in enumerate(self.symbols)}
        self.constraints: List[FaceConstraint] = []
        for c in constraints:
            self.add(c)

    # ------------------------------------------------------------------
    def add(self, constraint: FaceConstraint) -> None:
        unknown = constraint.symbols - set(self.symbols)
        if unknown:
            raise InvalidSpecError(f"constraint mentions unknown symbols {unknown}")
        self.constraints.append(constraint)

    def index_of(self, symbol: str) -> int:
        return self._index[symbol]

    @property
    def n_symbols(self) -> int:
        return len(self.symbols)

    def min_code_length(self) -> int:
        n = len(self.symbols)
        return max(1, (n - 1).bit_length())

    def nontrivial(self) -> List[FaceConstraint]:
        """Constraints that actually constrain: 2 <= |L| < n."""
        n = len(self.symbols)
        return [c for c in self.constraints if 2 <= len(c) < n]

    def as_matrix(self) -> List[List[int]]:
        """The classic 0/1 constraint matrix (rows = constraints)."""
        return [
            [1 if s in c else 0 for s in self.symbols]
            for c in self.constraints
        ]

    def all_seed_dichotomies(self) -> List[SeedDichotomy]:
        result: List[SeedDichotomy] = []
        for c in self.nontrivial():
            result.extend(c.seed_dichotomies(self.symbols))
        return result

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self) -> Iterator[FaceConstraint]:
        return iter(self.constraints)

    def __repr__(self) -> str:
        return (
            f"ConstraintSet({len(self.symbols)} symbols, "
            f"{len(self.constraints)} constraints)"
        )
