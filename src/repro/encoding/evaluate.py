"""Scoring encodings: product terms needed to implement the constraints.

This is the paper's quality measure for Table I.  Each face constraint
``L`` induces a single-output Boolean function over the code space
(footnote 2 of the paper):

* on-set: the codes of the symbols in ``L``,
* off-set: the codes of the symbols not in ``L``,
* don't-care set: the unused codes.

The number of cubes in a minimized sum-of-products for that function —
one per constraint, summed — measures how economically the encoding
implements the complete constraint set: a satisfied constraint costs
exactly one cube, an infeasible one costs however many its intruders
force (Theorem I gives the constructive bound).

Every encoder in this repository is scored by this same evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..cubes import Space, contains
from ..espresso import ExactLimitError, espresso, exact_minimize
from ..runtime import InvalidSpecError
from .codes import Encoding
from .constraints import ConstraintSet, FaceConstraint, SeedDichotomy

__all__ = [
    "constraint_function",
    "cubes_for_constraint",
    "evaluate_encoding",
    "EvaluationReport",
    "ConstraintScore",
]


def _code_minterm(space: Space, code: int, n_bits: int) -> int:
    values = [(code >> (n_bits - 1 - b)) & 1 for b in range(n_bits)]
    return space.minterm(values)


def constraint_function(
    encoding: Encoding, constraint: FaceConstraint
) -> Tuple[Space, List[int], List[int]]:
    """(space, onset, dcset) of the constraint's Boolean function."""
    nv = encoding.n_bits
    space = Space.binary(nv)
    onset = [
        _code_minterm(space, encoding.code_of(s), nv)
        for s in sorted(constraint.symbols)
    ]
    dcset = [
        _code_minterm(space, code, nv) for code in encoding.unused_codes()
    ]
    return space, onset, dcset


def cubes_for_constraint(
    encoding: Encoding,
    constraint: FaceConstraint,
    *,
    exact: Optional[bool] = None,
) -> int:
    """Minimized product-term count for one constraint.

    Uses the exact minimizer on small code spaces (the default for
    ``nv <= 4``) and the espresso heuristic otherwise.
    """
    space, onset, dcset = constraint_function(encoding, constraint)
    if exact is None:
        exact = encoding.n_bits <= 4
    if exact:
        try:
            return len(exact_minimize(space, onset, dcset))
        except ExactLimitError:
            pass
    return len(espresso(space, onset, dcset, use_lastgasp=False))


@dataclass
class ConstraintScore:
    constraint: FaceConstraint
    cubes: int
    satisfied: bool
    intruders: Tuple[str, ...]


@dataclass
class EvaluationReport:
    """Everything Table I needs about one encoding."""

    encoding: Encoding
    scores: List[ConstraintScore] = field(default_factory=list)

    @property
    def total_cubes(self) -> int:
        return sum(s.cubes for s in self.scores)

    @property
    def n_constraints(self) -> int:
        return len(self.scores)

    @property
    def n_satisfied(self) -> int:
        return sum(1 for s in self.scores if s.satisfied)

    def summary(self) -> str:
        return (
            f"{self.n_satisfied}/{self.n_constraints} constraints "
            f"satisfied, {self.total_cubes} cubes total"
        )


def evaluate_encoding(
    encoding: Encoding,
    constraints: ConstraintSet,
    *,
    exact: Optional[bool] = None,
) -> EvaluationReport:
    """Score an encoding against the *original* constraint set."""
    if not encoding.is_injective():
        raise InvalidSpecError("encoding is not injective")
    report = EvaluationReport(encoding)
    n = len(constraints.symbols)
    for constraint in constraints.nontrivial():
        intruders = tuple(encoding.intruders(constraint.symbols))
        cubes = cubes_for_constraint(encoding, constraint, exact=exact)
        report.scores.append(
            ConstraintScore(
                constraint=constraint,
                cubes=cubes,
                satisfied=not intruders,
                intruders=intruders,
            )
        )
    return report


def satisfied_dichotomies(
    encoding: Encoding, constraints: ConstraintSet
) -> Tuple[int, int]:
    """(satisfied, total) seed dichotomies of the nontrivial constraints."""
    total = 0
    done = 0
    columns = encoding.columns()
    for d in constraints.all_seed_dichotomies():
        total += 1
        if any(d.satisfied_by_column(col) for col in columns):
            done += 1
    return done, total
