"""Encoding framework: constraints, code matrices, derivation, scoring."""

from .codes import Encoding, face_of
from .constraints import ConstraintSet, FaceConstraint, SeedDichotomy
from .evaluate import (
    ConstraintScore,
    EvaluationReport,
    constraint_function,
    cubes_for_constraint,
    evaluate_encoding,
    satisfied_dichotomies,
)
from .dichotomy_cover import (
    ColumnCandidate,
    build_full_encoding,
    dichotomy_cover_length,
)
from .exact import ExactEncodingResult, ExactSearchBudget, exact_encode
from .lengths import (
    LengthPoint,
    best_length_encoding,
    length_tradeoff,
    minimum_satisfying_length,
)
from .matrix import ConstraintMatrix, ConstraintRow
from .symbolic import (
    constraints_from_cover,
    derive_face_constraints,
    minimize_symbolic_cover,
)

__all__ = [
    "Encoding",
    "face_of",
    "ConstraintSet",
    "FaceConstraint",
    "SeedDichotomy",
    "ConstraintScore",
    "EvaluationReport",
    "constraint_function",
    "cubes_for_constraint",
    "evaluate_encoding",
    "satisfied_dichotomies",
    "ColumnCandidate",
    "build_full_encoding",
    "dichotomy_cover_length",
    "ExactEncodingResult",
    "ExactSearchBudget",
    "exact_encode",
    "LengthPoint",
    "best_length_encoding",
    "length_tradeoff",
    "minimum_satisfying_length",
    "ConstraintMatrix",
    "ConstraintRow",
    "constraints_from_cover",
    "derive_face_constraints",
    "minimize_symbolic_cover",
]
