"""Encodings: injective maps from symbols to fixed-width binary codes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..runtime import InvalidSpecError

__all__ = ["Encoding", "face_of"]


def face_of(codes: Iterable[int], n_bits: int) -> Tuple[int, int]:
    """Supercube of a set of codes as ``(fixed_mask, fixed_value)``.

    Bit ``b`` of ``fixed_mask`` is set when all codes agree in bit
    ``b``; ``fixed_value`` holds the agreed value there.  A code ``c``
    lies on the face iff ``(c ^ fixed_value) & fixed_mask == 0``.
    """
    codes = list(codes)
    if not codes:
        raise InvalidSpecError("face of an empty set is undefined")
    all_ones = (1 << n_bits) - 1
    agree_one = all_ones
    agree_zero = all_ones
    for c in codes:
        agree_one &= c
        agree_zero &= ~c & all_ones
    mask = agree_one | agree_zero
    return mask, agree_one


@dataclass
class Encoding:
    """An assignment of ``n_bits``-wide codes to symbols."""

    symbols: Tuple[str, ...]
    codes: Dict[str, int]
    n_bits: int

    def __init__(
        self,
        symbols: Sequence[str],
        codes: Mapping[str, int],
        n_bits: Optional[int] = None,
    ) -> None:
        self.symbols = tuple(symbols)
        missing = set(self.symbols) - set(codes)
        if missing:
            raise InvalidSpecError(f"codes missing for {sorted(missing)}")
        self.codes = {s: codes[s] for s in self.symbols}
        if n_bits is None:
            n_bits = max(
                1, max(self.codes.values()).bit_length()
            )
        self.n_bits = n_bits
        for s, c in self.codes.items():
            if c < 0 or c >> n_bits:
                raise InvalidSpecError(f"code of {s} does not fit in {n_bits} bits")

    # ------------------------------------------------------------------
    @classmethod
    def from_code_list(
        cls, symbols: Sequence[str], code_list: Sequence[int],
        n_bits: Optional[int] = None,
    ) -> "Encoding":
        if len(symbols) != len(code_list):
            raise InvalidSpecError("one code per symbol required")
        return cls(symbols, dict(zip(symbols, code_list)), n_bits)

    @classmethod
    def from_columns(
        cls, symbols: Sequence[str], columns: Sequence[Mapping[str, int]]
    ) -> "Encoding":
        """Build from code columns (column 0 = most significant bit)."""
        n_bits = len(columns)
        codes = {}
        for s in symbols:
            value = 0
            for col in columns:
                value = (value << 1) | (col[s] & 1)
            codes[s] = value
        return cls(symbols, codes, n_bits)

    # ------------------------------------------------------------------
    def code_of(self, symbol: str) -> int:
        return self.codes[symbol]

    def bit(self, symbol: str, column: int) -> int:
        """Bit of ``symbol`` in code column ``column`` (0 = MSB)."""
        return (self.codes[symbol] >> (self.n_bits - 1 - column)) & 1

    def column(self, column: int) -> Dict[str, int]:
        return {s: self.bit(s, column) for s in self.symbols}

    def columns(self) -> List[Dict[str, int]]:
        return [self.column(j) for j in range(self.n_bits)]

    def is_injective(self) -> bool:
        return len(set(self.codes.values())) == len(self.symbols)

    def used_codes(self) -> List[int]:
        return [self.codes[s] for s in self.symbols]

    def unused_codes(self) -> List[int]:
        used = set(self.codes.values())
        return [c for c in range(1 << self.n_bits) if c not in used]

    def face(self, subset: Iterable[str]) -> Tuple[int, int]:
        """Supercube (mask, value) of the codes of ``subset``."""
        return face_of((self.codes[s] for s in subset), self.n_bits)

    def face_dimension(self, subset: Iterable[str]) -> int:
        mask, _ = self.face(subset)
        return self.n_bits - bin(mask).count("1")

    def symbols_on_face(self, mask: int, value: int) -> List[str]:
        return [
            s
            for s in self.symbols
            if not (self.codes[s] ^ value) & mask
        ]

    def intruders(self, subset: AbstractSet[str]) -> List[str]:
        """Symbols outside ``subset`` lying on its face (paper's I_k)."""
        mask, value = self.face(subset)
        return [
            s for s in self.symbols_on_face(mask, value)
            if s not in subset
        ]

    def satisfies(self, subset: AbstractSet[str]) -> bool:
        """Face-constraint satisfaction: empty intruder set."""
        return not self.intruders(subset)

    # ------------------------------------------------------------------
    def as_table(self) -> str:
        width = max(len(s) for s in self.symbols)
        lines = [
            f"{s:<{width}}  {self.codes[s]:0{self.n_bits}b}"
            for s in self.symbols
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Encoding({len(self.symbols)} symbols, {self.n_bits} bits)"
