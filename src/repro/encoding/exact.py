"""Exact minimum-length encoding by branch and bound.

For small symbol sets this finds an encoding that provably maximizes
the weighted number of satisfied face constraints at minimum code
length (with total Theorem-I-style implementation cost as an optional
secondary objective).  It serves as the optimality reference for
PICOLA and the baselines in tests and ablations; the search is
exponential and guarded by a node budget.

The branch and bound assigns codes to symbols one at a time in a
constraint-aware order.  Pruning uses an admissible bound: a
constraint counts as "still satisfiable" while the face spanned by its
already-placed members, inflated to the constraint's minimum
dimension, can avoid every already-placed outsider.

Symmetry breaking: the first symbol is pinned to code 0 and each new
code may exceed the largest used code by at most one bit pattern class
(codes are explored in numeric order and a fresh code is only taken
once per equivalence step), which collapses the 2^nv! column
symmetries dramatically without losing optimality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs import resolve_tracer
from ..runtime import (
    Budget,
    BudgetExceeded,
    InfeasibleError,
    SolverTimeout,
    faults,
)
from .codes import Encoding, face_of
from .constraints import ConstraintSet, FaceConstraint

__all__ = ["ExactEncodingResult", "exact_encode", "ExactSearchBudget"]


class ExactSearchBudget(BudgetExceeded):
    """The node budget ran out before the search completed."""


@dataclass
class ExactEncodingResult:
    encoding: Encoding
    satisfied_weight: float
    satisfied: int
    nodes: int
    optimal: bool


def _constraint_possible(
    members_placed: List[int],
    outsiders_placed: List[int],
    min_dim: int,
    nv: int,
) -> bool:
    """Admissible test: can the constraint still end up satisfied?

    Every final face contains the supercube of the already-placed
    members, so a placed outsider *inside* that supercube kills the
    constraint in every completion — that is the only rejection this
    bound is allowed to make (optimism keeps the branch-and-bound
    exact).
    """
    if not members_placed:
        return True
    mask, value = face_of(members_placed, nv)
    for code in outsiders_placed:
        if not (code ^ value) & mask:
            return False
    return True


def exact_encode(
    cset: ConstraintSet,
    *args: int,
    nv: Optional[int] = None,
    max_nodes: int = 2_000_000,
    strict: bool = False,
    budget: Optional[Budget] = None,
    tracer=None,
) -> ExactEncodingResult:
    """Provably maximize weighted satisfied constraints at length nv.

    ``strict=True`` raises :class:`ExactSearchBudget` when the node
    budget runs out; otherwise the best encoding found so far is
    returned with ``optimal=False``.  An external :class:`Budget`
    (wall-clock deadline and/or shared node counter) is checked at
    every search node; in non-strict mode its exhaustion also degrades
    to best-so-far once a complete assignment exists.  ``tracer``
    records a ``exact/search`` span and the node count.

    ``nv`` is keyword-only: passing it positionally was deprecated in
    1.1.0 and raises :class:`TypeError` since 1.6.0 — use
    ``exact_encode(cset, nv=...)`` or
    ``get_solver('exact').solve(...)``.
    """
    if args:
        raise TypeError(
            "exact_encode() no longer accepts positional nv "
            "(deprecated since 1.1.0, removed in 1.6.0); use "
            "exact_encode(cset, nv=...) or "
            "get_solver('exact').solve(...)"
        )
    tracer = resolve_tracer(tracer)
    symbols = list(cset.symbols)
    n = len(symbols)
    if nv is None:
        nv = cset.min_code_length()
    if (1 << nv) < n:
        raise InfeasibleError("code length too small")
    constraints = cset.nontrivial()
    weights = [c.weight for c in constraints]
    min_dims = [c.min_dimension() for c in constraints]
    member_sets = [c.symbols for c in constraints]

    # order symbols by how many constraints they touch (most first)
    def touch(s: str) -> int:
        return sum(1 for ms in member_sets if s in ms)

    order = sorted(symbols, key=lambda s: (-touch(s), s))

    best_codes: Optional[Dict[str, int]] = None
    best_weight = -1.0
    nodes = 0
    budget_hit = False

    placed: Dict[str, int] = {}
    used: Set[int] = set()

    def upper_bound() -> float:
        total = 0.0
        for k, ms in enumerate(member_sets):
            members_placed = [placed[s] for s in ms if s in placed]
            outsiders_placed = [
                c for s, c in placed.items() if s not in ms
            ]
            if _constraint_possible(
                members_placed, outsiders_placed, min_dims[k], nv
            ):
                total += weights[k]
        return total

    def realized() -> float:
        total = 0.0
        for k, ms in enumerate(member_sets):
            mask, value = face_of((placed[s] for s in ms), nv)
            if all(
                (code ^ value) & mask
                for s, code in placed.items()
                if s not in ms
            ):
                total += weights[k]
        return total

    def search(idx: int) -> None:
        nonlocal best_codes, best_weight, nodes, budget_hit
        if budget_hit:
            return
        nodes += 1
        faults.trip("exact.node")
        if budget is not None:
            budget.tick(where="exact_encode")
        if nodes > max_nodes:
            budget_hit = True
            return
        if idx == n:
            weight = realized()
            if weight > best_weight:
                best_weight = weight
                best_codes = dict(placed)
            return
        if upper_bound() <= best_weight:
            return
        symbol = order[idx]
        fresh_taken = False
        max_used = max(used) if used else -1
        for code in range(1 << nv):
            if code in used:
                continue
            if code > max_used:
                # all unused codes above the frontier are symmetric
                # under relabeling only for the very first placement;
                # beyond that, bit positions already matter.  Pin the
                # first symbol to code 0 as the safe canonical cut.
                if idx == 0 and fresh_taken:
                    break
                fresh_taken = True
            placed[symbol] = code
            used.add(code)
            search(idx + 1)
            used.discard(code)
            del placed[symbol]
        return

    try:
        with tracer.span(
            "exact/search", symbols=n, nv=nv, max_nodes=max_nodes
        ):
            try:
                search(0)
            finally:
                tracer.count("exact.nodes", nodes)
                tracer.gauge("exact.best_weight", best_weight)
    except (SolverTimeout, BudgetExceeded):
        # external budget/deadline: degrade to best-so-far unless the
        # caller demanded a provably optimal answer
        if strict or best_codes is None:
            raise
        budget_hit = True
    if best_codes is None:
        raise ExactSearchBudget("no complete assignment explored")
    if budget_hit and strict:
        raise ExactSearchBudget(f"exceeded {max_nodes} nodes")
    encoding = Encoding(symbols, best_codes, nv)
    satisfied = sum(
        1 for c in constraints if encoding.satisfies(c.symbols)
    )
    return ExactEncodingResult(
        encoding=encoding,
        satisfied_weight=best_weight,
        satisfied=satisfied,
        nodes=nodes,
        optimal=not budget_hit,
    )
