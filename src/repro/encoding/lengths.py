"""Code-length trade-off analysis (the paper's motivation).

The introduction's rationale: satisfying the *complete* face
constraint set often forces codes longer than ``ceil(log2 n)``, and
the extra state variables usually cancel the area gains — which is
why the partial, minimum-length problem matters.  These helpers
quantify that trade-off:

* :func:`minimum_satisfying_length` — the smallest ``nv`` at which a
  full face embedding of all constraints exists (found with the exact
  encoder when small, the PICOLA heuristic otherwise);
* :func:`length_tradeoff` — cubes-to-implement-the-constraints and an
  area proxy as a function of the code length, the series behind the
  motivation experiment in ``benchmarks/test_motivation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .constraints import ConstraintSet
from .evaluate import evaluate_encoding
from .exact import ExactSearchBudget, exact_encode


def _picola_encode(*args, **kwargs):
    # imported lazily: repro.core itself builds on repro.encoding
    from ..core import picola_encode

    return picola_encode(*args, **kwargs)

__all__ = [
    "LengthPoint",
    "minimum_satisfying_length",
    "length_tradeoff",
    "best_length_encoding",
]

#: at or below this symbol count the exact encoder decides
#: satisfiability; above it the PICOLA heuristic is used (which can
#: overestimate the minimum satisfying length, never underestimate)
_EXACT_LIMIT = 9


@dataclass
class LengthPoint:
    """One point of the length/cost trade-off curve."""

    nv: int
    satisfied: int
    total: int
    cubes: int
    area_proxy: int  # cubes x (2 * nv), the constraint-decoder area


def _all_satisfiable(cset: ConstraintSet, nv: int) -> bool:
    k = len(cset.nontrivial())
    if k == 0:
        return True
    if cset.n_symbols <= _EXACT_LIMIT:
        try:
            result = exact_encode(cset, nv=nv, max_nodes=300_000)
            if result.optimal:
                return result.satisfied == k
        except ExactSearchBudget:
            pass
    outcome = _picola_encode(cset, nv=nv)
    return len(outcome.satisfied) == k


def minimum_satisfying_length(
    cset: ConstraintSet, max_extra_bits: int = 8
) -> Optional[int]:
    """Smallest nv at which every nontrivial constraint embeds.

    Returns None when no length up to ``min + max_extra_bits``
    suffices (with heuristic search this is an upper-bound answer).
    ``n - 1`` bits always suffice for any constraint set (the 1-hot
    -minus-one embedding), so the cap rarely binds.
    """
    base = cset.min_code_length()
    for nv in range(base, base + max_extra_bits + 1):
        if _all_satisfiable(cset, nv):
            return nv
    return None


def best_length_encoding(
    cset: ConstraintSet,
    max_extra_bits: int = 3,
    register_cost: float = 4.0,
):
    """The code length that minimizes total estimated area.

    The paper's Section 1 point, made constructive: sweep the code
    length, score each PICOLA encoding by
    ``cubes * 2 * nv + register_cost * nv`` (AND-plane width plus a
    flip-flop cost per state bit) and return
    ``(encoding, chosen LengthPoint, all points)``.  With the default
    register cost the minimum length usually — but not always — wins,
    which is exactly the trade-off the minimum-length problem exists
    to resolve.
    """
    points = length_tradeoff(cset, max_extra_bits)
    encodings = []
    for point in points:
        outcome = _picola_encode(cset, nv=point.nv)
        encodings.append(outcome.encoding)

    def area(point: LengthPoint) -> float:
        return point.cubes * 2 * point.nv + register_cost * point.nv

    best_idx = min(range(len(points)), key=lambda i: area(points[i]))
    return encodings[best_idx], points[best_idx], points


def length_tradeoff(
    cset: ConstraintSet, max_extra_bits: int = 3
) -> List[LengthPoint]:
    """Constraint-implementation cost as the code length grows."""
    points: List[LengthPoint] = []
    base = cset.min_code_length()
    for nv in range(base, base + max_extra_bits + 1):
        outcome = _picola_encode(cset, nv=nv)
        report = evaluate_encoding(outcome.encoding, cset)
        points.append(
            LengthPoint(
                nv=nv,
                satisfied=report.n_satisfied,
                total=report.n_constraints,
                cubes=report.total_cubes,
                area_proxy=report.total_cubes * 2 * nv,
            )
        )
    return points
