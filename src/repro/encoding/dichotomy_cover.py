"""Exact minimum code length for FULL constraint satisfaction.

The classic dichotomy-covering view (Tracey; Yang & Ciesielski): a
code column is a two-block partition of the symbols, and an encoding
satisfies all face constraints iff its columns *cover* every seed
dichotomy — where column ``(B0 : B1)`` covers dichotomy ``(L : {s})``
iff ``L`` lies entirely on one side and ``s`` on the other.  The
minimum number of columns that covers all dichotomies (while also
distinguishing every symbol pair) is the exact minimum code length for
full satisfaction.

This module enumerates *maximal compatible* column candidates by
merging dichotomies greedily in every seeded order (complete
enumeration of prime dichotomies is exponential; we expose both an
exact set-cover over the generated candidates and a greedy cover).
For the symbol counts where full satisfaction is of interest the
candidate pool is small and the cover exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .constraints import ConstraintSet, SeedDichotomy

__all__ = [
    "ColumnCandidate",
    "dichotomy_cover_length",
    "build_full_encoding",
]


@dataclass(frozen=True)
class ColumnCandidate:
    """A two-block partition usable as one code column."""

    zeros: FrozenSet[str]
    ones: FrozenSet[str]

    def covers(self, d: SeedDichotomy) -> bool:
        if d.block <= self.zeros and d.outsider in self.ones:
            return True
        if d.block <= self.ones and d.outsider in self.zeros:
            return True
        return False

    def splits(self, a: str, b: str) -> bool:
        return (a in self.zeros) != (b in self.zeros)


def _merge(
    column: Tuple[Set[str], Set[str]], d: SeedDichotomy
) -> Optional[Tuple[Set[str], Set[str]]]:
    """Try to place dichotomy ``d`` into a partial column."""
    zeros, ones = column
    for block_side, out_side in ((zeros, ones), (ones, zeros)):
        if d.block & out_side or d.outsider in block_side:
            continue
        return (
            (zeros | d.block, ones | {d.outsider})
            if block_side is zeros
            else (zeros | {d.outsider}, ones | d.block)
        )
    return None


def _candidates(
    cset: ConstraintSet, dichotomies: Sequence[SeedDichotomy],
    attempts: int,
) -> List[ColumnCandidate]:
    """Maximal compatible merges of dichotomies, in seeded orders."""
    symbols = list(cset.symbols)
    seen: Set[Tuple[FrozenSet[str], FrozenSet[str]]] = set()
    result: List[ColumnCandidate] = []
    for attempt in range(attempts):
        rng = random.Random(attempt * 7919)
        order = list(dichotomies)
        rng.shuffle(order)
        if not order:
            break
        first = order[0]
        zeros, ones = set(first.block), {first.outsider}
        for d in order[1:]:
            merged = _merge((zeros, ones), d)
            if merged is not None:
                zeros, ones = merged
        # park unassigned symbols on the emptier side (they do not
        # affect which dichotomies this column covers)
        for s in symbols:
            if s not in zeros and s not in ones:
                (zeros if len(zeros) <= len(ones) else ones).add(s)
        key = (frozenset(zeros), frozenset(ones))
        if key in seen or (key[1], key[0]) in seen:
            continue
        seen.add(key)
        result.append(ColumnCandidate(key[0], key[1]))
    return result


def dichotomy_cover_length(
    cset: ConstraintSet,
    *,
    attempts: int = 64,
    exact_limit: int = 24,
) -> Tuple[int, List[ColumnCandidate]]:
    """(number of columns, columns) covering all seed dichotomies.

    Also guarantees pairwise distinguishability (adds extra splitting
    columns if needed).  With at most ``exact_limit`` candidates a
    branch-and-bound set cover finds the exact minimum over the pool;
    otherwise a greedy cover is used.  Either way the result is an
    upper bound on the true minimum full-satisfaction length (the pool
    may miss a prime dichotomy), tight in practice.
    """
    dichotomies = cset.all_seed_dichotomies()
    symbols = list(cset.symbols)
    pairs = [
        (a, b)
        for i, a in enumerate(symbols)
        for b in symbols[i + 1 :]
    ]
    if not dichotomies and len(symbols) <= 1:
        return 1, []
    pool = _candidates(cset, dichotomies, attempts)
    if not pool:
        pool = [
            ColumnCandidate(
                frozenset(symbols[: len(symbols) // 2]),
                frozenset(symbols[len(symbols) // 2 :]),
            )
        ]

    def uncovered(chosen: Sequence[ColumnCandidate]):
        left_d = [
            d for d in dichotomies
            if not any(c.covers(d) for c in chosen)
        ]
        left_p = [
            p for p in pairs
            if not any(c.splits(*p) for c in chosen)
        ]
        return left_d, left_p

    chosen = (
        _exact_cover(pool, dichotomies, pairs)
        if len(pool) <= exact_limit
        else None
    )
    if chosen is None:
        chosen = []
        while True:
            left_d, left_p = uncovered(chosen)
            if not left_d and not left_p:
                break
            best = max(
                (c for c in pool if c not in chosen),
                key=lambda c: (
                    sum(1 for d in left_d if c.covers(d)),
                    sum(1 for p in left_p if c.splits(*p)),
                ),
                default=None,
            )
            if best is None or (
                not any(best.covers(d) for d in left_d)
                and not any(best.splits(*p) for p in left_p)
            ):
                # pool exhausted: split remaining pairs arbitrarily
                a, b = (left_p or [(None, None)])[0]
                if a is None:
                    break
                zeros = frozenset({a})
                ones = frozenset(s for s in symbols if s != a)
                best = ColumnCandidate(zeros, ones)
            chosen.append(best)
    return len(chosen), list(chosen)


def _exact_cover(
    pool: Sequence[ColumnCandidate],
    dichotomies: Sequence[SeedDichotomy],
    pairs: Sequence[Tuple[str, str]],
) -> Optional[List[ColumnCandidate]]:
    """Minimum subset of the pool covering everything (B&B), or None
    when the pool cannot cover all targets."""
    targets: List[Set[int]] = []
    for d in dichotomies:
        cols = {i for i, c in enumerate(pool) if c.covers(d)}
        if not cols:
            return None
        targets.append(cols)
    for p in pairs:
        cols = {i for i, c in enumerate(pool) if c.splits(*p)}
        if not cols:
            return None
        targets.append(cols)
    best: List[Optional[Set[int]]] = [None]

    def search(remaining: List[Set[int]], picked: Set[int]) -> None:
        if best[0] is not None and len(picked) >= len(best[0]):
            return
        if not remaining:
            best[0] = set(picked)
            return
        row = min(remaining, key=len)
        for col in sorted(row):
            rest = [r for r in remaining if col not in r]
            search(rest, picked | {col})

    search(targets, set())
    if best[0] is None:
        return None
    return [pool[i] for i in sorted(best[0])]


def build_full_encoding(cset: ConstraintSet, **kwargs):
    """An encoding (possibly longer than minimum) satisfying ALL
    constraints, built from the dichotomy cover columns."""
    from .codes import Encoding

    n_cols, columns = dichotomy_cover_length(cset, **kwargs)
    col_maps = [
        {s: (1 if s in c.ones else 0) for s in cset.symbols}
        for c in columns
    ]
    if not col_maps:  # degenerate single-symbol set
        col_maps = [{s: 0 for s in cset.symbols}]
    # ensure injectivity (the cover guarantees it, but guard anyway)
    enc = Encoding.from_columns(list(cset.symbols), col_maps)
    if not enc.is_injective():
        raise AssertionError("dichotomy cover failed to distinguish")
    return enc
