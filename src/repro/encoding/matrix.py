"""The paper's constraint-matrix notation (Section 3.1).

The classic face-constraint matrix ``L`` has ``L[k][j] = 1`` when
symbol ``j`` belongs to constraint ``k`` and 0 otherwise.  PICOLA's
twist: every 0 entry *is* a seed dichotomy ``(L_k : {s_j})``, and when
code column ``i`` satisfies that dichotomy the 0 is overwritten with a
mark remembering ``i``.  From the marks the algorithm can read off, at
any moment:

* the columns *participating* in ``L_k`` (all members agree there),
  hence ``dim[super(L_k)] <= nv - #participating``;
* the current intruder set ``I_k`` — outsiders whose dichotomy is
  still unsatisfied, i.e. the symbols that may end up inside
  ``super(L_k)``.

We store marks in a per-row dict (0 = unsatisfied, ``j+1`` = satisfied
by 0-based column ``j``); :meth:`ConstraintMatrix.as_paper_matrix`
renders the exact notation of the paper's Example 2 (membership 1,
column ``i`` 1-based marking ``i+1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from ..runtime import InvalidSpecError
from .constraints import ConstraintSet, FaceConstraint

__all__ = ["ConstraintRow", "ConstraintMatrix"]


@dataclass
class ConstraintRow:
    """One (possibly guide) constraint with its dichotomy marks."""

    constraint: FaceConstraint
    marks: Dict[str, int]  # outsider -> 0 or (column index + 1)
    agree_columns: Set[int] = field(default_factory=set)
    disagree_columns: Set[int] = field(default_factory=set)
    infeasible: bool = False
    guide_added: bool = False  # a guide row has been spawned for this row

    @property
    def members(self) -> FrozenSet[str]:
        return self.constraint.symbols

    def satisfied(self) -> bool:
        return not self.infeasible and all(
            m > 0 for m in self.marks.values()
        )

    def intruders(self) -> List[str]:
        """Outsiders whose seed dichotomy is still unsatisfied (I_k)."""
        return sorted(s for s, m in self.marks.items() if m == 0)

    def unsatisfied_dichotomies(self) -> int:
        return sum(1 for m in self.marks.values() if m == 0)

    def satisfied_fraction(self) -> float:
        if not self.marks:
            return 1.0
        done = sum(1 for m in self.marks.values() if m > 0)
        return done / len(self.marks)

    def dim_min(self, nv: int) -> int:
        """Lower bound on the final dimension of super(members)."""
        return max(
            len(self.disagree_columns), self.constraint.min_dimension()
        )

    def dim_max(self, nv: int) -> int:
        """Upper bound: every not-yet-generated column could disagree."""
        return nv - len(self.agree_columns)


class ConstraintMatrix:
    """All constraint rows plus the bookkeeping PICOLA needs."""

    def __init__(self, cset: ConstraintSet, nv: Optional[int] = None):
        self.symbols = list(cset.symbols)
        self.nv = nv if nv is not None else cset.min_code_length()
        self.columns_generated = 0
        self.rows: List[ConstraintRow] = []
        for c in cset.nontrivial():
            self.add_constraint(c)

    # ------------------------------------------------------------------
    def add_constraint(self, constraint: FaceConstraint) -> ConstraintRow:
        marks = {
            s: 0 for s in self.symbols if s not in constraint.symbols
        }
        row = ConstraintRow(constraint, marks)
        self.rows.append(row)
        return row

    def active_rows(self) -> List[ConstraintRow]:
        """Rows still steering the encoding (not marked infeasible)."""
        return [r for r in self.rows if not r.infeasible]

    def original_rows(self) -> List[ConstraintRow]:
        return [r for r in self.rows if not r.constraint.is_guide()]

    def guide_rows(self) -> List[ConstraintRow]:
        return [r for r in self.rows if r.constraint.is_guide()]

    # ------------------------------------------------------------------
    def record_column(self, column: Mapping[str, int]) -> None:
        """Update all marks after generating one code column."""
        j = self.columns_generated
        if j >= self.nv:
            raise InvalidSpecError("all code columns already generated")
        for row in self.rows:
            values = {column[s] for s in row.members}
            if len(values) > 1:
                row.disagree_columns.add(j)
                continue
            row.agree_columns.add(j)
            b = next(iter(values))
            for s, mark in row.marks.items():
                if mark == 0 and column[s] != b:
                    row.marks[s] = j + 1
        self.columns_generated += 1

    # ------------------------------------------------------------------
    def as_paper_matrix(self) -> List[List[int]]:
        """Rows rendered with the paper's notation (Example 2).

        1 = membership; 0 = unsatisfied dichotomy; ``i + 1`` =
        dichotomy satisfied by 1-based column ``i``.
        """
        out: List[List[int]] = []
        for row in self.rows:
            rendered = []
            for s in self.symbols:
                if s in row.members:
                    rendered.append(1)
                else:
                    mark = row.marks[s]
                    rendered.append(mark + 1 if mark else 0)
            out.append(rendered)
        return out

    def clone(self) -> "ConstraintMatrix":
        """Deep copy of the mutable bookkeeping (constraints shared)."""
        twin = ConstraintMatrix.__new__(ConstraintMatrix)
        twin.symbols = self.symbols
        twin.nv = self.nv
        twin.columns_generated = self.columns_generated
        twin.rows = []
        for row in self.rows:
            copy = ConstraintRow(
                constraint=row.constraint,
                marks=dict(row.marks),
                agree_columns=set(row.agree_columns),
                disagree_columns=set(row.disagree_columns),
                infeasible=row.infeasible,
                guide_added=row.guide_added,
            )
            twin.rows.append(copy)
        return twin

    def __repr__(self) -> str:
        return (
            f"ConstraintMatrix({len(self.rows)} rows, nv={self.nv}, "
            f"columns={self.columns_generated})"
        )
