"""Baseline encoders the paper compares against."""

from .enc import EncBudgetExceeded, EncResult, enc_encode
from .mustang import MustangResult, attraction_graph, mustang_encode
from .nova import NovaResult, nova_encode, state_affinity
from .simple import (
    best_random_encoding,
    gray_encoding,
    natural_encoding,
    random_encoding,
)

__all__ = [
    "EncBudgetExceeded",
    "EncResult",
    "enc_encode",
    "MustangResult",
    "attraction_graph",
    "mustang_encode",
    "NovaResult",
    "nova_encode",
    "state_affinity",
    "best_random_encoding",
    "gray_encoding",
    "natural_encoding",
    "random_encoding",
]
