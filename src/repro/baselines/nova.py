"""A NOVA-style baseline encoder (Villa & Sangiovanni-Vincentelli 1990).

NOVA attacks minimum-length input encoding by *maximizing the weighted
number of satisfied face constraints*: a greedy constraint-oriented
face embedding builds a seed encoding, then a hybrid
iterative-improvement phase (seeded annealing over code swaps/moves)
polishes it.  This module re-implements that strategy:

* ``variant="i_greedy"``  — greedy face placement only,
* ``variant="i_hybrid"``  — greedy + annealing on the input-constraint
  gain (NOVA's ``-e ih``),
* ``variant="io_hybrid"`` — same, plus output-oriented gains from a
  state-affinity matrix (NOVA's ``-e ioh``): pairs of states with
  common fan-out/fan-in earn a bonus for near-adjacent codes.

Exactly the objective the paper criticizes: satisfied-constraint
counting says nothing about how *violated* constraints will be
implemented, which is where PICOLA's guide constraints win.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..encoding.codes import Encoding, face_of
from ..encoding.constraints import ConstraintSet, FaceConstraint
from ..obs import resolve_tracer
from ..runtime import Budget, InfeasibleError, InvalidSpecError, faults

__all__ = ["NovaResult", "nova_encode", "state_affinity"]


@dataclass
class NovaResult:
    encoding: Encoding
    objective: float
    satisfied: int
    variant: str


def nova_encode(
    cset: ConstraintSet,
    *args: int,
    nv: Optional[int] = None,
    variant: str = "i_hybrid",
    affinity: Optional[Mapping[Tuple[str, str], float]] = None,
    seed: int = 0,
    anneal_moves: int = 4000,
    budget: Optional[Budget] = None,
    tracer=None,
) -> NovaResult:
    """Encode with the NOVA-style objective; deterministic per seed.

    ``nv`` is keyword-only: passing it positionally was deprecated in
    1.1.0 and raises :class:`TypeError` since 1.6.0 — use
    ``nova_encode(cset, nv=...)`` or
    ``get_solver('nova').solve(...)``.
    """
    if args:
        raise TypeError(
            "nova_encode() no longer accepts positional nv "
            "(deprecated since 1.1.0, removed in 1.6.0); use "
            "nova_encode(cset, nv=...) or "
            "get_solver('nova').solve(...)"
        )
    if variant not in ("i_greedy", "i_hybrid", "io_hybrid"):
        raise InvalidSpecError(f"unknown NOVA variant {variant!r}")
    if variant == "io_hybrid" and affinity is None:
        affinity = {}
    tracer = resolve_tracer(tracer)
    symbols = list(cset.symbols)
    if nv is None:
        nv = cset.min_code_length()
    if (1 << nv) < len(symbols):
        raise InfeasibleError("code length too small")
    rng = random.Random(seed)
    constraints = cset.nontrivial()

    with tracer.span(
        "nova/encode", symbols=len(symbols), nv=nv, variant=variant
    ):
        with tracer.span("nova/greedy"):
            codes = _greedy_placement(symbols, constraints, nv, rng)
        if variant != "i_greedy":
            with tracer.span("nova/anneal", moves=anneal_moves):
                codes = _anneal(
                    symbols, constraints, codes, nv, rng,
                    affinity if variant == "io_hybrid" else None,
                    anneal_moves, budget, tracer,
                )
    enc = Encoding(symbols, codes, nv)
    sat = sum(1 for c in constraints if enc.satisfies(c.symbols))
    return NovaResult(
        encoding=enc,
        objective=_objective(symbols, constraints, codes, nv,
                             affinity if variant == "io_hybrid" else None),
        satisfied=sat,
        variant=variant,
    )


# ----------------------------------------------------------------------
# phase 1: greedy constraint-oriented face placement
# ----------------------------------------------------------------------
def _faces(nv: int, dim: int) -> List[Tuple[int, int]]:
    """All (mask, value) faces of the given dimension."""
    out: List[Tuple[int, int]] = []
    positions = list(range(nv))
    for fixed in combinations(positions, nv - dim):
        mask = 0
        for p in fixed:
            mask |= 1 << p
        sub = mask
        # enumerate all values on the fixed positions
        value = 0
        while True:
            out.append((mask, value))
            if value == mask:
                break
            value = (value - mask) & mask  # next subset of mask
    return out


def _greedy_placement(
    symbols: Sequence[str],
    constraints: Sequence[FaceConstraint],
    nv: int,
    rng: random.Random,
) -> Dict[str, int]:
    codes: Dict[str, int] = {}
    free = set(range(1 << nv))
    order = sorted(
        constraints,
        key=lambda c: (-c.weight, len(c.symbols), sorted(c.symbols)),
    )
    for constraint in order:
        members = sorted(constraint.symbols)
        assigned = [s for s in members if s in codes]
        unassigned = [s for s in members if s not in codes]
        if not unassigned:
            continue
        dim = (len(members) - 1).bit_length()
        placed = False
        while dim <= nv and not placed:
            placed = _try_place_on_face(
                codes, free, members, assigned, unassigned, nv, dim
            )
            dim += 1
        # when no face fits, the members fall through to the leftover
        # assignment below
    # leftovers
    for s in symbols:
        if s not in codes:
            codes[s] = min(free)
            free.discard(codes[s])
    return codes


def _try_place_on_face(
    codes: Dict[str, int],
    free: set,
    members: Sequence[str],
    assigned: Sequence[str],
    unassigned: Sequence[str],
    nv: int,
    dim: int,
) -> bool:
    best_face = None
    best_free = -1
    for mask, value in _faces(nv, dim):
        if any((codes[s] ^ value) & mask for s in assigned):
            continue
        face_codes = [
            c for c in range(1 << nv) if not (c ^ value) & mask
        ]
        free_here = [c for c in face_codes if c in free]
        if len(free_here) < len(unassigned):
            continue
        # prefer tight faces with few leftover holes
        score = -len(free_here)
        if best_face is None or score > best_free:
            best_face = free_here
            best_free = score
    if best_face is None:
        return False
    for s, c in zip(unassigned, best_face):
        codes[s] = c
        free.discard(c)
    return True


# ----------------------------------------------------------------------
# phase 2: hybrid improvement (seeded annealing)
# ----------------------------------------------------------------------
def _objective(
    symbols: Sequence[str],
    constraints: Sequence[FaceConstraint],
    codes: Mapping[str, int],
    nv: int,
    affinity: Optional[Mapping[Tuple[str, str], float]],
) -> float:
    total = 0.0
    for c in constraints:
        mask, value = face_of((codes[s] for s in c.symbols), nv)
        ok = all(
            (code ^ value) & mask
            for s, code in codes.items()
            if s not in c.symbols
        )
        if ok:
            total += c.weight
    if affinity:
        for (a, b), w in affinity.items():
            dist = bin(codes[a] ^ codes[b]).count("1")
            total += w * (nv - dist) / (4.0 * nv)
    return total


def _anneal(
    symbols: Sequence[str],
    constraints: Sequence[FaceConstraint],
    codes: Dict[str, int],
    nv: int,
    rng: random.Random,
    affinity: Optional[Mapping[Tuple[str, str], float]],
    moves: int,
    budget: Optional[Budget] = None,
    tracer=None,
) -> Dict[str, int]:
    tracer = resolve_tracer(tracer)
    codes = dict(codes)
    current = _objective(symbols, constraints, codes, nv, affinity)
    best = dict(codes)
    best_obj = current
    n = len(symbols)
    all_codes = list(range(1 << nv))
    temperature = max(1.0, len(constraints) / 4.0)
    cooling = 0.995 if moves else 1.0
    attempted = 0
    accepted = 0
    try:
        for _ in range(moves):
            faults.trip("nova.move")
            if budget is not None:
                budget.tick(where="nova_encode")
            attempted += 1
            s = symbols[rng.randrange(n)]
            target = all_codes[rng.randrange(len(all_codes))]
            owner = None
            for t in symbols:
                if codes[t] == target:
                    owner = t
                    break
            old_s = codes[s]
            if owner is s:
                continue
            codes[s] = target
            if owner is not None:
                codes[owner] = old_s
            candidate = _objective(
                symbols, constraints, codes, nv, affinity
            )
            delta = candidate - current
            if delta >= 0 or rng.random() < math.exp(
                delta / temperature
            ):
                accepted += 1
                current = candidate
                if current > best_obj:
                    best_obj = current
                    best = dict(codes)
            else:
                codes[s] = old_s
                if owner is not None:
                    codes[owner] = target
            temperature = max(temperature * cooling, 0.05)
    finally:
        tracer.count("nova.moves", attempted)
        tracer.count("nova.accepted", accepted)
        tracer.gauge("nova.objective", best_obj)
    return best


# ----------------------------------------------------------------------
# output-oriented affinity for io_hybrid
# ----------------------------------------------------------------------
def state_affinity(fsm) -> Dict[Tuple[str, str], float]:
    """Pairwise state affinity from common fan-out and fan-in.

    Two states earn weight for transitions that target the same next
    state (their next-state code bits can share cubes) and for
    asserting the same outputs — NOVA's output-oriented gains.
    """
    states = fsm.states
    fanout: Dict[str, Dict[str, int]] = {s: {} for s in states}
    outbits: Dict[str, Dict[int, int]] = {s: {} for s in states}
    for t in fsm.transitions:
        if t.present == "*":
            continue
        if t.next != "*":
            fanout[t.present][t.next] = fanout[t.present].get(t.next, 0) + 1
        for i, ch in enumerate(t.outputs):
            if ch == "1":
                outbits[t.present][i] = outbits[t.present].get(i, 0) + 1
    result: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(states):
        for b in states[i + 1 :]:
            w = 0.0
            for nxt, ca in fanout[a].items():
                cb = fanout[b].get(nxt)
                if cb:
                    w += min(ca, cb)
            for bit, ca in outbits[a].items():
                cb = outbits[b].get(bit)
                if cb:
                    w += 0.5 * min(ca, cb)
            if w:
                result[(a, b)] = w
    return result
