"""A MUSTANG-style baseline (Devadas et al., TCAD 1988).

MUSTANG targets multi-level implementations: it never looks at face
constraints at all.  Instead it builds a weighted *attraction graph*
over the states — fan-out attraction (states driven to the same next
state under the same conditions) and fan-in attraction (states feeding
the same successors / asserting the same outputs) — and then embeds
the graph in the code hypercube so that strongly attracted states get
codes at small Hamming distance, maximizing shared cube factors.

Included here because it is the era's other canonical state-assignment
tool and a useful contrast in the benches: an encoder that optimizes
*adjacency* rather than *faces* trails both NOVA and PICOLA under the
two-level cost model of the paper, which is exactly the point the
input-encoding line of work makes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..encoding.codes import Encoding
from ..fsm import Fsm
from ..obs import resolve_tracer
from ..runtime import Budget, InfeasibleError, InvalidSpecError, faults
from .nova import state_affinity

__all__ = ["MustangResult", "mustang_encode", "attraction_graph"]


@dataclass
class MustangResult:
    encoding: Encoding
    attraction: float  # realized weighted adjacency score
    variant: str


def attraction_graph(
    fsm: Fsm, variant: str = "p"
) -> Dict[Tuple[str, str], float]:
    """MUSTANG's attraction weights between state pairs.

    ``variant='p'`` (fan-out oriented) weighs common successors and
    common asserted outputs; ``variant='n'`` (fan-in oriented) weighs
    pairs of states that appear together as predecessors of the same
    state.  Both reuse the transition statistics of
    :func:`repro.baselines.nova.state_affinity` plus a fan-in term.
    """
    if variant not in ("p", "n"):
        raise InvalidSpecError(f"unknown MUSTANG variant {variant!r}")
    weights: Dict[Tuple[str, str], float] = {}
    if variant == "p":
        for pair, w in state_affinity(fsm).items():
            weights[pair] = weights.get(pair, 0.0) + w
        return weights
    # fan-in: predecessors of a common successor attract each other
    fanin: Dict[str, List[str]] = {}
    for t in fsm.transitions:
        if t.present == "*" or t.next == "*":
            continue
        fanin.setdefault(t.next, []).append(t.present)
    for preds in fanin.values():
        uniq = sorted(set(preds))
        for i, a in enumerate(uniq):
            for b in uniq[i + 1 :]:
                weights[(a, b)] = weights.get((a, b), 0.0) + (
                    preds.count(a) + preds.count(b)
                ) / 2.0
    return weights


def _adjacency_score(
    codes: Mapping[str, int],
    weights: Mapping[Tuple[str, str], float],
    nv: int,
) -> float:
    total = 0.0
    for (a, b), w in weights.items():
        dist = bin(codes[a] ^ codes[b]).count("1")
        total += w * (nv - dist)
    return total


def mustang_encode(
    fsm: Fsm,
    nv: Optional[int] = None,
    *,
    variant: str = "p",
    seed: int = 0,
    anneal_moves: int = 3000,
    budget: Optional[Budget] = None,
    tracer=None,
) -> MustangResult:
    """Adjacency-driven minimum-length encoding of the FSM's states."""
    tracer = resolve_tracer(tracer)
    states = fsm.states
    if nv is None:
        nv = fsm.min_code_length()
    if (1 << nv) < len(states):
        raise InfeasibleError("code length too small")
    weights = attraction_graph(fsm, variant)
    rng = random.Random(seed)

    with tracer.span(
        "mustang/encode", states=len(states), nv=nv, variant=variant
    ):
        # greedy seed: place states in decreasing attraction-degree
        # order, each on the free code closest to its already-placed
        # attractors
        degree: Dict[str, float] = {s: 0.0 for s in states}
        for (a, b), w in weights.items():
            degree[a] += w
            degree[b] += w
        order = sorted(states, key=lambda s: (-degree[s], s))
        codes: Dict[str, int] = {}
        free = set(range(1 << nv))
        with tracer.span("mustang/greedy"):
            for s in order:
                best_code = None
                best_gain = None
                for code in sorted(free):
                    gain = 0.0
                    for (a, b), w in weights.items():
                        other = None
                        if a == s and b in codes:
                            other = codes[b]
                        elif b == s and a in codes:
                            other = codes[a]
                        if other is None:
                            continue
                        gain += w * (
                            nv - bin(code ^ other).count("1")
                        )
                    if best_gain is None or gain > best_gain:
                        best_gain = gain
                        best_code = code
                codes[s] = (
                    best_code if best_code is not None else min(free)
                )
                free.discard(codes[s])

        # annealing polish on pairwise swaps
        current = _adjacency_score(codes, weights, nv)
        best = dict(codes)
        best_score = current
        temperature = max(1.0, current / 10 + 1)
        all_codes = list(range(1 << nv))
        attempted = 0
        with tracer.span("mustang/anneal", moves=anneal_moves):
            try:
                for _ in range(anneal_moves):
                    faults.trip("mustang.move")
                    if budget is not None:
                        budget.tick(where="mustang_encode")
                    attempted += 1
                    s = states[rng.randrange(len(states))]
                    target = all_codes[rng.randrange(len(all_codes))]
                    owner = next(
                        (t for t in states if codes[t] == target), None
                    )
                    if owner is s:
                        continue
                    old = codes[s]
                    codes[s] = target
                    if owner is not None:
                        codes[owner] = old
                    candidate = _adjacency_score(codes, weights, nv)
                    delta = candidate - current
                    if delta >= 0 or rng.random() < math.exp(
                        delta / temperature
                    ):
                        current = candidate
                        if current > best_score:
                            best_score = current
                            best = dict(codes)
                    else:
                        codes[s] = old
                        if owner is not None:
                            codes[owner] = target
                    temperature = max(temperature * 0.996, 0.05)
            finally:
                tracer.count("mustang.moves", attempted)
                tracer.gauge("mustang.attraction", best_score)

    encoding = Encoding(states, best, nv)
    return MustangResult(
        encoding=encoding,
        attraction=best_score,
        variant=variant,
    )
